"""Shared helper for the bench suite."""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` exactly once and return its result.

    These benches are end-to-end studies, not microbenchmarks; a single
    round is the honest measurement.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
