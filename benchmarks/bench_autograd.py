"""Autograd hot-loop microbenchmarks: sparse embedding gradients vs dense.

Times the three layers the sparse-gradient training path (see
``docs/autograd.md``) accelerates, each against a faithful
reimplementation of the pre-sparse seed code path:

* **embedding backward** — building the gradient of an embedding lookup:
  row-sparse :class:`~repro.autograd.sparse.SparseGrad` construction +
  coalescing vs the seed's ``np.zeros_like`` + ``np.add.at`` dense scatter,
* **optimizer step** — lazy row-wise Adam vs ``dense_updates=True`` on the
  same sparse gradient (the dense path pays densification + a full-table
  update),
* **end-to-end fit** — one TransE epoch over a fixed batch count while the
  entity-table size grows; with sparse updates the epoch time is sublinear
  in ``num_entities``.

Run as a script:

    PYTHONPATH=src python benchmarks/bench_autograd.py            # full sizes
    PYTHONPATH=src python benchmarks/bench_autograd.py --smoke    # CI smoke

The full run writes machine-readable results to ``--out`` (default
``benchmarks/BENCH_autograd.json``).  ``--smoke`` runs tiny sizes and
asserts the correctness/bitwise invariants instead of reporting timings —
the sparse gradient densifies to exactly the ``np.add.at`` scatter, lazy
Adam's first step matches the dense step bitwise, and a ``fit`` with
``dense_updates=True`` reproduces the seed's dense training path bitwise.
See ``docs/performance.md`` for recorded numbers.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.autograd import nn
from repro.autograd import tensor as tensor_mod
from repro.autograd.optim import Adam
from repro.autograd.sparse import SparseGrad
from repro.core.rng import ensure_rng
from repro.kge import TransE
from repro.kg.triples import TripleStore

DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_autograd.json"


# --------------------------------------------------------------------- #
# seed reference implementations (the pre-sparse code paths)
# --------------------------------------------------------------------- #
def seed_lookup_backward(weight: np.ndarray, rows: np.ndarray, upstream: np.ndarray):
    """The seed's embedding-lookup backward: full-table zeros + add.at."""
    grad = np.zeros_like(weight)
    np.add.at(grad, rows, upstream)
    return grad


def sparse_lookup_backward(shape, rows: np.ndarray, upstream: np.ndarray):
    """The sparse path: wrap the batch rows, coalesce duplicates."""
    return SparseGrad(shape, rows, upstream).coalesce()


def best_time(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# --------------------------------------------------------------------- #
# workloads
# --------------------------------------------------------------------- #
def make_store(num_triples, num_entities, num_relations, seed=0):
    rng = ensure_rng(seed)
    triples = np.stack(
        [
            rng.integers(0, num_entities, size=num_triples),
            rng.integers(0, num_relations, size=num_triples),
            rng.integers(0, num_entities, size=num_triples),
        ],
        axis=1,
    )
    return TripleStore.from_triples(triples, num_entities, num_relations)


def bench_lookup_backward(num_entities, dim, batch, repeats, seed=0):
    rng = ensure_rng(seed)
    weight = rng.standard_normal((num_entities, dim))
    rows = rng.integers(0, num_entities, size=batch).astype(np.int64)
    upstream = rng.standard_normal((batch, dim))
    dense = best_time(lambda: seed_lookup_backward(weight, rows, upstream), repeats)
    sparse = best_time(
        lambda: sparse_lookup_backward(weight.shape, rows, upstream), repeats
    )
    return dense, sparse


def bench_adam_step(num_entities, dim, batch, repeats, seed=0):
    rng = ensure_rng(seed)
    rows = rng.integers(0, num_entities, size=batch).astype(np.int64)
    upstream = rng.standard_normal((batch, dim))

    def one_mode(dense_updates):
        w = nn.Parameter(rng.standard_normal((num_entities, dim)))
        opt = Adam([w], lr=0.01, weight_decay=1e-5, dense_updates=dense_updates)

        def step():
            w._grad = SparseGrad(w.shape, rows, upstream.copy())
            opt.step()

        return best_time(step, repeats)

    return one_mode(True), one_mode(False)


def bench_fit_epoch(num_entities, dim, num_triples, batch, repeats, dense_updates):
    store = make_store(num_triples, num_entities, num_relations=8, seed=0)
    best = float("inf")
    for _ in range(repeats):
        model = TransE(num_entities, 8, dim=dim, seed=0)  # init outside the clock
        t0 = time.perf_counter()
        model.fit(
            store,
            epochs=1,
            batch_size=batch,
            lr=0.01,
            seed=1,
            dense_updates=dense_updates,
        )
        best = min(best, time.perf_counter() - t0)
    return best


# --------------------------------------------------------------------- #
def run(args):
    results = {
        "config": {
            "entities": args.entities,
            "dim": args.dim,
            "batch": args.batch,
            "triples": args.triples,
            "repeats": args.repeats,
        },
        "kernels": {},
        "fit_epoch_seconds": {},
    }
    header = f"{'kernel':<24} {'dense s':>10} {'sparse s':>10} {'speedup':>8}"
    print(
        f"autograd microbenchmarks: {args.entities} entities, dim {args.dim}, "
        f"batch {args.batch} (best of {args.repeats})"
    )
    print(header)
    print("-" * len(header))

    def report(name, dense, sparse):
        print(f"{name:<24} {dense:>10.5f} {sparse:>10.5f} {dense / sparse:>7.1f}x")
        results["kernels"][name] = {
            "dense_seconds": dense,
            "sparse_seconds": sparse,
            "speedup": dense / sparse,
        }

    report(
        "embedding backward",
        *bench_lookup_backward(args.entities, args.dim, args.batch, args.repeats),
    )
    report(
        "Adam step",
        *bench_adam_step(args.entities, args.dim, args.batch, args.repeats),
    )

    print()
    header = f"{'fit epoch (TransE)':<24} {'dense s':>10} {'sparse s':>10} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for entities in args.fit_entities:
        dense = bench_fit_epoch(
            entities, args.dim, args.triples, args.batch, args.repeats, True
        )
        sparse = bench_fit_epoch(
            entities, args.dim, args.triples, args.batch, args.repeats, False
        )
        print(
            f"{f'E={entities}':<24} {dense:>10.4f} {sparse:>10.4f} "
            f"{dense / sparse:>7.1f}x"
        )
        results["fit_epoch_seconds"][str(entities)] = {
            "dense_seconds": dense,
            "sparse_seconds": sparse,
            "speedup": dense / sparse,
        }

    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {out}")


# --------------------------------------------------------------------- #
def smoke():
    """Tiny-size single-shot run with bitwise assertions (for CI)."""
    rng = ensure_rng(0)
    weight = rng.standard_normal((40, 6))
    rows = rng.integers(0, 40, size=25).astype(np.int64)  # guaranteed duplicates
    upstream = rng.standard_normal((25, 6))

    # Sparse backward densifies to exactly the seed's add.at scatter.
    ref = seed_lookup_backward(weight, rows, upstream)
    sparse = sparse_lookup_backward(weight.shape, rows, upstream)
    assert np.array_equal(sparse.to_dense(), ref), "sparse backward != add.at"

    # The autograd lookup produces the same gradient through both paths.
    for flag in (True, False):
        emb = nn.Embedding(40, 6, seed=1)
        old = tensor_mod.SPARSE_LOOKUP_GRADS
        tensor_mod.SPARSE_LOOKUP_GRADS = flag
        try:
            (emb(rows) * upstream).sum().backward()
        finally:
            tensor_mod.SPARSE_LOOKUP_GRADS = old
        expected = seed_lookup_backward(emb.weight.data, rows, upstream)
        assert np.array_equal(emb.weight.grad, expected), f"lookup grad (flag={flag})"

    # Lazy Adam's first step matches the dense step bitwise (zero decay).
    updated = {}
    for dense_updates in (False, True):
        w = nn.Parameter(ensure_rng(2).standard_normal((40, 6)))
        opt = Adam([w], lr=0.01, dense_updates=dense_updates)
        w._grad = SparseGrad(w.shape, rows, upstream.copy())
        opt.step()
        updated[dense_updates] = w.data
    assert np.array_equal(updated[False], updated[True]), "lazy Adam first step"

    # dense_updates=True reproduces the seed's dense fit history bitwise.
    store = make_store(120, 30, 4, seed=0)
    histories = {}
    for mode in ("seed", "dense", "sparse"):
        old = tensor_mod.SPARSE_LOOKUP_GRADS
        tensor_mod.SPARSE_LOOKUP_GRADS = mode != "seed"
        try:
            model = TransE(30, 4, dim=6, seed=3)
            histories[mode] = model.fit(
                store,
                epochs=2,
                batch_size=32,
                seed=4,
                dense_updates=mode != "sparse",
            )
        finally:
            tensor_mod.SPARSE_LOOKUP_GRADS = old
    assert histories["dense"] == histories["seed"], "dense_updates fit not bitwise"
    # Lazy Adam is a different (standard) update rule — untouched rows'
    # moments are not decayed — so the sparse history only tracks the dense
    # one approximately.
    np.testing.assert_allclose(histories["sparse"], histories["seed"], rtol=0.05)
    print("bench_autograd smoke: all kernels OK")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--entities", type=int, default=100_000)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--batch", type=int, default=256)
    parser.add_argument("--triples", type=int, default=2_048)
    parser.add_argument(
        "--fit-entities",
        type=int,
        nargs="+",
        default=[1_000, 10_000, 100_000],
        help="entity-table sizes for the end-to-end fit scaling study",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", type=str, default=str(DEFAULT_OUT))
    parser.add_argument(
        "--smoke", action="store_true", help="tiny single-shot correctness run"
    )
    args = parser.parse_args()
    if args.smoke:
        smoke()
        return
    run(args)


if __name__ == "__main__":
    main()
