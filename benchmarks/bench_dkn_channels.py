"""DKN channel ablation (Section 5 "News" + §6 knowledge-enhanced text).

The survey motivates DKN by news needing *both* the condensed text and the
commonsense entity layer.  This ablation trains DKN with the word channel
only, the knowledge channel only, and both, on the news scenario, and
checks the published shape: the two-channel model is at least as good as
the best single channel.
"""

from repro.core.splitter import random_split
from repro.data import make_news_dataset
from repro.eval.evaluator import Evaluator
from repro.models.embedding_based import DKN

from ._util import run_once


def _ablation(seed: int = 0):
    data = make_news_dataset(
        seed=seed, num_users=60, num_items=90, mean_interactions=7.0
    )
    train, test = random_split(data, seed=seed)
    evaluator = Evaluator(train, test, seed=seed, max_users=40)
    rows = []
    for name, kwargs in (
        ("word only", dict(use_entity_channel=False)),
        ("entities only", dict(use_word_channel=False)),
        ("word + entities", {}),
    ):
        model = DKN(epochs=10, seed=seed, **kwargs).fit(train)
        result = evaluator.evaluate(model, name=name)
        rows.append({"channels": name, "AUC": result["AUC"], "NDCG@10": result["NDCG@10"]})
    return rows


def test_dkn_channel_ablation(benchmark):
    rows = run_once(benchmark, _ablation)
    print("\nDKN channel ablation (news scenario)")
    for row in rows:
        print(f"  {row['channels']:16s} AUC={row['AUC']:.4f} NDCG@10={row['NDCG@10']:.4f}")
    by_name = {r["channels"]: r["AUC"] for r in rows}
    best_single = max(by_name["word only"], by_name["entities only"])
    assert by_name["word + entities"] > best_single - 0.03
    for value in by_name.values():
        assert value > 0.5
