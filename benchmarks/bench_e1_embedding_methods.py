"""Study E1 — embedding-based methods vs pure CF (survey Section 4.1).

Expected shape (claim C1): with an informative KG, the embedding-based
family matches or beats the CF baselines, and every personalized method
beats chance.
"""

import numpy as np

from repro.experiments.comparative import study_embedding_methods
from repro.experiments.harness import results_table

from ._util import run_once


def test_embedding_methods_vs_cf(benchmark):
    results = run_once(benchmark, study_embedding_methods, seed=0)
    print("\n" + results_table(results, title="E1: embedding-based methods (movie)"))
    by_name = {r.model: r for r in results}
    chance = 0.5
    for name in ("CKE", "CFKG", "MKR", "KTUP", "RCF"):
        assert by_name[name]["AUC"] > chance + 0.03, name
    # The best KG method beats the best pure-CF baseline.
    best_kg = max(by_name[n]["AUC"] for n in ("CKE", "CFKG", "MKR", "KTUP", "RCF"))
    best_cf = max(
        by_name[n]["AUC"] for n in ("MostPopular", "ItemKNN", "BPR-MF")
    )
    print(f"\nbest KG-aware AUC={best_kg:.4f} vs best CF AUC={best_cf:.4f}")
    assert best_kg > best_cf - 0.02  # at worst a statistical tie
