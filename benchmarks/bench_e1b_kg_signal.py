"""Study E1b — KG-signal sweep: the KG helps exactly when it is informative.

Expected shape: at kg_signal=1.0 KG-aware methods beat BPR-MF; as the
published KG is rewired to noise (kg_signal -> 0) the advantage shrinks or
disappears, while BPR-MF (which ignores the KG) stays flat.
"""

from repro.experiments.comparative import study_kg_signal_sweep

from ._util import run_once


def test_kg_signal_sweep(benchmark):
    rows = run_once(benchmark, study_kg_signal_sweep, seed=0)
    print("\nE1b: AUC vs kg_signal")
    for row in rows:
        print(
            f"  kg_signal={row['kg_signal']:.1f} {row['model']:8s} "
            f"AUC={row['AUC']:.4f} NDCG@10={row['NDCG@10']:.4f}"
        )

    def auc_of(model, signal):
        return next(
            r["AUC"] for r in rows if r["model"] == model and r["kg_signal"] == signal
        )

    # KG methods' absolute advantage over CF shrinks as signal degrades.
    gap_full = max(auc_of("KGCN", 1.0), auc_of("RCF", 1.0)) - auc_of("BPR-MF", 1.0)
    gap_none = max(auc_of("KGCN", 0.0), auc_of("RCF", 0.0)) - auc_of("BPR-MF", 0.0)
    print(f"\nKG-vs-CF gap: informative={gap_full:.4f}, shuffled={gap_none:.4f}")
    assert gap_full > gap_none
