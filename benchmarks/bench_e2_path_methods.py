"""Study E2 — path-based methods (survey Section 4.2).

Expected shape: meta-path diffusion (HeteRec) clearly beats MF and
popularity; the deep path encoders and the RL reasoner beat chance; more
meta-paths help HeteRec up to saturation.
"""

from repro.experiments.comparative import study_metapath_count, study_path_methods
from repro.experiments.harness import results_table

from ._util import run_once


def test_path_methods_panel(benchmark):
    results = run_once(benchmark, study_path_methods, seed=0)
    print("\n" + results_table(results, title="E2: path-based methods (movie)"))
    by_name = {r.model: r for r in results}
    assert by_name["HeteRec"]["AUC"] > by_name["BPR-MF"]["AUC"]
    assert by_name["HeteRec"]["AUC"] > by_name["MostPopular"]["AUC"]
    for name in ("RKGE", "KPRN", "PGPR", "Hete-MF"):
        assert by_name[name]["AUC"] > 0.5, name


def test_metapath_count_sweep(benchmark):
    rows = run_once(benchmark, study_metapath_count, seed=0)
    print("\nE2b: HeteRec AUC vs number of meta-paths")
    for row in rows:
        print(f"  L={row['num_metapaths']}: AUC={row['AUC']:.4f}")
    # More meta-paths should not hurt much: best config uses L > 1.
    best = max(rows, key=lambda r: r["AUC"])
    assert best["num_metapaths"] >= 2
