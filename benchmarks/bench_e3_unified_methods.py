"""Study E3 — unified methods (survey Section 4.3) and hop-depth ablation.

Expected shape (claim C3): the unified family is competitive with the best
embedding-based and path-based representatives on the same split, and the
propagation-depth sweep shows 1-2 hops suffice on attribute-style KGs.
"""

from repro.experiments.comparative import study_hop_depth, study_unified_methods
from repro.experiments.harness import results_table

from ._util import run_once


def test_unified_methods_panel(benchmark):
    results = run_once(benchmark, study_unified_methods, seed=0)
    print("\n" + results_table(results, title="E3: unified methods (movie)"))
    by_name = {r.model: r for r in results}
    unified_best = max(
        by_name[n]["AUC"] for n in ("RippleNet", "KGCN", "KGAT", "AKUPM")
    )
    print(f"\nbest unified AUC={unified_best:.4f}")
    assert unified_best > 0.55
    # Competitive with (>= within small slack) the family champions.
    assert unified_best > by_name["CKE (best Emb.)"]["AUC"] - 0.05
    assert unified_best > by_name["BPR-MF"]["AUC"] - 0.02


def test_hop_depth_sweep(benchmark):
    rows = run_once(benchmark, study_hop_depth, seed=0, hops=(1, 2))
    print("\nE3b: AUC vs propagation depth H")
    for row in rows:
        print(f"  H={row['hops']} {row['model']:16s} AUC={row['AUC']:.4f}")
    assert all(row["AUC"] > 0.45 for row in rows)
