"""Study E4 — sparsity and cold start (survey Sections 1/2.2).

Expected shape (claim C2): on items with zero training interactions, pure
CF collapses toward chance while KG-aware models retain signal; under
increasing sparsity the KG model degrades more gracefully.
"""

from repro.experiments.comparative import study_cold_start, study_sparsity

from ._util import run_once


def test_cold_start_items(benchmark):
    rows = run_once(benchmark, study_cold_start, seed=0)
    print("\nE4: cold-item AUC")
    for row in rows:
        print(f"  {row['model']:8s} cold-item AUC={row['value']:.4f}")
    by_name = {r["model"]: r["value"] for r in rows}
    best_kg = max(by_name["CKE"], by_name["KGCN"], by_name["CFKG"])
    best_cf = max(by_name["BPR-MF"], by_name["ItemKNN"])
    print(f"\nbest KG={best_kg:.4f} vs best CF={best_cf:.4f}")
    assert best_kg > best_cf
    assert best_kg > 0.55  # KG keeps real signal on cold items


def test_sparsity_sweep(benchmark):
    rows = run_once(benchmark, study_sparsity, seed=0)
    print("\nE4b: AUC vs mean interactions per user")
    for row in rows:
        print(
            f"  density={row['mean_interactions']:5.1f} {row['model']:8s} "
            f"AUC={row['value']:.4f}"
        )

    def auc_of(model, level):
        return next(
            r["value"]
            for r in rows
            if r["model"] == model and r["mean_interactions"] == level
        )

    # At the sparsest level the KG model should lead CF.
    sparsest = min(r["mean_interactions"] for r in rows)
    assert auc_of("KGCN", sparsest) > auc_of("BPR-MF", sparsest) - 0.02
