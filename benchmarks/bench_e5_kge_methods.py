"""Study E5 — KGE model comparison the survey's Future Directions calls for.

Expected shape: all six KGE models beat a random scorer on filtered link
prediction over the movie KG; translation-distance and semantic-matching
families both land well above chance.
"""

import numpy as np

from repro.experiments.comparative import (
    study_kge_downstream,
    study_kge_link_prediction,
)
from repro.experiments.harness import results_table

from ._util import run_once


def test_kge_link_prediction(benchmark):
    rows = run_once(benchmark, study_kge_link_prediction, seed=0)
    print("\nE5: filtered link prediction on the movie KG")
    print(f"  {'model':10s} {'MRR':>7s} {'Hits@1':>7s} {'Hits@3':>7s} {'Hits@10':>8s} {'MeanRank':>9s}")
    for row in rows:
        print(
            f"  {row['model']:10s} {row['MRR']:7.4f} {row['Hits@1']:7.4f} "
            f"{row['Hits@3']:7.4f} {row['Hits@10']:8.4f} {row['MeanRank']:9.2f}"
        )
    by_name = {r["model"]: r for r in rows}
    num_entities = 80 + 120  # entities exceed this; chance MRR is far below 0.05
    for name, row in by_name.items():
        assert row["MRR"] > 0.05, name
    # Relation-aware projections should not lose to a random ranker baseline.
    assert max(r["Hits@10"] for r in rows) > 0.3


def test_kge_downstream_choice(benchmark):
    """E5b: does the KGE family matter for the downstream recommender?

    Expected shape: under CKE (KGE used as *features*) every backbone is
    personalized; under CFKG (KGE *is* the ranker, via ``u + r_buy ~ v``)
    the translation models work but DistMult collapses toward chance — its
    symmetric bilinear form cannot express the directed buy relation.
    This is exactly the circumstances-dependent answer the survey's Future
    Directions section asks for.
    """
    results = run_once(benchmark, study_kge_downstream, seed=0)
    print("\n" + results_table(results, title="E5b: KGE choice under CKE/CFKG"))
    values = {r.model: r["AUC"] for r in results}
    assert len(values) == 6
    for name, value in values.items():
        if name.startswith("CKE"):
            assert value > 0.5, name
    assert values["CFKG[TransE]"] > 0.5
    assert values["CFKG[TransR]"] > 0.5
    # The documented failure mode: symmetric scoring under translation use.
    assert values["CFKG[DistMult]"] < values["CFKG[TransE]"]
    spread = max(values.values()) - min(values.values())
    print(f"\ndownstream AUC spread across KGE choices: {spread:.4f}")
