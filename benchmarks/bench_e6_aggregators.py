"""Study E6 — KGCN aggregator ablation (survey Eq. 30-33).

Expected shape: all four aggregators are functional and land in a similar
band; 'neighbor' (which discards the self vector) is typically the weakest,
matching the published ablations.
"""

from repro.experiments.comparative import study_aggregators
from repro.experiments.harness import results_table

from ._util import run_once


def test_aggregator_ablation(benchmark):
    results = run_once(benchmark, study_aggregators, seed=0)
    print("\n" + results_table(results, title="E6: KGCN aggregators (Eq. 30-33)"))
    values = {r.model: r["AUC"] for r in results}
    assert len(values) == 4
    for name, value in values.items():
        assert value > 0.5, name
    spread = max(values.values()) - min(values.values())
    print(f"\nAUC spread across aggregators: {spread:.4f}")
