"""Study E7 — explanation validity (claim C4).

Expected shape: the path-based and unified explainers return KG paths that
(a) exist edge-by-edge in the graph, (b) terminate at the recommended item,
and (c) start from the user or their history — with substantial coverage
of the top-K recommendations.
"""

from repro.experiments.comparative import study_explainability

from ._util import run_once


def test_explanation_fidelity(benchmark):
    rows = run_once(benchmark, study_explainability, seed=0)
    print("\nE7: explanation fidelity over top-5 recommendations")
    print(f"  {'model':6s} {'coverage':>9s} {'validity':>9s} {'path_len':>9s}")
    for row in rows:
        print(
            f"  {row['model']:6s} {row['coverage']:9.3f} {row['validity']:9.3f} "
            f"{row['mean_path_length']:9.2f}"
        )
    by_name = {r["model"]: r for r in rows}
    # Dedicated path reasoners must justify most of what they recommend.
    assert by_name["PGPR"]["validity"] > 0.5
    assert by_name["RKGE"]["validity"] > 0.5
    assert by_name["KPRN"]["validity"] > 0.5
    # Every model's valid explanations are by construction <= coverage.
    for row in rows:
        assert row["validity"] <= row["coverage"] + 1e-9
