"""Study E8 — multi-task learning weight sweep (survey Eq. 9, Section 6).

Expected shape (claim C5): jointly training the KG task (lambda > 0) beats
ignoring it (lambda = 0) for at least one of KTUP/MKR, since KG facts are
correlated with preference in the generator.
"""

from repro.experiments.comparative import study_multitask

from ._util import run_once


def test_multitask_weight_sweep(benchmark):
    rows = run_once(benchmark, study_multitask, seed=0, weights=(0.0, 0.5, 1.0))
    print("\nE8: AUC vs multi-task weight lambda")
    for row in rows:
        print(f"  lambda={row['lambda']:.2f} {row['model']:12s} AUC={row['AUC']:.4f}")

    def best_for(prefix, lam):
        return max(
            r["AUC"] for r in rows if r["model"].startswith(prefix) and r["lambda"] == lam
        )

    ktup_gain = max(best_for("KTUP", 0.5), best_for("KTUP", 1.0)) - best_for("KTUP", 0.0)
    mkr_gain = max(best_for("MKR", 0.5), best_for("MKR", 1.0)) - best_for("MKR", 0.0)
    print(f"\njoint-training gain (3-seed mean): KTUP={ktup_gain:+.4f}, MKR={mkr_gain:+.4f}")
    assert max(ktup_gain, mkr_gain) > 0.0  # joint training helps on average
