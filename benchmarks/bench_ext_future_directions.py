"""Extension studies E9/E10 — the survey's Section 6 future directions.

* E9 (cross-domain): PPGN-style preference propagation from a dense source
  domain (movies) into a sparse target domain (books) with shared users
  beats a target-only CF model.
* E10 (user side information): attaching taste-correlated demographics to
  the user-item graph improves a graph model that can consume them (KGAT),
  relative to the same model on the plain graph.
"""

import numpy as np

from repro.core.splitter import random_split
from repro.data import make_movie_dataset
from repro.eval.evaluator import Evaluator
from repro.extensions import PPGN, attach_user_attributes, make_cross_domain_pair
from repro.kg.builders import ensure_user_item_graph
from repro.models.baselines import BPRMF
from repro.models.unified import KGAT

from ._util import run_once


def _cross_domain_study(seed: int = 3):
    source, target = make_cross_domain_pair(
        num_users=60, source_interactions=22.0, target_interactions=4.0, seed=seed
    )
    train, test = random_split(target, seed=seed)
    evaluator = Evaluator(train, test, seed=seed, max_users=40)
    rows = []
    for name, model in (
        ("BPR-MF (target only)", BPRMF(epochs=25, seed=seed)),
        ("PPGN (source + target)", PPGN(source, epochs=20, seed=seed)),
    ):
        result = evaluator.evaluate(model.fit(train), name=name)
        rows.append({"model": name, "AUC": result["AUC"], "NDCG@10": result["NDCG@10"]})
    return rows


def test_e9_cross_domain(benchmark):
    rows = run_once(benchmark, _cross_domain_study)
    print("\nE9: cross-domain transfer into a sparse target domain")
    for row in rows:
        print(f"  {row['model']:24s} AUC={row['AUC']:.4f} NDCG@10={row['NDCG@10']:.4f}")
    by_name = {r["model"]: r["AUC"] for r in rows}
    assert by_name["PPGN (source + target)"] > by_name["BPR-MF (target only)"]


def _user_side_study(seed: int = 4):
    data = make_movie_dataset(seed=seed, num_users=60, num_items=90, mean_interactions=8.0)
    train, test = random_split(data, seed=seed)
    evaluator = Evaluator(train, test, seed=seed, max_users=40)
    plain_graph = ensure_user_item_graph(train)
    demo_graph = attach_user_attributes(plain_graph, num_attributes=6, seed=seed)
    rows = []
    for name, fit_data in (
        ("KGAT (plain graph)", plain_graph),
        ("KGAT (+demographics)", demo_graph),
    ):
        model = KGAT(epochs=10, pretrain_epochs=5, seed=seed).fit(fit_data)
        result = evaluator.evaluate(model, name=name)
        rows.append({"model": name, "AUC": result["AUC"], "NDCG@10": result["NDCG@10"]})
    return rows


def _dynamic_study(seeds=(0, 1, 2)):
    from repro.extensions import RecencyKNN, make_dynamic_dataset, temporal_split
    from repro.models.baselines import ItemKNN

    rows = []
    for name, factory in (
        ("ItemKNN (static)", lambda: ItemKNN()),
        ("RecencyKNN (decay=0.3)", lambda: RecencyKNN(decay=0.3)),
    ):
        aucs = []
        for seed in seeds:
            data = make_dynamic_dataset(
                num_periods=4, interactions_per_period=6, drift=1.0, seed=seed
            )
            train, test = temporal_split(data)
            evaluator = Evaluator(train, test, seed=seed, max_users=40)
            aucs.append(evaluator.evaluate(factory().fit(train))["AUC"])
        rows.append({"model": name, "AUC": float(np.mean(aucs))})
    return rows


def test_e11_dynamic_recommendation(benchmark):
    """E11: drifting preferences reward recency-aware modeling (§6)."""
    rows = run_once(benchmark, _dynamic_study)
    print("\nE11: dynamic preferences (temporal split, full drift, 3-seed mean)")
    for row in rows:
        print(f"  {row['model']:24s} AUC={row['AUC']:.4f}")
    by_name = {r["model"]: r["AUC"] for r in rows}
    assert by_name["RecencyKNN (decay=0.3)"] > by_name["ItemKNN (static)"]


def test_e10_user_side_information(benchmark):
    rows = run_once(benchmark, _user_side_study)
    print("\nE10: user side information in the collaborative KG")
    for row in rows:
        print(f"  {row['model']:22s} AUC={row['AUC']:.4f} NDCG@10={row['NDCG@10']:.4f}")
    by_name = {r["model"]: r["AUC"] for r in rows}
    # Demographics correlated with taste should not hurt; typically help.
    assert by_name["KGAT (+demographics)"] > by_name["KGAT (plain graph)"] - 0.02
