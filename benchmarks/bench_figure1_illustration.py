"""Figure 1 — the worked movie-KG recommendation for Bob.

Regenerates the figure's outcome: Avatar and Blood Diamond recommended,
each justified by the exact path the survey cites (shared Sci-Fi genre with
Interstellar; shared actor Leonardo DiCaprio with Inception).
"""

from repro.experiments.figure1 import render_figure1, run_figure1

from ._util import run_once


def test_figure1_reproduces(benchmark):
    result = run_once(benchmark, run_figure1)
    print("\n" + render_figure1())
    assert result["top2_matches_figure"]
    assert result["avatar_path_ok"]
    assert result["blood_diamond_path_ok"]
