"""Hot-path microbenchmarks: vectorized KG kernels vs scalar references.

Times the four data-layer hot paths that every method family funnels
through — triple-store construction, filtered negative sampling
(``corrupt_batch``), fixed-size neighbor sampling (``NeighborCache.sample``),
and sampled ranking evaluation — against faithful reimplementations of the
pre-vectorization scalar code paths.  Run as a script:

    PYTHONPATH=src python benchmarks/bench_hotpaths.py            # full sizes
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --smoke    # CI smoke

``--smoke`` runs every kernel once at tiny sizes and asserts the
correctness invariants (negatives are never facts, samples are true
neighbors, metrics are probabilities) instead of reporting timings, so CI
catches regressions in the vectorized paths without timing flakiness.
See ``docs/performance.md`` for recorded numbers.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.core.dataset import Dataset
from repro.core.interactions import InteractionMatrix
from repro.core.rng import ensure_rng
from repro.eval.ranking import sampled_ranking_evaluation
from repro.kg.graph import KnowledgeGraph
from repro.kg.sampling import NeighborCache, corrupt_batch
from repro.kg.triples import TripleStore


# --------------------------------------------------------------------- #
# scalar reference implementations (the pre-vectorization code paths)
# --------------------------------------------------------------------- #
def scalar_corrupt_batch(store, fact_set, indices, rng, max_tries=50):
    """Per-triple filtered corruption against a Python set of tuples."""
    heads = np.empty(len(indices), dtype=np.int64)
    rels = np.empty(len(indices), dtype=np.int64)
    tails = np.empty(len(indices), dtype=np.int64)
    for row, idx in enumerate(indices):
        h = int(store.heads[idx])
        r = int(store.relations[idx])
        t = int(store.tails[idx])
        candidate = (h, r, (t + 1) % store.num_entities)
        for _ in range(max_tries):
            if rng.random() < 0.5:
                cand = (h, r, int(rng.integers(0, store.num_entities)))
            else:
                cand = (int(rng.integers(0, store.num_entities)), r, t)
            if cand not in fact_set:
                candidate = cand
                break
        heads[row], rels[row], tails[row] = candidate
    return heads, rels, tails


def scalar_neighbor_sample(cache, entities, num_samples, rng):
    """Row-by-row receptive-field sampling (one RNG call per entity)."""
    rel_out = np.empty((entities.size, num_samples), dtype=np.int64)
    nbr_out = np.empty((entities.size, num_samples), dtype=np.int64)
    for row, entity in enumerate(entities):
        rels, nbrs = cache.neighbors_of(int(entity))
        idx = rng.integers(0, rels.size, size=num_samples)
        rel_out[row] = rels[idx]
        nbr_out[row] = nbrs[idx]
    return rel_out, nbr_out


def scalar_ranking_evaluation(model, train, test, num_negatives, rng):
    """Per-user Python candidate pools + per-pair metric appends."""
    per_metric: dict[str, list[float]] = {}
    for user in range(test.num_users):
        held_items = test.interactions.items_of(user)
        if held_items.size == 0:
            continue
        seen = set(train.interactions.items_of(user).tolist())
        seen |= set(held_items.tolist())
        pool = np.asarray(
            [v for v in range(train.num_items) if v not in seen], dtype=np.int64
        )
        if pool.size == 0:
            continue
        scores = model.score_all(user)
        for held in held_items:
            take = min(num_negatives, pool.size)
            negatives = rng.choice(pool, size=take, replace=False)
            candidates = np.concatenate([[int(held)], negatives])
            order = candidates[np.argsort(-scores[candidates], kind="stable")]
            rank = 1 + int(np.flatnonzero(order == int(held))[0])
            for k in (5, 10):
                per_metric.setdefault(f"HR@{k}", []).append(float(rank <= k))
            per_metric.setdefault("MRR", []).append(1.0 / rank)
    return {key: float(np.mean(vals)) for key, vals in per_metric.items()}


# --------------------------------------------------------------------- #
# workload builders
# --------------------------------------------------------------------- #
def make_store(num_triples, num_entities, num_relations, seed=0):
    rng = ensure_rng(seed)
    triples = np.stack(
        [
            rng.integers(0, num_entities, size=num_triples),
            rng.integers(0, num_relations, size=num_triples),
            rng.integers(0, num_entities, size=num_triples),
        ],
        axis=1,
    )
    return TripleStore.from_triples(triples, num_entities, num_relations)


def make_eval_setup(num_users, num_items, per_user, seed=0):
    rng = ensure_rng(seed)
    users = np.repeat(np.arange(num_users), per_user)
    items = rng.integers(0, num_items, size=users.size)
    inter = InteractionMatrix(users, items, num_users, num_items)
    held = rng.integers(0, num_items, size=num_users)
    test_inter = InteractionMatrix(np.arange(num_users), held, num_users, num_items)
    train = Dataset(name="bench-train", interactions=inter)
    test = Dataset(name="bench-test", interactions=test_inter)

    class FixedScores:
        is_fitted = True

        def __init__(self):
            self._scores = rng.random((num_users, num_items))

        def score_all(self, user_id):
            return self._scores[user_id]

    return FixedScores(), train, test


def best_time(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# --------------------------------------------------------------------- #
def run(num_triples, num_entities, num_relations, repeats, report):
    store = make_store(num_triples, num_entities, num_relations)
    kg = KnowledgeGraph(store)
    fact_set = set(
        zip(store.heads.tolist(), store.relations.tolist(), store.tails.tolist())
    )
    indices = np.arange(store.num_triples, dtype=np.int64)

    # --- triple-store build -------------------------------------------- #
    triples = store.triples()
    build = best_time(
        lambda: TripleStore.from_triples(triples, num_entities, num_relations),
        repeats,
    )
    report("store build", None, build, store.num_triples)

    # --- contains_batch ------------------------------------------------ #
    rng = ensure_rng(1)
    qh = rng.integers(0, num_entities, size=num_triples)
    qr = rng.integers(0, num_relations, size=num_triples)
    qt = rng.integers(0, num_entities, size=num_triples)
    scalar = best_time(
        lambda: [
            (int(a), int(b), int(c)) in fact_set for a, b, c in zip(qh, qr, qt)
        ],
        repeats,
    )
    vector = best_time(lambda: store.contains_batch(qh, qr, qt), repeats)
    report("contains_batch", scalar, vector, qh.size)

    # --- corrupt_batch ------------------------------------------------- #
    scalar = best_time(
        lambda: scalar_corrupt_batch(store, fact_set, indices, ensure_rng(2)),
        repeats,
    )
    vector = best_time(lambda: corrupt_batch(store, indices, seed=2), repeats)
    report("corrupt_batch", scalar, vector, indices.size)

    # --- NeighborCache build + sample ---------------------------------- #
    cache_build = best_time(lambda: NeighborCache(kg), repeats)
    report("NeighborCache build", None, cache_build, num_entities)
    cache = NeighborCache(kg)
    batch = ensure_rng(3).integers(0, num_entities, size=num_triples)
    scalar = best_time(
        lambda: scalar_neighbor_sample(cache, batch, 8, ensure_rng(4)), repeats
    )
    vector = best_time(lambda: cache.sample(batch, 8, seed=4), repeats)
    report("neighbor sample", scalar, vector, batch.size)

    # --- sampled ranking evaluation ------------------------------------ #
    model, train, test = make_eval_setup(
        num_users=max(16, num_entities // 20),
        num_items=max(32, num_entities // 2),
        per_user=16,
    )
    scalar = best_time(
        lambda: scalar_ranking_evaluation(model, train, test, 99, ensure_rng(5)),
        repeats,
    )
    vector = best_time(
        lambda: sampled_ranking_evaluation(model, train, test, seed=5), repeats
    )
    report("ranking eval", scalar, vector, train.num_users)


def smoke():
    """Tiny-size single-shot run with correctness assertions (for CI)."""
    store = make_store(200, 50, 4, seed=0)
    kg = KnowledgeGraph(store)

    qh, qr, qt = store.heads[:50], store.relations[:50], store.tails[:50]
    assert store.contains_batch(qh, qr, qt).all(), "facts reported missing"
    assert not store.contains_batch(qh, np.full(50, 3), qt).all() or all(
        (int(a), 3, int(c)) in store for a, c in zip(qh, qt)
    ), "contains_batch false positive"

    idx = np.arange(store.num_triples, dtype=np.int64)
    nh, nr, nt = corrupt_batch(store, idx, seed=0)
    assert not store.contains_batch(nh, nr, nt).any(), "negative is a fact"
    assert np.array_equal(nr, store.relations[idx]), "relation corrupted"

    cache = NeighborCache(kg)
    entities = np.arange(kg.num_entities, dtype=np.int64)
    rels, nbrs = cache.sample(entities, 4, seed=0)
    assert rels.shape == nbrs.shape == (kg.num_entities, 4)
    for e in entities:
        true_rels, true_nbrs = cache.neighbors_of(int(e))
        pairs = set(zip(true_rels.tolist(), true_nbrs.tolist()))
        assert set(zip(rels[e].tolist(), nbrs[e].tolist())) <= pairs

    model, train, test = make_eval_setup(num_users=12, num_items=40, per_user=5)
    result = sampled_ranking_evaluation(model, train, test, num_negatives=9, seed=0)
    assert set(result) == {"HR@5", "HR@10", "NDCG@5", "NDCG@10", "MRR"}
    assert all(0.0 <= v <= 1.0 for v in result.values())

    offsets, rels, nbrs = store.neighbors_batch(entities)
    for e in entities:
        lo, hi = offsets[e], offsets[e + 1]
        assert list(zip(rels[lo:hi], nbrs[lo:hi])) == store.neighbors(int(e))
    print("bench_hotpaths smoke: all kernels OK")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--triples", type=int, default=100_000)
    parser.add_argument("--entities", type=int, default=20_000)
    parser.add_argument("--relations", type=int, default=32)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny single-shot correctness run"
    )
    args = parser.parse_args()
    if args.smoke:
        smoke()
        return

    print(
        f"hot-path microbenchmarks: {args.triples} triples, "
        f"{args.entities} entities, {args.relations} relations "
        f"(best of {args.repeats})"
    )
    header = f"{'kernel':<20} {'scalar s':>10} {'vector s':>10} {'speedup':>8} {'items/s':>12}"
    print(header)
    print("-" * len(header))

    def report(name, scalar, vector, items):
        throughput = items / vector if vector > 0 else float("inf")
        if scalar is None:
            print(f"{name:<20} {'-':>10} {vector:>10.4f} {'-':>8} {throughput:>12.0f}")
        else:
            print(
                f"{name:<20} {scalar:>10.4f} {vector:>10.4f} "
                f"{scalar / vector:>7.1f}x {throughput:>12.0f}"
            )

    run(args.triples, args.entities, args.relations, args.repeats, report)


if __name__ == "__main__":
    main()
