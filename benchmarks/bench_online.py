"""Online learning loop benchmark: freshness uplift + promote latency.

Measures the two numbers the online subsystem exists for (see
``docs/online.md``):

* **freshness** — top-k recovery of newly-introduced users' applied
  interactions, served by the continuously-deployed model vs a baseline
  frozen at the bootstrap generation.  Fully deterministic per seed (the
  replay runs on a manual clock).
* **promote latency** — wall-clock seconds from "commit the dirty rows"
  to "candidate is live" (store commit + pinned serve-mode open + ANN
  index sync + canary probe + watch), reported as p50/p99 across every
  promotion cycle of every seed.

Run as a script:

    PYTHONPATH=src python benchmarks/bench_online.py           # full run
    PYTHONPATH=src python benchmarks/bench_online.py --smoke   # CI smoke

The full run writes machine-readable results to ``--out`` (default
``benchmarks/BENCH_online.json``).  ``--smoke`` runs one small replay
and asserts the invariants (bitwise old-or-new serving, positive
freshness uplift) without recording timings.
"""

from __future__ import annotations

import argparse
import json
import tempfile
from pathlib import Path

import numpy as np

from repro.online.harness import (
    ChurnConfig,
    build_world,
    freshness_report,
    run_churn_cell,
)
from repro.runtime.faults import FaultPlan

DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_online.json"


def bench_seed(workdir: Path, seed: int, config: ChurnConfig) -> dict:
    """One fault-free replay: freshness + per-cycle promote wall times."""
    world = build_world(workdir, seed, plan=FaultPlan(), config=config)
    world.loop.run(config.num_batches)
    fresh = freshness_report(world)
    promoted = sum(1 for c in world.loop.cycles if c.outcome == "promoted")
    out = {
        "seed": seed,
        "batches": len(world.loop.batch_outcomes),
        "promotions": promoted,
        "newcomer_users": fresh["newcomer_users"],
        "new_items": fresh["new_items"],
        "hit_rate_online": fresh["hit_rate_online"],
        "hit_rate_frozen": fresh["hit_rate_frozen"],
        "freshness_uplift": fresh["freshness_uplift"],
        "promote_wall_times_s": list(world.loop.promote_wall_times),
    }
    world.loop.close()
    return out


def percentiles(samples: list[float]) -> dict:
    arr = np.asarray(samples, dtype=np.float64)
    return {
        "p50_ms": float(np.percentile(arr, 50) * 1e3),
        "p99_ms": float(np.percentile(arr, 99) * 1e3),
        "mean_ms": float(arr.mean() * 1e3),
    }


def run_full(args) -> dict:
    config = ChurnConfig(num_batches=args.batches)
    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-online-") as tmp:
        for seed in args.seeds:
            rows.append(bench_seed(Path(tmp) / f"seed{seed}", seed, config))
            r = rows[-1]
            lat = percentiles(r["promote_wall_times_s"])
            print(
                f"seed {seed}: {r['promotions']} promotions over "
                f"{r['batches']} batches, freshness "
                f"online={r['hit_rate_online']:.3f} "
                f"frozen={r['hit_rate_frozen']:.3f} "
                f"(uplift {r['freshness_uplift']:+.3f}), promote "
                f"p50 {lat['p50_ms']:.1f} ms / p99 {lat['p99_ms']:.1f} ms"
            )
    all_times = [t for r in rows for t in r["promote_wall_times_s"]]
    uplifts = [r["freshness_uplift"] for r in rows]
    result = {
        "config": {
            "num_batches": config.num_batches,
            "commit_every": config.commit_every,
            "model_dim": config.model_dim,
            "stream": {
                "num_users": config.stream.num_users,
                "num_items": config.stream.num_items,
                "warm_users": config.stream.warm_users,
                "warm_items": config.stream.warm_items,
                "session_size": config.stream.session_size,
                "newcomer_rate": config.stream.newcomer_rate,
                "new_item_rate": config.stream.new_item_rate,
            },
            "seeds": list(args.seeds),
        },
        "freshness": {
            "hit_rate_online_mean": float(
                np.mean([r["hit_rate_online"] for r in rows])
            ),
            "hit_rate_frozen_mean": float(
                np.mean([r["hit_rate_frozen"] for r in rows])
            ),
            "uplift_mean": float(np.mean(uplifts)),
            "uplift_min": float(np.min(uplifts)),
        },
        "promote_latency": percentiles(all_times),
        "per_seed": [
            {k: v for k, v in r.items() if k != "promote_wall_times_s"}
            for r in rows
        ],
    }
    mean_lat = result["promote_latency"]
    print(
        f"\noverall: freshness uplift mean "
        f"{result['freshness']['uplift_mean']:+.3f} "
        f"(min {result['freshness']['uplift_min']:+.3f}), promote latency "
        f"p50 {mean_lat['p50_ms']:.1f} ms / p99 {mean_lat['p99_ms']:.1f} ms "
        f"across {len(all_times)} promotions"
    )
    return result


def run_smoke(args) -> None:
    """Assert the loop's contracts once, with no timing sensitivity."""
    config = ChurnConfig(num_batches=40)
    with tempfile.TemporaryDirectory(prefix="bench-online-smoke-") as tmp:
        cell = run_churn_cell(Path(tmp) / "none", 0, "none", config)
        assert cell.ok, f"churn cell failed: {cell.describe()}"
        row = bench_seed(Path(tmp) / "fresh", 0, config)
        assert row["promotions"] >= 2, "smoke replay promoted too few times"
        assert row["freshness_uplift"] > 0, (
            "online freshness did not beat the frozen baseline: "
            f"{row['hit_rate_online']:.3f} vs {row['hit_rate_frozen']:.3f}"
        )
    print(
        "online bench smoke OK: bitwise old-or-new held, "
        f"{row['promotions']} promotions, freshness uplift "
        f"{row['freshness_uplift']:+.3f}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batches", type=int, default=60)
    parser.add_argument(
        "--seeds", type=lambda s: tuple(int(x) for x in s.split(",")),
        default=(0, 1, 2, 3, 4),
    )
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    parser.add_argument("--smoke", action="store_true")
    args = parser.parse_args()
    if args.smoke:
        run_smoke(args)
        return
    result = run_full(args)
    out = Path(args.out)
    out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    print(f"results written to {out}")


if __name__ == "__main__":
    main()
