"""Two-stage retrieval benchmarks: ANN candidate generation vs exact scoring.

Measures the tradeoff the retrieval package exists for (see
``docs/retrieval.md``): full-catalog exact scoring is linear in the
catalog, ANN candidate generation + exact rerank is sublinear.  For each
catalog size the bench reports, per index kind (``ivf`` / ``lsh``):

* **recall@k** of the candidate set against the exact top-k ground truth
  (the rerank is exact, so candidate recall *is* end-to-end recall),
* **p50/p99 query latency** of ANN search + candidate rerank, against the
  same percentiles for exact full scoring,
* **candidate counts** — the fraction of the catalog the second stage
  actually scores, which is the sublinearity being claimed.

Catalogs are clustered mixture-of-Gaussians embeddings (items scatter
around shared centers, queries land near centers), the geometry learned
embedding tables actually have.  Isotropic i.i.d. Gaussian data is the
ANN worst case — near-uniform pairwise distances — and is *not* what
trained models produce; ``--centers 0`` benchmarks that adversarial
geometry anyway.

Run as a script:

    PYTHONPATH=src python benchmarks/bench_retrieval.py           # full sizes
    PYTHONPATH=src python benchmarks/bench_retrieval.py --smoke   # CI smoke

The full run writes machine-readable results to ``--out`` (default
``benchmarks/BENCH_retrieval.json``).  ``--smoke`` runs a small catalog
and asserts the recall floors and the seed-determinism contract
(bitwise-identical fingerprints and candidate sets across rebuilds, and
across a save/load round trip) instead of reporting timings.  See
``docs/performance.md`` for recorded numbers.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.retrieval import IvfIndex, LshIndex, exact_topk, load_index, recall_at_k
from repro.retrieval.base import pairwise_scores

DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_retrieval.json"


# --------------------------------------------------------------------- #
# workload
# --------------------------------------------------------------------- #
def make_catalog(
    num_items: int,
    dim: int,
    num_queries: int,
    num_centers: int = 256,
    spread: float = 0.25,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Clustered item vectors + queries near the same centers (float32)."""
    rng = np.random.default_rng(seed)
    if num_centers < 1:
        items = rng.standard_normal((num_items, dim))
        queries = rng.standard_normal((num_queries, dim))
    else:
        centers = rng.standard_normal((num_centers, dim))
        items = centers[rng.integers(num_centers, size=num_items)]
        items = items + spread * rng.standard_normal((num_items, dim))
        queries = centers[rng.integers(num_centers, size=num_queries)]
        queries = queries + spread * rng.standard_normal((num_queries, dim))
    return items.astype(np.float32), queries.astype(np.float32)


def make_index(kind: str, seed: int = 0):
    if kind == "ivf":
        return IvfIndex(seed=seed)
    if kind == "lsh":
        return LshIndex(seed=seed)
    raise SystemExit(f"unknown index kind {kind!r}")


# --------------------------------------------------------------------- #
# measurement
# --------------------------------------------------------------------- #
def exact_query(items: np.ndarray, q: np.ndarray, k: int) -> np.ndarray:
    """One full-catalog exact top-k (the baseline both stages replace)."""
    scores = pairwise_scores(items, q, "ip")
    top = np.argpartition(-scores, k - 1)[:k]
    return top[np.argsort(-scores[top], kind="stable")]


def ann_query(index, items: np.ndarray, q: np.ndarray, quota: int, k: int):
    """One two-stage query: ANN candidates + exact rerank of only those rows."""
    ids = index.search(q, quota)
    scores = pairwise_scores(items[ids], q, "ip")
    kk = min(k, scores.size)
    top = np.argpartition(-scores, kk - 1)[:kk]
    top = top[np.argsort(-scores[top], kind="stable")]
    return ids, ids[top]


def percentiles(samples: list[float]) -> dict:
    arr = np.asarray(samples, dtype=np.float64)
    return {
        "p50_ms": float(np.percentile(arr, 50) * 1e3),
        "p99_ms": float(np.percentile(arr, 99) * 1e3),
        "mean_ms": float(arr.mean() * 1e3),
    }


def bench_size(num_items: int, args) -> dict:
    items, queries = make_catalog(
        num_items, args.dim, args.queries,
        num_centers=args.centers, spread=args.spread, seed=args.seed,
    )
    truth = [exact_topk(items, q, args.k) for q in queries]

    exact_times: list[float] = []
    for q in queries:
        t0 = time.perf_counter()
        exact_query(items, q, args.k)
        exact_times.append(time.perf_counter() - t0)
    exact_lat = percentiles(exact_times)

    out = {"num_items": num_items, "exact": exact_lat, "indexes": {}}
    print(
        f"\n{num_items} items, dim {args.dim}: exact scoring "
        f"p50 {exact_lat['p50_ms']:.3f} ms / p99 {exact_lat['p99_ms']:.3f} ms"
    )
    header = (
        f"{'kind':<6} {'build s':>8} {'recall@'+str(args.k):>10} "
        f"{'cands':>8} {'frac':>7} {'p50 ms':>8} {'p99 ms':>8} {'speedup':>8}"
    )
    print(header)
    print("-" * len(header))

    for kind in args.kinds:
        index = make_index(kind, seed=args.seed)
        t0 = time.perf_counter()
        index.build(items, generation=0)
        build_s = time.perf_counter() - t0

        ann_times: list[float] = []
        recalls: list[float] = []
        cand_counts: list[int] = []
        for q, true_ids in zip(queries, truth):
            t0 = time.perf_counter()
            ids, __ = ann_query(index, items, q, args.quota, args.k)
            ann_times.append(time.perf_counter() - t0)
            recalls.append(recall_at_k(ids, true_ids))
            cand_counts.append(int(ids.size))
        ann_lat = percentiles(ann_times)
        recall = float(np.mean(recalls))
        cands = float(np.mean(cand_counts))
        frac = cands / num_items
        speedup = exact_lat["p50_ms"] / ann_lat["p50_ms"]
        print(
            f"{kind:<6} {build_s:>8.2f} {recall:>10.3f} {cands:>8.0f} "
            f"{frac:>6.1%} {ann_lat['p50_ms']:>8.3f} {ann_lat['p99_ms']:>8.3f} "
            f"{speedup:>7.1f}x"
        )
        out["indexes"][kind] = {
            "build_seconds": build_s,
            f"recall_at_{args.k}": recall,
            "mean_candidates": cands,
            "candidate_fraction": frac,
            "latency": ann_lat,
            "speedup_p50": speedup,
        }
    return out


def run(args) -> None:
    results = {
        "config": {
            "dim": args.dim,
            "queries": args.queries,
            "k": args.k,
            "quota": args.quota,
            "centers": args.centers,
            "spread": args.spread,
            "seed": args.seed,
            "kinds": list(args.kinds),
        },
        "sizes": [bench_size(n, args) for n in args.items],
    }
    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {out}")


# --------------------------------------------------------------------- #
def smoke(args) -> None:
    """Small-catalog run asserting recall floors + determinism (for CI)."""
    num_items, num_queries, quota = 5_000, 32, 512
    items, queries = make_catalog(
        num_items, 32, num_queries, num_centers=64, spread=0.25, seed=args.seed
    )
    truth = [exact_topk(items, q, 10) for q in queries]

    for kind in ("ivf", "lsh"):
        first = make_index(kind, seed=args.seed).build(items, generation=7)
        second = make_index(kind, seed=args.seed).build(items, generation=7)
        assert first.fingerprint() == second.fingerprint(), (
            f"{kind}: same seed + vectors must give bitwise-identical indexes"
        )

        recalls = []
        for q, true_ids in zip(queries, truth):
            ids = first.search(q, quota)
            again = second.search(q, quota)
            assert np.array_equal(ids, again), f"{kind}: candidate sets diverge"
            assert ids.size >= min(quota, num_items), f"{kind}: quota not met"
            recalls.append(recall_at_k(ids, true_ids))
        recall = float(np.mean(recalls))
        assert recall >= 0.9, f"{kind}: recall@10 {recall:.3f} below the 0.9 floor"

        path = Path(args.workdir or ".") / f"smoke-{kind}.npz"
        first.save(path)
        loaded = load_index(path)
        assert loaded.fingerprint() == first.fingerprint(), f"{kind}: save/load"
        assert loaded.generation == 7, f"{kind}: generation lost in round trip"
        q = queries[0]
        assert np.array_equal(loaded.search(q, quota), first.search(q, quota))
        path.unlink()
        print(f"bench_retrieval smoke [{kind}]: recall@10 {recall:.3f}, "
              "determinism + round trip OK")
    print("bench_retrieval smoke: all floors OK")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--items", type=int, nargs="+", default=[100_000, 1_000_000],
        help="catalog sizes to sweep",
    )
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--queries", type=int, default=100)
    parser.add_argument("--k", type=int, default=10, help="top-k for recall")
    parser.add_argument(
        "--quota", type=int, default=1024,
        help="candidate quota per query (k_candidates)",
    )
    parser.add_argument(
        "--centers", type=int, default=256,
        help="mixture components in the synthetic catalog (0 = isotropic "
        "Gaussian, the ANN worst case)",
    )
    parser.add_argument("--spread", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--kinds", nargs="+", default=["ivf", "lsh"], choices=["ivf", "lsh"]
    )
    parser.add_argument("--out", type=str, default=str(DEFAULT_OUT))
    parser.add_argument(
        "--workdir", type=str, default=None,
        help="where --smoke writes its temporary index files",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small recall-floor + determinism run (CI mode; no timings)",
    )
    args = parser.parse_args()
    if args.smoke:
        smoke(args)
        return
    run(args)


if __name__ == "__main__":
    main()
