"""Scalability micro-study: training cost vs dataset size.

The survey notes scalability as KGCN's design motivation (fixed-size
sampled receptive fields) and IntentGC's selling point (vector-wise
convolution).  This bench measures wall-clock training time of both, plus
RippleNet, across two dataset sizes, and reports the per-interaction cost.
Timing shape to observe: per-interaction cost stays roughly flat for the
sampled-neighborhood models as the world grows.
"""

import time

from repro.data import make_movie_dataset
from repro.models.unified import KGCN, IntentGC, RippleNet

from ._util import run_once

SIZES = ((40, 60), (80, 120))


def _measure():
    rows = []
    for num_users, num_items in SIZES:
        data = make_movie_dataset(
            seed=0, num_users=num_users, num_items=num_items, mean_interactions=10.0
        )
        for name, factory in (
            ("KGCN", lambda: KGCN(epochs=5, num_negatives=1, seed=0)),
            ("RippleNet", lambda: RippleNet(epochs=5, ripple_size=16, seed=0)),
            ("IntentGC", lambda: IntentGC(epochs=5, seed=0)),
        ):
            start = time.perf_counter()
            factory().fit(data)
            elapsed = time.perf_counter() - start
            rows.append(
                {
                    "model": name,
                    "users": num_users,
                    "items": num_items,
                    "interactions": data.interactions.nnz,
                    "seconds": elapsed,
                    "us_per_interaction": 1e6 * elapsed / (5 * data.interactions.nnz),
                }
            )
    return rows


def test_training_scaling(benchmark):
    rows = run_once(benchmark, _measure)
    print("\nScaling: training cost vs dataset size (5 epochs)")
    print(f"  {'model':10s} {'users':>6s} {'items':>6s} {'nnz':>6s} {'sec':>7s} {'us/interaction':>15s}")
    for row in rows:
        print(
            f"  {row['model']:10s} {row['users']:6d} {row['items']:6d} "
            f"{row['interactions']:6d} {row['seconds']:7.2f} "
            f"{row['us_per_interaction']:15.1f}"
        )
    # Sampled-receptive-field training cost grows sub-quadratically: the
    # per-interaction cost may rise with graph size but stays within ~4x.
    for name in ("KGCN", "RippleNet"):
        costs = [r["us_per_interaction"] for r in rows if r["model"] == name]
        assert costs[1] < costs[0] * 4.0, name
