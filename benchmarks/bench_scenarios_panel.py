"""Table 4 in motion — now at process-pool speed and generator scale.

The survey's dataset section argues KG side information integrates
naturally into every application scenario.  This bench drives all seven
scenario generators through the same model panel and measures the two
performance claims of the scaling work:

1. **Vectorized worlds** — per-scenario generate time at panel size, and
   the fast-mode scale curve up to 10^5 users / 10^6 interactions.
2. **Process-pool panels** — the 7-scenario panel run sequentially vs
   ``run_panel(executor="process", max_workers=4)``, asserting row-for-row
   identical results while measuring the wall-clock speedup.  Two panels
   are recorded: the real model panel (CPU-bound, so its speedup is
   limited by the host's core count, which is recorded alongside) and a
   wall-clock-bound panel whose entries have a fixed 1 s fit cost, which
   isolates the executor's overlap + dispatch overhead from the CPU
   budget and demonstrates the ≥3x speedup at 4 workers on any host.

Run as a script:

    PYTHONPATH=src python benchmarks/bench_scenarios_panel.py           # full
    PYTHONPATH=src python benchmarks/bench_scenarios_panel.py --smoke   # CI

The full run writes machine-readable results to ``--out`` (default
``benchmarks/BENCH_scenarios.json``).  ``--smoke`` asserts the contracts
— sequential/process row equality across every scenario, exact-mode
bitwise parity with the loop reference, fast-mode determinism — without
recording timings (CI machines don't produce stable numbers).  Recorded
numbers are discussed in ``docs/performance.md`` and
``docs/synthetic_worlds.md``.

The pytest entry (``test_all_scenarios``) keeps the original quality
gate: every run finishes, every KG model is personalized, and KGCN stays
competitive with BPR-MF on average across scenarios.
"""

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.recommender import Recommender
from repro.data import SCENARIO_SCHEMAS
from repro.data._reference import generate_dataset_reference
from repro.data.synthetic import generate_dataset
from repro.experiments.harness import run_panel
from repro.models.baselines import BPRMF, MostPopular
from repro.models.embedding_based import CKE
from repro.models.unified import AKUPM, KGCN

DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_scenarios.json"

#: Panel world size for the speedup measurement: large enough that
#: per-entry fit cost dominates fork/pool overhead, small enough that the
#: full bench stays under two minutes.
PANEL_DATA = dict(num_users=200, num_items=200, mean_interactions=12.0)
SMOKE_DATA = dict(num_users=50, num_items=80, mean_interactions=9.0)

#: Epochs calibrated to roughly equal per-entry cost (~2 s each at
#: PANEL_DATA), so a 4-worker pool genuinely runs the panel at
#: slowest-entry speed rather than being gated by one dominant model.
PANEL_MODELS = {
    "BPR-MF": lambda seed: BPRMF(epochs=60, seed=seed),
    "KGCN": lambda seed: KGCN(epochs=25, num_negatives=2, seed=seed),
    "AKUPM": lambda seed: AKUPM(epochs=18, seed=seed),
    "CKE": lambda seed: CKE(epochs=110, seed=seed),
}
SMOKE_MODELS = {
    "BPR-MF": lambda seed: BPRMF(epochs=10, seed=seed),
    "KGCN": lambda seed: KGCN(epochs=6, num_negatives=2, seed=seed),
}

#: Fast-mode scale curve; the last row is the 10^5-user / 10^6-interaction
#: world the scaling work targets.
SCALE_SIZES = ((1_000, 500), (10_000, 1_000), (100_000, 2_000))


class WallClockFit(Recommender):
    """Entry whose fit cost is wall-clock, not CPU.

    Sleeps ``cost`` seconds, then behaves like :class:`MostPopular`
    (deterministic, so sequential/process rows still compare equal).
    Used to measure the executor's overlap independently of how many
    cores the bench host happens to have: four of these at 4 workers
    finish in ~1x the single-entry cost on any machine.
    """

    def __init__(self, cost: float) -> None:
        super().__init__()
        self._cost = cost
        self._pop = MostPopular()

    def fit(self, dataset) -> "WallClockFit":
        time.sleep(self._cost)
        self._pop.fit(dataset)
        self._mark_fitted(dataset)
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        return self._pop.score_all(user_id)


def _factories(models, seed):
    return {name: (lambda b=build: b(seed)) for name, build in models.items()}


def _panel_rows(panel):
    return [(r.model, tuple(sorted(r.values.items()))) for r in panel]


# --------------------------------------------------------------------- #
# measurements (full mode)
# --------------------------------------------------------------------- #
def bench_generate(seed: int = 0) -> dict:
    """Per-scenario generate time (exact mode) + the fast-mode scale curve."""
    per_scenario = {}
    for name in sorted(SCENARIO_SCHEMAS):
        t0 = time.perf_counter()
        data = generate_dataset(SCENARIO_SCHEMAS[name], seed=seed, **PANEL_DATA)
        per_scenario[name] = {
            "seconds": round(time.perf_counter() - t0, 4),
            "interactions": int(data.interactions.nnz),
            "triples": int(data.kg.num_triples),
        }
    scale = []
    for num_users, num_items in SCALE_SIZES:
        t0 = time.perf_counter()
        data = generate_dataset(
            SCENARIO_SCHEMAS["movie"],
            num_users=num_users,
            num_items=num_items,
            mean_interactions=10.0,
            fast=True,
            seed=seed,
        )
        scale.append(
            {
                "num_users": num_users,
                "num_items": num_items,
                "interactions": int(data.interactions.nnz),
                "triples": int(data.kg.num_triples),
                "seconds": round(time.perf_counter() - t0, 3),
            }
        )
    return {"per_scenario": per_scenario, "scale_fast_mode": scale}


def _measure_panels(datasets, make_factories, workers: int, seed: int) -> dict:
    """Time each scenario's panel sequentially vs pooled; assert equal rows."""

    def run(executor):
        elapsed, rows = {}, {}
        for name, data in datasets.items():
            factories = make_factories()
            t0 = time.perf_counter()
            panel = run_panel(
                data,
                factories,
                max_users=40,
                seed=seed,
                executor=executor,
                max_workers=workers if executor == "process" else None,
            )
            elapsed[name] = time.perf_counter() - t0
            assert panel.ok, (name, panel.failures)
            rows[name] = _panel_rows(panel)
        return elapsed, rows

    seq_elapsed, seq_rows = run("sequential")
    par_elapsed, par_rows = run("process")
    assert par_rows == seq_rows, "process-pool rows diverged from sequential"

    seq_total = sum(seq_elapsed.values())
    par_total = sum(par_elapsed.values())
    return {
        "sequential_seconds": round(seq_total, 2),
        "process_seconds": round(par_total, 2),
        "speedup": round(seq_total / par_total, 2),
        "per_scenario": {
            name: {
                "sequential": round(seq_elapsed[name], 2),
                "process": round(par_elapsed[name], 2),
            }
            for name in seq_elapsed
        },
        "rows_identical": True,
    }


def bench_panel(seed: int = 0, workers: int = 4, overlap_cost: float = 1.0) -> dict:
    """7-scenario panel: sequential vs process pool, rows asserted equal.

    Records two measurements.  ``models_cpu_bound`` runs the real
    calibrated model panel — its speedup is capped by ``min(workers,
    cpu_count)`` since the entries saturate a core each.  ``executor_overlap``
    runs entries with a fixed wall-clock fit cost, measuring the pool's
    dispatch/merge overhead and overlap independent of the host's core
    count; its speedup is what the executor itself delivers at 4 workers.
    """
    datasets = {
        name: generate_dataset(SCENARIO_SCHEMAS[name], seed=seed, **PANEL_DATA)
        for name in sorted(SCENARIO_SCHEMAS)
    }
    cpu_bound = _measure_panels(
        datasets, lambda: _factories(PANEL_MODELS, seed), workers, seed
    )
    cpu_bound["models"] = list(PANEL_MODELS)
    overlap = _measure_panels(
        datasets,
        lambda: {
            f"entry-{i}": (lambda: WallClockFit(overlap_cost)) for i in range(4)
        },
        workers,
        seed,
    )
    overlap["entry_fit_seconds"] = overlap_cost
    return {
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "data": PANEL_DATA,
        "models_cpu_bound": cpu_bound,
        "executor_overlap": overlap,
        "speedup": overlap["speedup"],
    }


# --------------------------------------------------------------------- #
# smoke mode (CI): assertions, not timings
# --------------------------------------------------------------------- #
def run_smoke(seed: int = 0) -> str:
    lines = []

    # 1. Exact mode stays bitwise-identical to the loop reference.
    for name in sorted(SCENARIO_SCHEMAS):
        a = generate_dataset(SCENARIO_SCHEMAS[name], seed=seed, **SMOKE_DATA)
        b = generate_dataset_reference(
            SCENARIO_SCHEMAS[name], seed=seed, **SMOKE_DATA
        )
        ca, cb = a.interactions.to_csr(), b.interactions.to_csr()
        assert np.array_equal(ca.indptr, cb.indptr), name
        assert np.array_equal(ca.indices, cb.indices), name
        assert np.array_equal(a.kg.store.heads, b.kg.store.heads), name
        assert np.array_equal(a.kg.store.tails, b.kg.store.tails), name
        assert np.array_equal(
            a.extra["item_latent"], b.extra["item_latent"]
        ), name
    lines.append(
        f"generator parity OK: {len(SCENARIO_SCHEMAS)} scenarios "
        "bitwise-equal to the loop reference"
    )

    # 2. Fast mode is deterministic per seed.
    fa = generate_dataset(
        SCENARIO_SCHEMAS["movie"], fast=True, seed=seed, **SMOKE_DATA
    )
    fb = generate_dataset(
        SCENARIO_SCHEMAS["movie"], fast=True, seed=seed, **SMOKE_DATA
    )
    assert np.array_equal(
        fa.interactions.to_csr().indices, fb.interactions.to_csr().indices
    )
    assert np.array_equal(fa.kg.store.heads, fb.kg.store.heads)
    lines.append("fast-mode determinism OK")

    # 3. Process-pool rows identical to sequential on every scenario.
    for name in sorted(SCENARIO_SCHEMAS):
        data = generate_dataset(SCENARIO_SCHEMAS[name], seed=seed, **SMOKE_DATA)
        seq = run_panel(
            data, _factories(SMOKE_MODELS, seed), max_users=20, seed=seed
        )
        par = run_panel(
            data,
            _factories(SMOKE_MODELS, seed),
            max_users=20,
            seed=seed,
            executor="process",
            max_workers=2,
        )
        assert seq.ok and par.ok, (name, seq.failures, par.failures)
        assert _panel_rows(par) == _panel_rows(seq), name
    lines.append(
        f"panel equivalence OK: {len(SCENARIO_SCHEMAS)} scenarios, "
        "sequential == process rows"
    )

    lines.append("scenarios smoke OK")
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# pytest entry: the original scenario-agnosticism quality gate
# --------------------------------------------------------------------- #
def _quality_panel(seed: int = 0):
    rows = []
    for name in sorted(SCENARIO_SCHEMAS):
        data = generate_dataset(SCENARIO_SCHEMAS[name], seed=seed, **SMOKE_DATA)
        panel = run_panel(
            data,
            {
                "BPR-MF": lambda: BPRMF(epochs=20, seed=seed),
                "KGCN": lambda: KGCN(epochs=20, num_negatives=2, seed=seed),
            },
            max_users=30,
            seed=seed,
        )
        assert panel.ok, (name, panel.failures)
        by_model = {r.model: r for r in panel}
        rows.append(
            {
                "scenario": name,
                "BPR-MF": by_model["BPR-MF"]["AUC"],
                "KGCN": by_model["KGCN"]["AUC"],
                "delta": by_model["KGCN"]["AUC"] - by_model["BPR-MF"]["AUC"],
            }
        )
    return rows


def test_all_scenarios(benchmark):
    from ._util import run_once

    rows = run_once(benchmark, _quality_panel)
    print("\nAll seven Table 4 scenarios: AUC (BPR-MF vs KGCN)")
    print(f"  {'scenario':9s} {'BPR-MF':>8s} {'KGCN':>8s} {'delta':>8s}")
    for row in rows:
        print(
            f"  {row['scenario']:9s} {row['BPR-MF']:8.4f} {row['KGCN']:8.4f} "
            f"{row['delta']:+8.4f}"
        )
    assert len(rows) == 7
    for row in rows:
        # The KG model must be personalized in every scenario; the CF
        # baseline may sit at chance where interactions are too sparse —
        # which is exactly the KG side information's selling point.
        assert row["KGCN"] > 0.5, row["scenario"]
    # On average across scenarios the KG model is at least competitive.
    mean_delta = float(np.mean([r["delta"] for r in rows]))
    print(f"\nmean KGCN-vs-BPR delta: {mean_delta:+.4f}")
    assert mean_delta > -0.02


# --------------------------------------------------------------------- #
def main() -> None:
    parser = argparse.ArgumentParser(
        description="Scenario-panel benchmark: vectorized worlds + process pool"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="assert parity/equivalence contracts instead of timing (CI mode)",
    )
    args = parser.parse_args()

    if args.smoke:
        print(run_smoke(seed=args.seed))
        return

    print("generator measurements ...")
    generate = bench_generate(seed=args.seed)
    for name, row in generate["per_scenario"].items():
        print(f"  {name:9s} {row['seconds']:7.3f}s  "
              f"{row['interactions']:>6d} interactions")
    for row in generate["scale_fast_mode"]:
        print(f"  {row['num_users']:>7d} users  {row['interactions']:>9d} "
              f"interactions  {row['seconds']:7.2f}s (fast)")

    print(f"panel measurements ({args.workers} workers, "
          f"{os.cpu_count()} cpus) ...")
    panel = bench_panel(seed=args.seed, workers=args.workers)
    for key in ("models_cpu_bound", "executor_overlap"):
        m = panel[key]
        print(f"  {key:17s} sequential {m['sequential_seconds']:6.2f}s   "
              f"process {m['process_seconds']:6.2f}s   "
              f"speedup {m['speedup']:.2f}x")

    payload = {
        "bench": "scenarios_panel",
        "seed": args.seed,
        "generate": generate,
        "panel": panel,
    }
    Path(args.out).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print(f"results written to {args.out}")


if __name__ == "__main__":
    main()
