"""Table 4 in motion: the KG-vs-CF comparison across all seven scenarios.

The survey's dataset section argues KG side information integrates
naturally into every application scenario.  This bench runs the same
(BPR-MF, KGCN) pair on each scenario's synthetic stand-in and checks the
pipeline is scenario-agnostic: every run finishes, every model is
personalized, and the KG model is competitive everywhere.
"""

import numpy as np

from repro.core.splitter import random_split
from repro.data import SCENARIO_SCHEMAS
from repro.data.synthetic import generate_dataset
from repro.eval.evaluator import Evaluator
from repro.models.baselines import BPRMF
from repro.models.unified import KGCN

from ._util import run_once


def _panel(seed: int = 0):
    rows = []
    for name in sorted(SCENARIO_SCHEMAS):
        data = generate_dataset(
            SCENARIO_SCHEMAS[name],
            num_users=50,
            num_items=80,
            mean_interactions=9.0,
            seed=seed,
        )
        train, test = random_split(data, seed=seed)
        evaluator = Evaluator(train, test, seed=seed, max_users=30)
        bpr = evaluator.evaluate(BPRMF(epochs=20, seed=seed).fit(train))
        kgcn = evaluator.evaluate(
            KGCN(epochs=20, num_negatives=2, seed=seed).fit(train)
        )
        rows.append(
            {
                "scenario": name,
                "BPR-MF": bpr["AUC"],
                "KGCN": kgcn["AUC"],
                "delta": kgcn["AUC"] - bpr["AUC"],
            }
        )
    return rows


def test_all_scenarios(benchmark):
    rows = run_once(benchmark, _panel)
    print("\nAll seven Table 4 scenarios: AUC (BPR-MF vs KGCN)")
    print(f"  {'scenario':9s} {'BPR-MF':>8s} {'KGCN':>8s} {'delta':>8s}")
    for row in rows:
        print(
            f"  {row['scenario']:9s} {row['BPR-MF']:8.4f} {row['KGCN']:8.4f} "
            f"{row['delta']:+8.4f}"
        )
    assert len(rows) == 7
    for row in rows:
        # The KG model must be personalized in every scenario; the CF
        # baseline may sit at chance where interactions are too sparse —
        # which is exactly the KG side information's selling point.
        assert row["KGCN"] > 0.5, row["scenario"]
    # On average across scenarios the KG model is at least competitive.
    mean_delta = float(np.mean([r["delta"] for r in rows]))
    print(f"\nmean KGCN-vs-BPR delta: {mean_delta:+.4f}")
    assert mean_delta > -0.02
