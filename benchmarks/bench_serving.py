"""Serving load benchmark: persona traffic against the two-stage service.

Drives the ``BENCH_serving.json`` configuration — a 10^5-item clustered
catalog behind :class:`~repro.retrieval.two_stage.TwoStageRecommender`
(IVF candidates + exact rerank) with an exact-scoring fallback rung —
from a seeded :class:`~repro.traffic.personas.PersonaPopulation` at
thousands of requests per *simulated* second on a ``ManualClock``.  The
run must clear the 2,000 req/simulated-second floor, reconcile exactly
against the service's own telemetry, and the report records throughput,
p50/p99 latency, and shed/degrade rates per persona.

Run as a script:

    PYTHONPATH=src python benchmarks/bench_serving.py           # full bench
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke   # CI smoke

The full run writes machine-readable results to ``--out`` (default
``benchmarks/BENCH_serving.json``).  ``--smoke`` runs a smaller catalog
and asserts the contracts CI relies on — determinism (byte-identical
reports and outcome sequences across duplicate runs), exact telemetry
reconciliation, and a scaled throughput floor — with no wall-clock
timings.  See ``docs/load_testing.md`` for the methodology.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.traffic import (
    LoadHarness,
    PersonaPopulation,
    ScheduleProfile,
    TrafficSchedule,
    build_two_stage_service,
)
from repro.traffic.report import check_bench_floor

DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_serving.json"

#: Acceptance floor: simulated requests per simulated second.
RPS_FLOOR = 2000.0


def build_run(
    num_items: int,
    num_users: int,
    num_members: int,
    horizon: float,
    rate_scale: float,
    seed: int,
    scenario: str = "movie",
) -> LoadHarness:
    """One seeded persona-load world over the two-stage service."""
    population = PersonaPopulation.from_scenario(
        scenario, num_users=num_users, seed=seed, num_members=num_members
    )
    profile = ScheduleProfile(
        horizon=horizon,
        day_period=horizon / 2,
        flash_crowds=((0.55 * horizon, 0.1 * horizon, 2.5),),
        rate_scale=rate_scale,
    )
    schedule = TrafficSchedule(population, profile, seed=seed)
    service, clock, __ = build_two_stage_service(
        num_items=num_items,
        num_users=num_users,
        seed=seed,
        num_requests=len(schedule),
    )
    return LoadHarness(
        service, schedule, clock, name=f"two-stage-{num_items}", seed=seed
    )


def run(args) -> None:
    harness = build_run(
        args.items, args.users, args.members,
        args.horizon, args.rate_scale, args.seed,
    )
    schedule = harness.schedule
    scheduled_rps = schedule.request_rate()
    print(
        f"{args.items} items: {len(schedule)} requests scheduled over "
        f"{args.horizon:.1f}s simulated ({scheduled_rps:.0f} rps offered)"
    )

    t0 = time.perf_counter()
    report = harness.run()
    wall = time.perf_counter() - t0
    tally = harness.reconcile()
    check_bench_floor(report, RPS_FLOOR)

    print(report.render())
    print(
        f"\nwall clock: {wall:.2f}s for {report.sim_seconds:.2f}s simulated "
        f"({report.requests / wall:.0f} req/wall-second)"
    )
    print(
        "telemetry reconciliation: exact ("
        + ", ".join(f"{k}={v}" for k, v in tally.items())
        + ")"
    )

    results = {
        "config": {
            "num_items": args.items,
            "num_users": args.users,
            "num_members": args.members,
            "horizon_seconds": args.horizon,
            "rate_scale": args.rate_scale,
            "seed": args.seed,
            "scenario": "movie",
            "primary": "two_stage (IVF candidates + exact rerank)",
            "fallback": "exact embedding scoring",
        },
        "offered_rps": scheduled_rps,
        "rps_floor": RPS_FLOOR,
        "report": report.to_dict(),
        "reconciliation": tally,
        "wall_seconds": wall,
    }
    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {out}")


# --------------------------------------------------------------------- #
def smoke(args) -> None:
    """Small-catalog contracts run for CI: determinism + reconciliation.

    No wall-clock assertions — everything checked is simulated-time or
    bitwise.  The throughput floor is scaled to the smoke's offered rate.
    """
    num_items, num_users, num_members = 20_000, 512, 32
    horizon, rate_scale = 1.0, 8.0

    runs = []
    for __ in range(2):
        harness = build_run(
            num_items, num_users, num_members, horizon, rate_scale, args.seed
        )
        harness.run()
        harness.reconcile()
        runs.append(harness)
    first, second = runs

    if first.report.to_json() != second.report.to_json():
        raise AssertionError("LoadReport exports differ between identical runs")
    if first.outcome_trace != second.outcome_trace:
        raise AssertionError("outcome sequences differ between identical runs")

    report = first.report
    if report.requests != len(first.schedule):
        raise AssertionError(
            f"{report.requests} reported of {len(first.schedule)} scheduled"
        )
    if report.rejected:
        raise AssertionError(f"{report.rejected} requests rejected")
    if report.response_rate() < 0.5:
        raise AssertionError(
            f"response rate {report.response_rate():.3f} below 0.5"
        )
    # Offered load scales with member count; hold the run to half of it.
    floor = 0.5 * first.schedule.request_rate()
    check_bench_floor(report, floor)

    print(
        f"bench_serving smoke: {report.requests} requests at "
        f"{report.throughput_rps:.0f} rps simulated "
        f"(rr={report.response_rate():.3f}, shed={report.shed_rate():.3f}), "
        "deterministic, reconciled"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--items", type=int, default=100_000)
    parser.add_argument("--users", type=int, default=2048)
    parser.add_argument(
        "--members", type=int, default=64,
        help="persona population size (offered load scales with this)",
    )
    parser.add_argument("--horizon", type=float, default=4.0)
    parser.add_argument(
        "--rate-scale", type=float, default=9.0,
        help="multiplier on every persona's base arrival rate",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=str, default=str(DEFAULT_OUT))
    parser.add_argument(
        "--smoke", action="store_true",
        help="small determinism + reconciliation run (CI mode; no timings)",
    )
    args = parser.parse_args()
    if args.smoke:
        smoke(args)
        return
    run(args)


if __name__ == "__main__":
    main()
