"""Table 1 — catalog of commonly used public knowledge graphs."""

from repro.data.kg_catalog import TABLE1, cross_domain
from repro.experiments.tables import table1

from ._util import run_once


def test_table1_regenerates(benchmark):
    text = run_once(benchmark, table1)
    print("\n" + text)
    # Paper-facing checks: 11 KGs, 9 of them cross-domain.
    assert len(TABLE1) == 11
    assert len(cross_domain()) == 9
    for name in ("YAGO", "Freebase", "DBpedia", "Satori", "CN-DBPedia"):
        assert name in text
