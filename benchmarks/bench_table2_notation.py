"""Table 2 — notation glossary, resolved against the live API."""

from repro.core.notation import TABLE2, resolve
from repro.experiments.tables import table2

from ._util import run_once


def test_table2_regenerates(benchmark):
    text = run_once(benchmark, table2, resolve=True)
    print("\n" + text)
    assert len(TABLE2) == 19
    # Every symbol must resolve to a live API object.
    for row in TABLE2:
        assert resolve(row) is not None
