"""Table 3 — the 39 collected papers with usage/technique flags, regenerated
from the model registry (the 'Implemented' column reflects shipped code)."""

import repro.models  # noqa: F401 - populate the registry
from repro.core.registry import SURVEY_TABLE3, Usage, is_implemented
from repro.experiments.tables import table3

from ._util import run_once


def test_table3_regenerates(benchmark):
    text = run_once(benchmark, table3)
    print("\n" + text)
    assert len(SURVEY_TABLE3) == 39
    implemented = [c.name for c in SURVEY_TABLE3 if is_implemented(c.name)]
    print(f"\nImplemented: {len(implemented)}/39 -> {', '.join(implemented)}")
    assert len(implemented) == 39  # full Table 3 coverage
    # Family counts match the paper's grouping.
    assert sum(c.usage is Usage.EMBEDDING for c in SURVEY_TABLE3) == 14
    assert sum(c.usage is Usage.PATH for c in SURVEY_TABLE3) == 15
    assert sum(c.usage is Usage.UNIFIED for c in SURVEY_TABLE3) == 10
