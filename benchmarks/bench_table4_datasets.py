"""Table 4 — datasets per application scenario, with synthetic stand-ins.

Beyond reprinting the catalog, this bench *exercises* it: every scenario's
stand-in generator is invoked and its KG summarized, demonstrating each
Table 4 row is backed by runnable data.
"""

from repro.data.catalog import TABLE4, scenarios_list
from repro.data.scenarios import SCENARIO_SCHEMAS
from repro.experiments.tables import table4

from ._util import run_once


def _generate_all():
    rows = []
    for name, schema in sorted(SCENARIO_SCHEMAS.items()):
        from repro.data.synthetic import generate_dataset

        data = generate_dataset(schema, num_users=30, num_items=50, seed=0)
        rows.append(data.describe())
    return rows


def test_table4_regenerates(benchmark):
    print("\n" + table4())
    summaries = run_once(benchmark, _generate_all)
    print("\nGenerated stand-ins:")
    for info in summaries:
        print(
            f"  {info['name']:22s} users={info['num_users']} items={info['num_items']} "
            f"interactions={info['interactions']} kg_triples={info['kg_triples']}"
        )
    assert len(TABLE4) == 20
    assert len(scenarios_list()) == 7
    assert len(summaries) == 7
