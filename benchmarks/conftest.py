"""Benchmark suite configuration (pytest-benchmark)."""
