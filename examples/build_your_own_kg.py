"""Bring your own data: build a Dataset + KnowledgeGraph from raw records.

Everything in the library runs on two structures — an
:class:`InteractionMatrix` and a :class:`KnowledgeGraph` aligned to items.
This example builds both by hand for a small book store, lifts the item
graph into a user-item graph, inspects the network schema, and trains two
models on it.

Run:  python examples/build_your_own_kg.py
"""

import numpy as np

from repro.core import Dataset, InteractionMatrix, random_split
from repro.eval import Evaluator
from repro.kg import KnowledgeGraph, NetworkSchema, TripleStore, build_user_item_graph
from repro.models.embedding_based import CFKG
from repro.models.unified import RippleNet

BOOKS = ["Dune", "Hyperion", "Neuromancer", "Emma", "Persuasion", "Dracula"]
AUTHORS = ["Herbert", "Simmons", "Gibson", "Austen", "Stoker"]
GENRES = ["sci-fi", "romance", "horror"]


def build_dataset() -> Dataset:
    # Entity layout: books first (aligned with item ids), then attributes.
    labels = BOOKS + AUTHORS + GENRES
    e = {name: i for i, name in enumerate(labels)}
    relations = ["written_by", "has_genre"]
    triples = [
        (e["Dune"], 0, e["Herbert"]),
        (e["Hyperion"], 0, e["Simmons"]),
        (e["Neuromancer"], 0, e["Gibson"]),
        (e["Emma"], 0, e["Austen"]),
        (e["Persuasion"], 0, e["Austen"]),
        (e["Dracula"], 0, e["Stoker"]),
        (e["Dune"], 1, e["sci-fi"]),
        (e["Hyperion"], 1, e["sci-fi"]),
        (e["Neuromancer"], 1, e["sci-fi"]),
        (e["Emma"], 1, e["romance"]),
        (e["Persuasion"], 1, e["romance"]),
        (e["Dracula"], 1, e["horror"]),
    ]
    kg = KnowledgeGraph(
        TripleStore.from_triples(triples, len(labels), len(relations)),
        entity_labels=labels,
        relation_labels=relations,
        entity_types=np.asarray([0] * 6 + [1] * 5 + [2] * 3),
        type_names=["book", "author", "genre"],
    )
    # Six readers; sci-fi fans, Austen fans, and one eclectic reader.
    interactions = InteractionMatrix.from_pairs(
        [
            (0, 0), (0, 1), (0, 2),          # reader 0: all sci-fi
            (1, 0), (1, 1),                   # reader 1: sci-fi
            (2, 3), (2, 4),                   # reader 2: Austen
            (3, 3), (3, 4), (3, 5),           # reader 3: Austen + horror
            (4, 2), (4, 1),                   # reader 4: sci-fi
            (5, 5), (5, 0),                   # reader 5: eclectic
        ],
        num_users=6,
        num_items=6,
    )
    return Dataset(
        name="bookstore",
        interactions=interactions,
        kg=kg,
        item_entities=np.arange(6, dtype=np.int64),
    )


def main() -> None:
    dataset = build_dataset()
    print("Dataset:", dataset.describe())

    # Lift to a user-item graph and inspect the HIN schema.
    lifted = build_user_item_graph(dataset)
    print("\nNetwork schema of the lifted graph:")
    for line in NetworkSchema(lifted.kg).describe():
        print("  " + line)

    # Train on everything (the store is tiny) and recommend.
    model = RippleNet(epochs=20, hops=2, ripple_size=8, seed=0).fit(dataset)
    cfkg = CFKG(epochs=20, seed=0).fit(dataset)
    for user in (0, 2):
        for name, m in (("RippleNet", model), ("CFKG", cfkg)):
            recs = [BOOKS[int(v)] for v in m.recommend(user, k=2)]
            print(f"\n{name} recommends for reader {user}: {', '.join(recs)}")


if __name__ == "__main__":
    main()
