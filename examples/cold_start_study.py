"""Cold-start study: why KGs are recommender systems' safety net.

Reproduces the survey's core motivation (Sections 1 and 2.2): collaborative
filtering has nothing to say about an item nobody has interacted with,
while a KG-aware model can still place it near the items that share its
attributes.  We hold out 25% of items entirely and measure AUC on them.

Run:  python examples/cold_start_study.py
"""

from repro.data import make_movie_dataset
from repro.eval.coldstart import cold_start_study
from repro.models.baselines import BPRMF, ItemKNN
from repro.models.embedding_based import CFKG, CKE
from repro.models.unified import KGCN


def main() -> None:
    dataset = make_movie_dataset(seed=0, num_users=80, num_items=120)
    print("Dataset:", dataset.describe())
    print("Holding out 25% of items as cold (zero training interactions)...\n")

    rows = cold_start_study(
        dataset,
        {
            "BPR-MF (pure CF)": lambda: BPRMF(epochs=25, seed=0),
            "ItemKNN (pure CF)": lambda: ItemKNN(),
            "CKE (KG embedding)": lambda: CKE(epochs=25, seed=0),
            "CFKG (user-item KG)": lambda: CFKG(epochs=25, seed=0),
            "KGCN (KG GNN)": lambda: KGCN(epochs=25, num_negatives=2, seed=0),
        },
        cold_fraction=0.25,
        seed=0,
    )
    print(f"{'model':22s} {'cold-item AUC':>14s}")
    for row in rows:
        print(f"{row['model']:22s} {row['value']:14.4f}")
    print(
        "\nReading: 0.5 is chance. CF models cannot rank items they never saw;\n"
        "KG-aware models exploit shared attributes to place cold items."
    )


if __name__ == "__main__":
    main()
