"""Explainable recommendation: the survey's Figure 1 plus learned reasoners.

Shows both faces of explainability the survey discusses:
1. the hand-built Figure 1 graph, where the explanation paths are exactly
   the ones printed in the paper, and
2. a trained RL path reasoner (PGPR) and rule learner (RuleRec) on a full
   synthetic movie dataset, each justifying its own recommendations.

Run:  python examples/explainable_movies.py
"""

from repro.core import random_split
from repro.data import make_movie_dataset
from repro.eval.explain import explanation_fidelity
from repro.experiments.figure1 import render_figure1
from repro.models.path_based import PGPR, RuleRec


def main() -> None:
    # --- Part 1: the survey's own worked example --------------------- #
    print(render_figure1())

    # --- Part 2: learned explainers on a full dataset ---------------- #
    dataset = make_movie_dataset(seed=1, num_users=60, num_items=90)
    train, __ = random_split(dataset, seed=1)

    print("\n--- PGPR: reinforcement-learning path reasoning ---")
    pgpr = PGPR(epochs=6, seed=1).fit(train)
    user = 0
    for item in pgpr.recommend(user, k=3):
        for expl in pgpr.explain(user, int(item)):
            print(f"  {expl.render(pgpr.explanation_dataset.kg)}")
    report = explanation_fidelity(pgpr, users=list(range(10)), k=5)
    print(f"  fidelity: validity={report['validity']:.2f} "
          f"coverage={report['coverage']:.2f}")

    print("\n--- RuleRec: learned item-association rules ---")
    rulerec = RuleRec(seed=1).fit(train)
    print("  learned rule weights:")
    for rule, weight in zip(rulerec.rules, rulerec.rule_weights):
        print(f"    {weight:6.3f}  {rule.describe(dataset.kg)}")
    for item in rulerec.recommend(user, k=3):
        for expl in rulerec.explain(user, int(item)):
            print(f"  because: {expl.detail}")
            if expl.entities:
                print(f"    grounded: {expl.render(dataset.kg)}")


if __name__ == "__main__":
    main()
