"""KGE playground: compare the six embedding models on one graph.

The survey's Future Directions asks when to prefer translation-distance
over semantic-matching KGE.  This example trains all six models on the
movie KG, reports filtered link prediction, probes what the embeddings
learned (nearest neighbors of a genre), and shows the downstream effect of
the KGE choice inside CKE.

Run:  python examples/kge_playground.py
"""

import numpy as np

from repro.core import random_split
from repro.data import make_movie_dataset
from repro.eval import Evaluator
from repro.kg import TripleStore, evaluate_link_prediction
from repro.kge import KGE_MODELS
from repro.models.embedding_based import CKE


def main() -> None:
    dataset = make_movie_dataset(seed=0, num_users=60, num_items=100)
    kg = dataset.kg
    rng = np.random.default_rng(0)

    # Hold out 15% of facts for link prediction.
    triples = kg.triples()
    order = rng.permutation(triples.shape[0])
    n_test = int(0.15 * triples.shape[0])
    test, train_triples = triples[order[:n_test]], triples[order[n_test:]]
    train_store = TripleStore.from_triples(
        train_triples, kg.num_entities, kg.num_relations
    )

    print("Filtered link prediction on the movie KG:")
    print(f"  {'model':10s} {'MRR':>7s} {'Hits@10':>8s}")
    fitted = {}
    for name, cls in KGE_MODELS.items():
        model = cls(kg.num_entities, kg.num_relations, dim=16, seed=0)
        model.fit(train_store, epochs=25, seed=0)
        fitted[name] = model
        result = evaluate_link_prediction(
            model.score_triples, test, kg.store, kg.num_entities
        )
        print(f"  {name:10s} {result.mrr:7.4f} {result.hits_at_10:8.4f}")

    # What did TransE learn?  Nearest entities to a genre node.
    emb = fitted["TransE"].entity_embeddings()
    genre = kg.entities_of_type(kg.type_names.index("genre"))[0]
    sims = emb @ emb[genre]
    nearest = np.argsort(-sims)[1:6]
    print(f"\nNearest entities to {kg.entity_label(int(genre))} under TransE:")
    for e in nearest:
        print(f"  {kg.entity_label(int(e))}  (dot={sims[e]:.3f})")

    # Downstream: the same CKE with different structural encoders.
    train, test_split = random_split(dataset, seed=0)
    evaluator = Evaluator(train, test_split, seed=0, max_users=40)
    print("\nCKE with different KGE backbones:")
    for name in ("TransE", "TransR", "DistMult"):
        model = CKE(kge=name, epochs=25, seed=0).fit(train)
        result = evaluator.evaluate(model, name=f"CKE[{name}]")
        print(f"  CKE[{name:8s}] AUC={result['AUC']:.4f} NDCG@10={result['NDCG@10']:.4f}")


if __name__ == "__main__":
    main()
