"""News recommendation with DKN: content + knowledge channels.

The survey singles out news as the scenario where KGs matter most: articles
are short-lived and condensed, so understanding them needs the entity
layer.  The synthetic news scenario provides both channels — text features
and a ``mentions`` KG — and this example compares DKN against a text-blind
CF baseline and a KG-distance heuristic (SED).

Run:  python examples/news_recommendation.py
"""

from repro.core import random_split
from repro.data import make_news_dataset
from repro.eval import Evaluator
from repro.experiments import results_table
from repro.models.baselines import BPRMF
from repro.models.embedding_based import DKN, SED


def main() -> None:
    # News feedback is sparse and fast-moving; keep density realistic so the
    # content/knowledge channels have something to add over pure CF.
    dataset = make_news_dataset(seed=0, num_users=60, num_items=90, mean_interactions=7.0)
    print("Dataset:", dataset.describe())
    print("Text features per article:", dataset.item_text.shape[1])

    train, test = random_split(dataset, seed=0)
    evaluator = Evaluator(train, test, seed=0, max_users=40)

    models = {
        "BPR-MF (no content, no KG)": BPRMF(epochs=30, seed=0).fit(train),
        "SED (KG distance only)": SED().fit(train),
        "DKN (text + KG channels)": DKN(epochs=12, seed=0).fit(train),
    }
    results = [evaluator.evaluate(m, name=n) for n, m in models.items()]
    print()
    print(results_table(results, title="News recommendation (synthetic Bing-News)"))

    # Where the content/knowledge channels really pay off: *new* articles.
    # News items have no interaction history by definition of the scenario;
    # the cold-item protocol makes CF blind while content models still rank.
    from repro.eval import cold_start_study

    print("\nCold-article ranking (the regime news recommendation lives in):")
    rows = cold_start_study(
        dataset,
        {
            "BPR-MF": lambda: BPRMF(epochs=30, seed=0),
            "SED": lambda: SED(),
            "DKN": lambda: DKN(epochs=12, seed=0),
        },
        cold_fraction=0.25,
        seed=0,
    )
    for row in rows:
        print(f"  {row['model']:8s} cold-article AUC={row['value']:.4f}")

    # Inspect what the KG contributes: entities mentioned by one article.
    kg = dataset.kg
    article = 0
    entity = dataset.entity_of_item(article)
    mentions = [
        kg.entity_label(t)
        for r, t in kg.neighbors(entity, undirected=False)
        if kg.relation_label(r) == "mentions"
    ]
    print(f"\nArticle 0 mentions: {', '.join(mentions)}")


if __name__ == "__main__":
    main()
