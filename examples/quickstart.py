"""Quickstart: train a KG-aware recommender and compare it with pure CF.

Run:  python examples/quickstart.py
"""

from repro.core import random_split
from repro.data import make_movie_dataset
from repro.eval import Evaluator
from repro.experiments import results_table
from repro.models.baselines import BPRMF, MostPopular
from repro.models.unified import KGCN


def main() -> None:
    # 1. A synthetic MovieLens-style dataset with an aligned item KG:
    #    movies link to genres/actors/directors, and those links carry the
    #    preference signal (that is the survey's core premise).
    dataset = make_movie_dataset(seed=0)
    print("Dataset:", dataset.describe())
    print("KG relations:", dataset.kg.relation_labels)

    # 2. Hold out 20% of interactions.
    train, test = random_split(dataset, seed=0)

    # 3. Fit a pure-CF baseline and a KG-aware GNN on the same split.
    models = {
        "MostPopular": MostPopular().fit(train),
        "BPR-MF": BPRMF(epochs=30, seed=0).fit(train),
        "KGCN": KGCN(epochs=25, num_negatives=2, seed=0).fit(train),
    }

    # 4. Evaluate on identical candidate sets.
    evaluator = Evaluator(train, test, seed=0, max_users=60)
    results = [evaluator.evaluate(m, name=n) for n, m in models.items()]
    print()
    print(results_table(results, title="Quickstart: CF vs KG-aware"))

    # 5. Produce a recommendation list for one user.
    user = 0
    recs = models["KGCN"].recommend(user, k=5)
    print(f"\nTop-5 for user {user}:")
    for item in recs:
        print(f"  {dataset.kg.entity_label(dataset.entity_of_item(int(item)))}")


if __name__ == "__main__":
    main()
