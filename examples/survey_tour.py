"""A guided tour of the survey in one script.

Walks through the paper's structure with running code: the KG catalogs
(Tables 1 & 4), one representative per method family (Section 4), the
cold-start motivation (Sections 1-2), and explainability — printing a
compact comparison table at the end.

Run:  python examples/survey_tour.py
"""

from repro.core import random_split
from repro.data import TABLE1, make_movie_dataset, scenarios_list
from repro.eval import Evaluator, explanation_fidelity
from repro.experiments import results_table
from repro.experiments.figure1 import render_figure1
from repro.kg import graph_summary
from repro.models.baselines import BPRMF
from repro.models.embedding_based import CKE
from repro.models.path_based import KPRN, HeteRec
from repro.models.unified import KGCN


def main() -> None:
    print("=" * 72)
    print("Section 2 - Knowledge graphs (Table 1)")
    print("=" * 72)
    for kg in TABLE1[:5]:
        print(f"  {kg.name:26s} {kg.domain_type:18s} <- {', '.join(kg.sources)}")
    print(f"  ... and {len(TABLE1) - 5} more; scenarios: {', '.join(scenarios_list())}")

    print("\n" + "=" * 72)
    print("Section 1 - Figure 1, the worked example")
    print("=" * 72)
    print(render_figure1())

    print("\n" + "=" * 72)
    print("Section 4 - one model per family on the same split")
    print("=" * 72)
    dataset = make_movie_dataset(seed=0, mean_interactions=10.0)
    summary = graph_summary(dataset.kg)
    print(f"  movie KG: {summary['entities']} entities, "
          f"{summary['triples']} triples, relations {list(summary['relation_histogram'])}")
    train, test = random_split(dataset, seed=0)
    evaluator = Evaluator(train, test, seed=0, max_users=50)
    models = {
        "BPR-MF (CF baseline)": BPRMF(epochs=30, seed=0),
        "CKE (embedding-based)": CKE(epochs=25, seed=0),
        "HeteRec (path-based)": HeteRec(seed=0),
        "KGCN (unified)": KGCN(epochs=25, num_negatives=2, seed=0),
    }
    results = [evaluator.evaluate(m.fit(train), name=n) for n, m in models.items()]
    print()
    print(results_table(results, title="One representative per family"))

    print("\n" + "=" * 72)
    print("Section 4 - explainability (path-based)")
    print("=" * 72)
    kprn = KPRN(epochs=4, seed=0).fit(train)
    fidelity = explanation_fidelity(kprn, users=list(range(10)), k=5)
    print(f"  KPRN explanation validity: {fidelity['validity']:.0%} of top-5 "
          f"recommendations carry a valid KG path")
    shown = 0
    for item in kprn.recommend(0, k=5):
        for expl in kprn.explain(0, int(item))[:1]:
            print("   ", expl.render(kprn.explanation_dataset.kg))
            shown += 1
        if shown >= 3:
            break


if __name__ == "__main__":
    main()
