"""kgrec — a knowledge-graph-based recommender systems framework.

Reproduction of *A Survey on Knowledge Graph-Based Recommender Systems*
(Guo et al., ICDE 2023 extended abstract / IEEE TKDE).  The package
implements the survey's three method families (embedding-based, path-based,
unified), the KG-embedding substrate, synthetic datasets for its seven
application scenarios, and the evaluation machinery to regenerate its
tables, figure, and qualitative claims.

Quickstart::

    from repro.data import make_movie_dataset
    from repro.core import random_split
    from repro.models.unified import RippleNet
    from repro.eval import Evaluator

    data = make_movie_dataset(seed=0)
    train, test = random_split(data, seed=0)
    model = RippleNet(dim=16, hops=2, seed=0).fit(train)
    print(Evaluator(train, test).evaluate(model))
"""

__version__ = "1.0.0"
