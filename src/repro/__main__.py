"""Command-line interface: regenerate the survey's artifacts and studies.

Usage::

    python -m repro table 1            # print Table 1 (likewise 2, 3, 4)
    python -m repro figure1            # run and print Figure 1
    python -m repro study e1           # run a comparative study (e1..e8)
    python -m repro scenarios          # list dataset generators
    python -m repro models             # list implemented models by family
    python -m repro serve-demo         # chaos replay through the serving layer
"""

from __future__ import annotations

import argparse
import sys


def _cmd_table(number: int) -> str:
    from repro.experiments import tables

    return {1: tables.table1, 2: tables.table2, 3: tables.table3, 4: tables.table4}[
        number
    ]()


def _cmd_figure1() -> str:
    from repro.experiments.figure1 import render_figure1

    return render_figure1()


def _cmd_study(name: str, seed: int) -> str:
    from repro.experiments import comparative
    from repro.experiments.harness import results_table

    runners = {
        "e1": comparative.study_embedding_methods,
        "e1b": comparative.study_kg_signal_sweep,
        "e2": comparative.study_path_methods,
        "e2b": comparative.study_metapath_count,
        "e3": comparative.study_unified_methods,
        "e3b": comparative.study_hop_depth,
        "e4": comparative.study_cold_start,
        "e4b": comparative.study_sparsity,
        "e5": comparative.study_kge_link_prediction,
        "e5b": comparative.study_kge_downstream,
        "e6": comparative.study_aggregators,
        "e7": comparative.study_explainability,
        "e8": comparative.study_multitask,
    }
    if name not in runners:
        raise SystemExit(f"unknown study {name!r}; choose from {sorted(runners)}")
    result = runners[name](seed=seed)
    if result and hasattr(result[0], "model") and hasattr(result[0], "values"):
        return results_table(result, title=f"Study {name.upper()}")
    lines = [f"Study {name.upper()}"]
    for row in result:
        lines.append(
            "  " + "  ".join(f"{k}={v:.4f}" if isinstance(v, float) else f"{k}={v}"
                             for k, v in row.items())
        )
    return "\n".join(lines)


def _cmd_scenarios() -> str:
    from repro.data import SCENARIO_SCHEMAS

    lines = ["Available scenario generators (repro.data.make_<name>_dataset):"]
    for name, schema in sorted(SCENARIO_SCHEMAS.items()):
        attrs = ", ".join(a.name for a in schema.attributes)
        lines.append(f"  {name:8s} item={schema.item_type:10s} attributes: {attrs}")
    return "\n".join(lines)


def _cmd_models() -> str:
    import repro.models  # noqa: F401 - populate registry
    from repro.core.registry import Usage, card_for, list_registered

    lines = []
    for usage in (Usage.EMBEDDING, Usage.PATH, Usage.UNIFIED, Usage.BASELINE):
        names = list_registered(usage)
        lines.append(f"{usage.value} ({len(names)}):")
        for name in names:
            card = card_for(name)
            venue = f"{card.venue} {card.year}" if card.year else "baseline"
            lines.append(f"  {name:14s} {venue}")
    return "\n".join(lines)


def _cmd_serve_demo(args) -> str:
    from repro.serving.demo import (
        build_demo_service,
        demo_report,
        run_replay,
        run_smoke,
    )

    if args.smoke:
        seeds = tuple(int(s) for s in args.seeds.split(","))
        return run_smoke(seeds=seeds, num_requests=args.requests)
    service, clock, __ = build_demo_service(
        args.seed, args.requests, fault_rate=args.fault_rate
    )
    traces = run_replay(service, clock, args.seed, args.requests)
    return demo_report(service, traces)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="KG-based recommender systems survey reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table", help="print a regenerated survey table")
    p_table.add_argument("number", type=int, choices=(1, 2, 3, 4))

    sub.add_parser("figure1", help="run the Figure 1 reproduction")

    p_study = sub.add_parser("study", help="run a comparative study")
    p_study.add_argument("name", help="e1, e1b, e2, ..., e8")
    p_study.add_argument("--seed", type=int, default=0)

    sub.add_parser("scenarios", help="list synthetic dataset generators")
    sub.add_parser("models", help="list implemented models by family")

    p_serve = sub.add_parser(
        "serve-demo",
        help="seeded chaos traffic replay through the fault-tolerant serving layer",
    )
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--requests", type=int, default=300)
    p_serve.add_argument("--fault-rate", type=float, default=0.10)
    p_serve.add_argument(
        "--smoke", action="store_true",
        help="assert chaos invariants over a seed matrix (CI mode)",
    )
    p_serve.add_argument(
        "--seeds", default="0,1,2",
        help="comma-separated seed matrix for --smoke",
    )

    p_report = sub.add_parser("report", help="build the full reproduction report")
    p_report.add_argument("--output", "-o", default=None, help="write to file")
    p_report.add_argument("--full", action="store_true", help="full-size studies")
    p_report.add_argument("--seed", type=int, default=0)

    args = parser.parse_args(argv)
    if args.command == "table":
        print(_cmd_table(args.number))
    elif args.command == "figure1":
        print(_cmd_figure1())
    elif args.command == "study":
        print(_cmd_study(args.name, args.seed))
    elif args.command == "scenarios":
        print(_cmd_scenarios())
    elif args.command == "models":
        print(_cmd_models())
    elif args.command == "serve-demo":
        print(_cmd_serve_demo(args))
    elif args.command == "report":
        from repro.experiments.report import build_report, write_report

        if args.output:
            path = write_report(args.output, fast=not args.full, seed=args.seed)
            print(f"report written to {path}")
        else:
            print(build_report(fast=not args.full, seed=args.seed))
    return 0


if __name__ == "__main__":
    sys.exit(main())
