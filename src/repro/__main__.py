"""Command-line interface: regenerate the survey's artifacts and studies.

Usage::

    python -m repro table 1            # print Table 1 (likewise 2, 3, 4)
    python -m repro figure1            # run and print Figure 1
    python -m repro study e1           # run a comparative study (e1..e8)
    python -m repro study e3 --parallel --workers 4   # same rows, pool speed
    python -m repro scenarios          # list dataset generators
    python -m repro models             # list implemented models by family
    python -m repro serve-demo         # chaos replay through the serving layer
    python -m repro load-test          # persona-driven load run + LoadReport
    python -m repro retrieval-demo     # ANN rung: staleness + index-synced promote
    python -m repro online-demo        # continuous deployment under churn + faults
    python -m repro trace-report f.jsonl   # render a --trace-out capture
    python -m repro store-verify DIR   # fsck an embedding store (--repair)
    python -m repro durability-smoke   # crash-matrix sweep (CI mode)

``study`` and ``serve-demo`` accept ``--trace-out <path>`` to export the
run's telemetry (spans + metrics) as JSONL; ``trace-report`` renders such
a capture as a span tree with self/total times, hotspots, and outcome
summaries (``--check`` schema-validates instead, for CI).
"""

from __future__ import annotations

import argparse
import sys


def _cmd_table(number: int) -> str:
    from repro.experiments import tables

    return {1: tables.table1, 2: tables.table2, 3: tables.table3, 4: tables.table4}[
        number
    ]()


def _cmd_figure1() -> str:
    from repro.experiments.figure1 import render_figure1

    return render_figure1()


def _cmd_study(
    name: str,
    seed: int,
    trace_out: str | None = None,
    parallel: bool = False,
    workers: int | None = None,
) -> str:
    import inspect

    from repro.experiments import comparative
    from repro.experiments.harness import results_table

    runners = {
        "e1": comparative.study_embedding_methods,
        "e1b": comparative.study_kg_signal_sweep,
        "e2": comparative.study_path_methods,
        "e2b": comparative.study_metapath_count,
        "e3": comparative.study_unified_methods,
        "e3b": comparative.study_hop_depth,
        "e4": comparative.study_cold_start,
        "e4b": comparative.study_sparsity,
        "e5": comparative.study_kge_link_prediction,
        "e5b": comparative.study_kge_downstream,
        "e6": comparative.study_aggregators,
        "e7": comparative.study_explainability,
        "e8": comparative.study_multitask,
    }
    if name not in runners:
        raise SystemExit(f"unknown study {name!r}; choose from {sorted(runners)}")
    runner = runners[name]
    kwargs: dict = {"seed": seed}
    if parallel:
        # Panel-based studies expose executor/max_workers; the others
        # (cold-start, link prediction, explainability) have no panel to
        # parallelise, so --parallel is a clear error there, not a no-op.
        if "executor" not in inspect.signature(runner).parameters:
            raise SystemExit(f"study {name!r} does not support --parallel")
        kwargs.update(executor="process", max_workers=workers)
    trace_note = ""
    if trace_out:
        # Activating here is what routes run_panel, KGE fits, optimizer
        # steps, and negative sampling inside the study into one capture.
        from repro.telemetry import Telemetry, activated

        tel = Telemetry()
        with activated(tel):
            result = runner(**kwargs)
        trace_note = f"\ntrace capture written to {tel.export_jsonl(trace_out)}"
    else:
        result = runner(**kwargs)
    if result and hasattr(result[0], "model") and hasattr(result[0], "values"):
        return results_table(result, title=f"Study {name.upper()}") + trace_note
    lines = [f"Study {name.upper()}"]
    for row in result:
        lines.append(
            "  " + "  ".join(f"{k}={v:.4f}" if isinstance(v, float) else f"{k}={v}"
                             for k, v in row.items())
        )
    return "\n".join(lines) + trace_note


def _cmd_scenarios() -> str:
    from repro.data import SCENARIO_SCHEMAS

    lines = ["Available scenario generators (repro.data.make_<name>_dataset):"]
    for name, schema in sorted(SCENARIO_SCHEMAS.items()):
        attrs = ", ".join(a.name for a in schema.attributes)
        lines.append(f"  {name:8s} item={schema.item_type:10s} attributes: {attrs}")
    return "\n".join(lines)


def _cmd_models() -> str:
    import repro.models  # noqa: F401 - populate registry
    from repro.core.registry import Usage, card_for, list_registered

    lines = []
    for usage in (Usage.EMBEDDING, Usage.PATH, Usage.UNIFIED, Usage.BASELINE):
        names = list_registered(usage)
        lines.append(f"{usage.value} ({len(names)}):")
        for name in names:
            card = card_for(name)
            venue = f"{card.venue} {card.year}" if card.year else "baseline"
            lines.append(f"  {name:14s} {venue}")
    return "\n".join(lines)


def _cmd_serve_demo(args) -> str:
    from repro.serving.demo import (
        build_demo_service,
        demo_report,
        run_replay,
        run_smoke,
    )

    if args.smoke:
        seeds = tuple(int(s) for s in args.seeds.split(","))
        return run_smoke(
            seeds=seeds, num_requests=args.requests, trace_out=args.trace_out
        )
    service, clock, __ = build_demo_service(
        args.seed, args.requests, fault_rate=args.fault_rate,
        trace=args.trace_out is not None,
    )
    traces = run_replay(service, clock, args.seed, args.requests)
    report = demo_report(service, traces)
    if args.trace_out:
        path = service.telemetry.export_jsonl(args.trace_out)
        report += f"\n\ntrace capture written to {path}"
    return report


def _cmd_load_test(args) -> str:
    from repro.traffic.demo import run_load_test, run_smoke

    if args.smoke:
        seeds = tuple(int(s) for s in args.seeds.split(","))
        return run_smoke(seeds=seeds)
    return run_load_test(
        scenario=args.scenario,
        seed=args.seed,
        horizon=args.horizon,
        rate_scale=args.rate_scale,
        fault_rate=args.fault_rate,
    )


def _cmd_retrieval_demo(args) -> str:
    from repro.retrieval.demo import run_demo

    return run_demo(seed=args.seed, num_requests=args.requests)


def _cmd_online_demo(args) -> str:
    from repro.online.demo import run_demo, run_smoke

    if args.smoke:
        seeds = tuple(int(s) for s in args.seeds.split(","))
        return run_smoke(seeds=seeds)
    return run_demo(seed=args.seed, num_batches=args.batches)


def _cmd_trace_report(args) -> str:
    from repro.telemetry import check_trace, trace_report

    if args.check:
        errors = check_trace(args.path)
        if errors:
            raise SystemExit(
                "trace schema check FAILED:\n" + "\n".join(f"  {e}" for e in errors)
            )
        return f"trace schema check OK: {args.path}"
    return trace_report(args.path, top=args.top)


def _cmd_store_verify(args) -> str:
    from repro.core.exceptions import StoreError
    from repro.store import inspect_store, render_report, repair_store

    if args.repair:
        try:
            report, actions = repair_store(args.path)
        except StoreError as exc:
            raise SystemExit(f"repair FAILED: {exc}")
        lines = [render_report(report), ""]
        lines.append(f"repair actions ({len(actions)}):")
        lines.extend(f"  {a}" for a in actions or ["(nothing to do)"])
        if report.current is None:  # pragma: no cover - repair_store raises first
            raise SystemExit("repair FAILED: no consistent generation")
        return "\n".join(lines)
    try:
        report = inspect_store(args.path)
    except StoreError as exc:
        raise SystemExit(f"store-verify FAILED: {exc}")
    out = render_report(report)
    if report.current is None:
        raise SystemExit(out + "\nstore-verify FAILED: no consistent generation")
    broken = [g.generation for g in report.generations if not g.ok]
    if broken or report.orphans:
        raise SystemExit(
            out + "\nstore-verify FAILED: "
            f"{len(broken)} broken generation(s), {len(report.orphans)} "
            "orphan shard(s); run with --repair to quarantine and fall back"
        )
    return out


def _cmd_durability_smoke(args) -> str:
    import tempfile
    from pathlib import Path

    from repro.store.harness import make_corrupted_store, run_smoke

    seeds = tuple(int(s) for s in args.seeds.split(","))
    lines = []
    with tempfile.TemporaryDirectory(prefix="durability-smoke-") as tmp:
        workdir = Path(args.workdir) if args.workdir else Path(tmp)
        results = run_smoke(workdir, seeds=seeds)
        lines.extend(r.summary() for r in results)
        cells = sum(len(r.cells) for r in results)
        lines.append(
            f"durability smoke OK: {cells} crash cells across "
            f"{len(seeds)} seeds, 0 violations"
        )
    if args.corrupt_store_out:
        store_dir = make_corrupted_store(args.corrupt_store_out, seed=seeds[0])
        lines.append(f"deliberately corrupted store left at {store_dir}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="KG-based recommender systems survey reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table", help="print a regenerated survey table")
    p_table.add_argument("number", type=int, choices=(1, 2, 3, 4))

    sub.add_parser("figure1", help="run the Figure 1 reproduction")

    p_study = sub.add_parser("study", help="run a comparative study")
    p_study.add_argument("name", help="e1, e1b, e2, ..., e8")
    p_study.add_argument("--seed", type=int, default=0)
    p_study.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="export the study's telemetry capture (spans + metrics) as JSONL",
    )
    p_study.add_argument(
        "--parallel", action="store_true",
        help="run the study's panels in a process pool (row-identical to "
        "sequential; panel-based studies only)",
    )
    p_study.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool size for --parallel (default: CPU count)",
    )

    sub.add_parser("scenarios", help="list synthetic dataset generators")
    sub.add_parser("models", help="list implemented models by family")

    p_serve = sub.add_parser(
        "serve-demo",
        help="seeded chaos traffic replay through the fault-tolerant serving layer",
    )
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--requests", type=int, default=300)
    p_serve.add_argument("--fault-rate", type=float, default=0.10)
    p_serve.add_argument(
        "--smoke", action="store_true",
        help="assert chaos invariants over a seed matrix (CI mode)",
    )
    p_serve.add_argument(
        "--seeds", default="0,1,2",
        help="comma-separated seed matrix for --smoke",
    )
    p_serve.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="run traced and export the telemetry capture as JSONL "
        "(with --smoke: also assert trace determinism + outcome reconciliation)",
    )

    p_load = sub.add_parser(
        "load-test",
        help="persona-driven traffic replay: population + schedule + load "
        "report with exact telemetry reconciliation",
    )
    p_load.add_argument(
        "--scenario", default="movie",
        help="Table-4 scenario whose persona mix drives the load",
    )
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument(
        "--horizon", type=float, default=2.0,
        help="simulated seconds of traffic",
    )
    p_load.add_argument(
        "--rate-scale", type=float, default=8.0,
        help="global arrival-rate multiplier (the throughput dial)",
    )
    p_load.add_argument("--fault-rate", type=float, default=0.0)
    p_load.add_argument(
        "--smoke", action="store_true",
        help="assert determinism, response/shed-rate invariants, telemetry "
        "reconciliation, and the persona-driven online bridge (CI mode)",
    )
    p_load.add_argument(
        "--seeds", default="0,1,2,3,4",
        help="comma-separated seed matrix for --smoke",
    )

    p_retr = sub.add_parser(
        "retrieval-demo",
        help="two-stage retrieval replay: ANN rung, injected + real index "
        "staleness, and an index-synced re-promotion",
    )
    p_retr.add_argument("--seed", type=int, default=0)
    p_retr.add_argument("--requests", type=int, default=150)

    p_online = sub.add_parser(
        "online-demo",
        help="online learning loop: seeded interaction stream with churn, "
        "shadow-trained store commits, canary promotions, rollback, and "
        "crash recovery",
    )
    p_online.add_argument("--seed", type=int, default=0)
    p_online.add_argument("--batches", type=int, default=60)
    p_online.add_argument(
        "--smoke", action="store_true",
        help="run the full stream x fault churn matrix and assert bitwise "
        "old-or-new serving, quarantine, and rollback invariants (CI mode)",
    )
    p_online.add_argument(
        "--seeds", default="0,1,2",
        help="comma-separated seed matrix for --smoke",
    )

    p_trace = sub.add_parser(
        "trace-report",
        help="render a --trace-out JSONL capture: span tree, hotspots, outcomes",
    )
    p_trace.add_argument("path", help="capture file written by --trace-out")
    p_trace.add_argument("--top", type=int, default=10, help="hotspot rows")
    p_trace.add_argument(
        "--check", action="store_true",
        help="schema-validate the capture instead of rendering (CI mode)",
    )

    p_fsck = sub.add_parser(
        "store-verify",
        help="fsck an embedding store: verify every manifest and shard checksum",
    )
    p_fsck.add_argument("path", help="store directory (contains manifest-g*.json)")
    p_fsck.add_argument(
        "--repair", action="store_true",
        help="quarantine corrupt/orphaned files and restore the last "
        "consistent generation",
    )

    p_dur = sub.add_parser(
        "durability-smoke",
        help="crash-matrix sweep: inject every IO fault kind at every store "
        "IO op and assert recovery lands on exactly one generation (CI mode)",
    )
    p_dur.add_argument(
        "--seeds", default="0,1,2,3,4",
        help="comma-separated scenario seeds to sweep",
    )
    p_dur.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="keep matrix artifacts here instead of a temp dir",
    )
    p_dur.add_argument(
        "--corrupt-store-out", default=None, metavar="DIR",
        help="also build a store with a deliberately rotted newest "
        "generation at DIR (for exercising store-verify --repair)",
    )

    p_report = sub.add_parser("report", help="build the full reproduction report")
    p_report.add_argument("--output", "-o", default=None, help="write to file")
    p_report.add_argument("--full", action="store_true", help="full-size studies")
    p_report.add_argument("--seed", type=int, default=0)

    args = parser.parse_args(argv)
    if args.command == "table":
        print(_cmd_table(args.number))
    elif args.command == "figure1":
        print(_cmd_figure1())
    elif args.command == "study":
        print(_cmd_study(args.name, args.seed, args.trace_out,
                         parallel=args.parallel, workers=args.workers))
    elif args.command == "scenarios":
        print(_cmd_scenarios())
    elif args.command == "models":
        print(_cmd_models())
    elif args.command == "serve-demo":
        print(_cmd_serve_demo(args))
    elif args.command == "load-test":
        print(_cmd_load_test(args))
    elif args.command == "retrieval-demo":
        print(_cmd_retrieval_demo(args))
    elif args.command == "online-demo":
        print(_cmd_online_demo(args))
    elif args.command == "trace-report":
        print(_cmd_trace_report(args))
    elif args.command == "store-verify":
        print(_cmd_store_verify(args))
    elif args.command == "durability-smoke":
        print(_cmd_durability_smoke(args))
    elif args.command == "report":
        from repro.experiments.report import build_report, write_report

        if args.output:
            path = write_report(args.output, fast=not args.full, seed=args.seed)
            print(f"report written to {path}")
        else:
            print(build_report(fast=not args.full, seed=args.seed))
    return 0


if __name__ == "__main__":
    sys.exit(main())
