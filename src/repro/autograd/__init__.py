"""Reverse-mode autograd engine and neural building blocks (pure NumPy)."""

from . import losses, nn, ops
from .optim import SGD, Adagrad, Adam, Optimizer
from .sparse import SparseGrad
from .tensor import Tensor, as_tensor

__all__ = [
    "Tensor",
    "as_tensor",
    "SparseGrad",
    "ops",
    "nn",
    "losses",
    "Optimizer",
    "SGD",
    "Adagrad",
    "Adam",
]
