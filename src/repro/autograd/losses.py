"""Loss functions used by the surveyed training objectives.

* :func:`bpr_loss` — pairwise Bayesian Personalized Ranking, the implicit
  feedback loss most embedding/unified methods optimize (Eq. 10 pattern).
* :func:`bce_with_logits` — pointwise log loss (RippleNet, KGCN, MKR).
* :func:`margin_ranking_loss` — hinge over triple scores (Eq. 11, TransE
  family, CFKG).
* :func:`mse_loss` — explicit feedback / reconstruction (SHINE, Hete-MF).
"""

from __future__ import annotations

import numpy as np

from . import ops
from .tensor import Tensor, as_tensor

__all__ = ["bpr_loss", "bce_with_logits", "margin_ranking_loss", "mse_loss"]


def bpr_loss(pos_scores: Tensor, neg_scores: Tensor) -> Tensor:
    """``-mean(log sigma(pos - neg))`` over paired positive/negative scores."""
    diff = pos_scores - neg_scores
    return -ops.log(ops.clip_probability(ops.sigmoid(diff))).mean()


def bce_with_logits(logits: Tensor, targets) -> Tensor:
    """Binary cross-entropy on raw scores, numerically stable.

    ``loss = mean(softplus(logits) - targets * logits)``.
    """
    targets = as_tensor(np.asarray(targets, dtype=np.float64))
    return (ops.softplus(logits) - targets * logits).mean()


def margin_ranking_loss(
    positive: Tensor, negative: Tensor, margin: float = 1.0
) -> Tensor:
    """``mean(max(0, margin + positive - negative))``.

    Written for *distance-style* scores where smaller is better for valid
    triples, matching the survey's Eq. 11 hinge.
    """
    raw = positive - negative + margin
    return ops.relu(raw).mean()


def mse_loss(prediction: Tensor, target) -> Tensor:
    target = as_tensor(np.asarray(target, dtype=np.float64))
    diff = prediction - target
    return (diff * diff).mean()
