"""Neural-network layers on top of the autograd engine.

Provides the building blocks used across the surveyed architectures: dense
layers and MLPs, embedding tables, recurrent cells (GRU for KSR/RKGE, LSTM
for KPRN), additive attention, and a 1-d convolution used by the Kim-CNN
text encoder inside DKN/MCRec.
"""

from __future__ import annotations

import numpy as np

from repro.core.rng import ensure_rng

from . import ops
from .tensor import Tensor

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "MLP",
    "GRUCell",
    "LSTMCell",
    "AdditiveAttention",
    "Conv1d",
]


class Parameter(Tensor):
    """A tensor flagged as trainable."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class tracking parameters of itself and registered sub-modules.

    Parameter collection walks ``__dict__`` recursively; hot callers
    (:meth:`zero_grad`, called once per optimizer step) go through a cached
    list instead of re-walking the attribute tree.  The cache is invalidated
    whenever an attribute is (re)assigned on this module; mutating a nested
    container or a sub-module *in place* after training started is outside
    the contract.
    """

    _PARAM_CACHE_KEY = "_param_cache"

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        seen: set[int] = set()
        for key, value in self.__dict__.items():
            if key == Module._PARAM_CACHE_KEY:
                continue
            for p in _collect(value):
                if id(p) not in seen:
                    seen.add(id(p))
                    params.append(p)
        return params

    def cached_parameters(self) -> list[Parameter]:
        """Like :meth:`parameters` but memoized until an attribute changes."""
        cache = self.__dict__.get(Module._PARAM_CACHE_KEY)
        if cache is None:
            cache = self.parameters()
            self.__dict__[Module._PARAM_CACHE_KEY] = cache
        return cache

    def __setattr__(self, name: str, value) -> None:
        self.__dict__.pop(Module._PARAM_CACHE_KEY, None)
        object.__setattr__(self, name, value)

    def zero_grad(self) -> None:
        for p in self.cached_parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())


def _collect(value) -> list[Parameter]:
    if isinstance(value, Parameter):
        return [value]
    if isinstance(value, Module):
        return value.parameters()
    if isinstance(value, (list, tuple)):
        out: list[Parameter] = []
        for v in value:
            out.extend(_collect(v))
        return out
    return []


def _glorot(rng: np.random.Generator, fan_in: int, fan_out: int, shape) -> np.ndarray:
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


class Linear(Module):
    """Affine layer ``x @ W + b``."""

    def __init__(self, in_dim: int, out_dim: int, bias: bool = True, seed=None) -> None:
        rng = ensure_rng(seed)
        self.weight = Parameter(_glorot(rng, in_dim, out_dim, (in_dim, out_dim)))
        self.bias = Parameter(np.zeros(out_dim)) if bias else None

    def __call__(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Trainable lookup table; rows are gathered with differentiable indexing."""

    def __init__(self, num_embeddings: int, dim: int, scale: float | None = None, seed=None) -> None:
        rng = ensure_rng(seed)
        scale = scale if scale is not None else 1.0 / np.sqrt(dim)
        self.weight = Parameter(rng.normal(0.0, scale, size=(num_embeddings, dim)))

    def __call__(self, indices) -> Tensor:
        idx = np.asarray(indices, dtype=np.int64)
        return self.weight[idx]

    @property
    def num_embeddings(self) -> int:
        return self.weight.shape[0]

    @property
    def dim(self) -> int:
        return self.weight.shape[1]


class MLP(Module):
    """Stack of Linear layers with a nonlinearity between (and optionally after)."""

    def __init__(
        self,
        dims: list[int],
        activation: str = "relu",
        final_activation: bool = False,
        seed=None,
    ) -> None:
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        rng = ensure_rng(seed)
        self.layers = [
            Linear(a, b, seed=rng) for a, b in zip(dims[:-1], dims[1:])
        ]
        self._activation = {
            "relu": ops.relu,
            "tanh": ops.tanh,
            "sigmoid": ops.sigmoid,
        }[activation]
        self._final_activation = final_activation

    def __call__(self, x: Tensor) -> Tensor:
        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < last or self._final_activation:
                x = self._activation(x)
        return x


class GRUCell(Module):
    """Gated recurrent unit cell (update/reset gates + candidate state)."""

    def __init__(self, input_dim: int, hidden_dim: int, seed=None) -> None:
        rng = ensure_rng(seed)
        self.hidden_dim = hidden_dim
        d = input_dim + hidden_dim
        self.w_z = Linear(d, hidden_dim, seed=rng)
        self.w_r = Linear(d, hidden_dim, seed=rng)
        self.w_h = Linear(d, hidden_dim, seed=rng)

    def __call__(self, x: Tensor, h: Tensor) -> Tensor:
        xh = ops.concat([x, h], axis=-1)
        z = ops.sigmoid(self.w_z(xh))
        r = ops.sigmoid(self.w_r(xh))
        candidate = ops.tanh(self.w_h(ops.concat([x, r * h], axis=-1)))
        return (1.0 - z) * h + z * candidate

    def initial_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_dim)))


class LSTMCell(Module):
    """Long short-term memory cell with input/forget/output gates."""

    def __init__(self, input_dim: int, hidden_dim: int, seed=None) -> None:
        rng = ensure_rng(seed)
        self.hidden_dim = hidden_dim
        d = input_dim + hidden_dim
        self.w_i = Linear(d, hidden_dim, seed=rng)
        self.w_f = Linear(d, hidden_dim, seed=rng)
        self.w_o = Linear(d, hidden_dim, seed=rng)
        self.w_c = Linear(d, hidden_dim, seed=rng)

    def __call__(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        h, c = state
        xh = ops.concat([x, h], axis=-1)
        i = ops.sigmoid(self.w_i(xh))
        f = ops.sigmoid(self.w_f(xh))
        o = ops.sigmoid(self.w_o(xh))
        g = ops.tanh(self.w_c(xh))
        c_next = f * c + i * g
        h_next = o * ops.tanh(c_next)
        return h_next, c_next

    def initial_state(self, batch: int) -> tuple[Tensor, Tensor]:
        zeros = np.zeros((batch, self.hidden_dim))
        return Tensor(zeros), Tensor(zeros.copy())


class AdditiveAttention(Module):
    """Bahdanau-style attention scoring ``v^T tanh(W [key; query])``.

    ``__call__`` takes keys ``(n, d_k)`` and a query ``(d_q,)`` and returns
    ``(weights, pooled)`` where weights sum to one over the ``n`` keys.
    """

    def __init__(self, key_dim: int, query_dim: int, hidden_dim: int = 16, seed=None) -> None:
        rng = ensure_rng(seed)
        self.proj = Linear(key_dim + query_dim, hidden_dim, seed=rng)
        self.score = Linear(hidden_dim, 1, bias=False, seed=rng)

    def __call__(self, keys: Tensor, query: Tensor) -> tuple[Tensor, Tensor]:
        n = keys.shape[0]
        tiled = ops.stack([query] * n, axis=0)
        hidden = ops.tanh(self.proj(ops.concat([keys, tiled], axis=-1)))
        logits = self.score(hidden).reshape(n)
        weights = ops.softmax(logits, axis=-1)
        pooled = weights.reshape(1, n) @ keys
        return weights, pooled.reshape(keys.shape[1])


class Conv1d(Module):
    """Valid 1-d convolution over a sequence of vectors (Kim CNN block).

    Input ``(seq_len, in_dim)``; output ``(seq_len - kernel + 1, out_dim)``.
    Implemented by unfolding windows and a single matmul, so the backward
    pass reuses the engine's matmul gradient.
    """

    def __init__(self, in_dim: int, out_dim: int, kernel_size: int, seed=None) -> None:
        rng = ensure_rng(seed)
        self.kernel_size = kernel_size
        self.weight = Parameter(
            _glorot(rng, kernel_size * in_dim, out_dim, (kernel_size * in_dim, out_dim))
        )
        self.bias = Parameter(np.zeros(out_dim))

    def __call__(self, x: Tensor) -> Tensor:
        seq_len, in_dim = x.shape
        k = self.kernel_size
        if seq_len < k:
            raise ValueError(f"sequence length {seq_len} < kernel size {k}")
        windows = [
            x[i : i + k].reshape(1, k * in_dim) for i in range(seq_len - k + 1)
        ]
        unfolded = ops.concat(windows, axis=0)
        return unfolded @ self.weight + self.bias
