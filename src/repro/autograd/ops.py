"""Differentiable operations beyond :class:`~repro.autograd.tensor.Tensor`'s
operators: activations, softmax, concatenation, stacking, and norms.

These free functions build tape nodes exactly like tensor methods do and are
used by the neural layers in :mod:`repro.autograd.nn`.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "exp",
    "log",
    "sigmoid",
    "tanh",
    "relu",
    "softplus",
    "softmax",
    "log_softmax",
    "concat",
    "stack",
    "l2_norm_sq",
    "clip_probability",
]


def exp(x: Tensor) -> Tensor:
    x = as_tensor(x)
    out_data = np.exp(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * out_data)

    return Tensor._make(out_data, (x,), backward)


def log(x: Tensor) -> Tensor:
    x = as_tensor(x)
    out_data = np.log(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad / x.data)

    return Tensor._make(out_data, (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    x = as_tensor(x)
    out_data = 1.0 / (1.0 + np.exp(-np.clip(x.data, -500, 500)))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * out_data * (1.0 - out_data))

    return Tensor._make(out_data, (x,), backward)


def tanh(x: Tensor) -> Tensor:
    x = as_tensor(x)
    out_data = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * (1.0 - out_data**2))

    return Tensor._make(out_data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    x = as_tensor(x)
    mask = x.data > 0
    out_data = x.data * mask

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(out_data, (x,), backward)


def softplus(x: Tensor) -> Tensor:
    """Numerically stable ``log(1 + exp(x))``."""
    x = as_tensor(x)
    out_data = np.logaddexp(0.0, x.data)
    sig = 1.0 / (1.0 + np.exp(-np.clip(x.data, -500, 500)))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * sig)

    return Tensor._make(out_data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` with the usual max-shift for stability."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out_data = e / e.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - logsum
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    """Differentiable concatenation (the survey's ``oplus`` operator)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis if axis >= 0 else grad.ndim + axis] = slice(start, end)
                t._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.stack`` along a new axis."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.moveaxis(grad, axis, 0)
        for t, g in zip(tensors, slices):
            if t.requires_grad:
                t._accumulate(g)

    return Tensor._make(out_data, tuple(tensors), backward)


def l2_norm_sq(x: Tensor) -> Tensor:
    """Squared Frobenius norm, the standard regularization term."""
    return (x * x).sum()


def clip_probability(p: Tensor, eps: float = 1e-9) -> Tensor:
    """Clamp probabilities away from {0, 1} before taking logs.

    Implemented as a straight-through clip: values are clamped in the forward
    pass and the gradient passes only where no clamping occurred.
    """
    p = as_tensor(p)
    out_data = np.clip(p.data, eps, 1.0 - eps)
    mask = (p.data > eps) & (p.data < 1.0 - eps)

    def backward(grad: np.ndarray) -> None:
        if p.requires_grad:
            p._accumulate(grad * mask)

    return Tensor._make(out_data, (p,), backward)
