"""First-order optimizers for autograd parameters.

All optimizers share the same contract: construct with the parameter list,
call :meth:`step` after gradients were produced by ``backward``, then
:meth:`zero_grad`.  ``weight_decay`` applies decoupled L2 shrinkage.

Sparse row gradients
--------------------
Embedding lookups produce :class:`~repro.autograd.sparse.SparseGrad`
gradients (row indices + rows).  By default every optimizer applies *lazy
row-wise updates* to such parameters: only the rows touched by the batch
are read, updated, and written, so the per-step cost is O(batch * dim)
instead of O(table * dim).  Semantics notes:

* **SGD** (no momentum) and **Adagrad** row updates are *exactly* the
  update the dense path would apply — zero-gradient rows are fixed points
  of both rules (when ``weight_decay == 0``).
* **Adam** becomes *lazy Adam*: the first/second moment estimates of
  untouched rows are not decayed, matching the standard sparse-Adam
  behavior in mainstream frameworks.  The bias-correction step counter
  still advances globally.
* Decoupled ``weight_decay`` shrinks only the touched rows (lazy decay).
* **SGD with momentum** keeps a dense velocity and therefore densifies
  sparse gradients (the historical behavior).

Constructing with ``dense_updates=True`` densifies every sparse gradient
before the update, reproducing the historical dense path bitwise (the
coalescing kernel matches ``np.add.at`` summation order exactly).  The
optimizer state layout is identical in both modes, so
``state_dict``/checkpoints are interchangeable and resume stays
bitwise-reproducible either way.

Robustness (see :mod:`repro.runtime.guards` and ``docs/robustness.md``):
``max_grad_norm`` clips the *global* gradient norm before each update, and
``skip_nonfinite`` decides what happens when a NaN/Inf gradient reaches
:meth:`step` — ``"off"`` applies it as-is (the historical behavior),
``"skip"`` drops the whole update, ``"zero"`` repairs the bad entries, and
``"raise"`` raises :class:`~repro.core.exceptions.TrainingDivergedError`.
Every optimizer also exposes :meth:`state_dict`/:meth:`load_state_dict`
so :mod:`repro.runtime.checkpoint` can snapshot and resume a run exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import TrainingDivergedError
from repro.runtime.guards import (
    NONFINITE_POLICIES,
    clip_grad_norm,
    has_nonfinite_grad,
    zero_nonfinite_grads,
)

from repro.telemetry.base import get_active

from .sparse import SparseGrad
from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adagrad", "Adam"]


class Optimizer:
    """Base optimizer holding the parameter list and update guards."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float,
        weight_decay: float = 0.0,
        max_grad_norm: float | None = None,
        skip_nonfinite: str = "off",
        dense_updates: bool = False,
    ) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        if max_grad_norm is not None and max_grad_norm <= 0:
            raise ValueError("max_grad_norm must be positive")
        if skip_nonfinite not in NONFINITE_POLICIES:
            raise ValueError(
                f"skip_nonfinite must be one of {NONFINITE_POLICIES}, "
                f"got {skip_nonfinite!r}"
            )
        self.params = list(params)
        self.lr = lr
        self.weight_decay = weight_decay
        self.max_grad_norm = max_grad_norm
        self.skip_nonfinite = skip_nonfinite
        self.dense_updates = bool(dense_updates)
        #: Number of steps on which a non-finite gradient was encountered.
        self.nonfinite_steps = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> bool:
        """Apply guards, then the update; ``False`` if the step was skipped.

        Reports to the *active* telemetry when one is installed (an
        ``optim/step`` span plus sparse-vs-dense update counters); the
        disabled path is a single attribute check.
        """
        tel = get_active()
        if not tel.enabled:
            return self._step()
        span = tel.begin("optim/step", optimizer=type(self).__name__)
        try:
            applied = self._step()
        except Exception as exc:
            tel.end(span, applied=False, error=type(exc).__name__)
            raise
        self._count_update_paths(tel)
        if not applied:
            tel.counter("optim.skipped_steps").inc()
        tel.end(span, applied=applied)
        return applied

    def _step(self) -> bool:
        if self.skip_nonfinite != "off" and has_nonfinite_grad(self.params):
            self.nonfinite_steps += 1
            if self.skip_nonfinite == "raise":
                raise TrainingDivergedError(
                    "non-finite gradient reached optimizer.step()"
                )
            if self.skip_nonfinite == "skip":
                return False
            zero_nonfinite_grads(self.params)
        if self.max_grad_norm is not None:
            clip_grad_norm(self.params, self.max_grad_norm)
        self._apply()
        return True

    def _count_update_paths(self, tel) -> None:
        """Tally which parameters took the sparse lazy path this step."""
        sparse_params = sparse_rows = dense_params = 0
        for p in self.params:
            g = p.raw_grad
            if g is None:
                continue
            # Mirrors _sparse_grad's routing (plus SGD's momentum
            # densification), so the counters reflect the path actually
            # taken rather than the gradient's storage format.
            if (
                isinstance(g, SparseGrad)
                and not self.dense_updates
                and not getattr(self, "momentum", 0.0)
            ):
                sparse_params += 1
                sparse_rows += int(g.rows.size)
            else:
                dense_params += 1
        if sparse_params:
            tel.counter("optim.sparse_updates").inc(sparse_params)
            tel.counter("optim.sparse_rows").inc(sparse_rows)
        if dense_params:
            tel.counter("optim.dense_updates").inc(dense_params)

    def _apply(self) -> None:
        raise NotImplementedError

    def _sparse_grad(self, p: Tensor) -> SparseGrad | None:
        """``p``'s coalesced sparse gradient, or ``None`` on the dense path."""
        if self.dense_updates:
            return None
        g = p.raw_grad
        if isinstance(g, SparseGrad):
            return g.coalesce()
        return None

    def _decay(self, p: Tensor) -> None:
        if self.weight_decay:
            p.data *= 1.0 - self.lr * self.weight_decay

    def _decay_rows(self, p: Tensor, rows: np.ndarray) -> None:
        if self.weight_decay:
            p.data[rows] *= 1.0 - self.lr * self.weight_decay

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Mutable optimizer state as scalars and lists of arrays."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Inverse of :meth:`state_dict` (copies arrays in place)."""

    @staticmethod
    def _copy_arrays(dst: list[np.ndarray], src: list[np.ndarray], name: str) -> None:
        if len(dst) != len(src):
            raise ValueError(
                f"optimizer state {name!r} has {len(src)} arrays, expected {len(dst)}"
            )
        for d, s in zip(dst, src):
            if d.shape != s.shape:
                raise ValueError(
                    f"optimizer state {name!r} shape mismatch: {s.shape} vs {d.shape}"
                )
            np.copyto(d, s)


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        params,
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        max_grad_norm: float | None = None,
        skip_nonfinite: str = "off",
        dense_updates: bool = False,
    ) -> None:
        super().__init__(
            params, lr, weight_decay, max_grad_norm, skip_nonfinite, dense_updates
        )
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def _apply(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.raw_grad is None:
                continue
            if not self.momentum:
                sparse = self._sparse_grad(p)
                if sparse is not None:
                    rows = sparse.rows
                    self._decay_rows(p, rows)
                    p.data[rows] -= self.lr * sparse.vals
                    continue
            # Momentum keeps a dense velocity, so sparse grads densify here.
            grad = p.grad
            if self.momentum:
                v *= self.momentum
                v += grad
                update = v
            else:
                update = grad
            self._decay(p)
            p.data -= self.lr * update

    def state_dict(self) -> dict:
        return {"velocity": [v.copy() for v in self._velocity]}

    def load_state_dict(self, state: dict) -> None:
        self._copy_arrays(self._velocity, state["velocity"], "velocity")


class Adagrad(Optimizer):
    """Adagrad: per-coordinate learning rates from accumulated squares."""

    def __init__(
        self,
        params,
        lr: float = 0.05,
        eps: float = 1e-10,
        weight_decay: float = 0.0,
        max_grad_norm: float | None = None,
        skip_nonfinite: str = "off",
        dense_updates: bool = False,
    ) -> None:
        super().__init__(
            params, lr, weight_decay, max_grad_norm, skip_nonfinite, dense_updates
        )
        self.eps = eps
        self._accum = [np.zeros_like(p.data) for p in self.params]

    def _apply(self) -> None:
        for p, acc in zip(self.params, self._accum):
            if p.raw_grad is None:
                continue
            sparse = self._sparse_grad(p)
            if sparse is not None:
                rows, vals = sparse.rows, sparse.vals
                acc[rows] += vals**2
                self._decay_rows(p, rows)
                p.data[rows] -= self.lr * vals / (np.sqrt(acc[rows]) + self.eps)
                continue
            grad = p.grad
            acc += grad**2
            self._decay(p)
            p.data -= self.lr * grad / (np.sqrt(acc) + self.eps)

    def state_dict(self) -> dict:
        return {"accum": [a.copy() for a in self._accum]}

    def load_state_dict(self, state: dict) -> None:
        self._copy_arrays(self._accum, state["accum"], "accum")


class Adam(Optimizer):
    """Adam with bias-corrected first/second moment estimates.

    Sparse gradients get *lazy* row updates: see the module docstring for
    the exact semantics (moments of untouched rows are not decayed).
    """

    def __init__(
        self,
        params,
        lr: float = 0.005,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        max_grad_norm: float | None = None,
        skip_nonfinite: str = "off",
        dense_updates: bool = False,
    ) -> None:
        super().__init__(
            params, lr, weight_decay, max_grad_norm, skip_nonfinite, dense_updates
        )
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def _apply(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.raw_grad is None:
                continue
            sparse = self._sparse_grad(p)
            if sparse is not None:
                rows, vals = sparse.rows, sparse.vals
                # Same multiply-then-add sequence as the dense branch, so a
                # first step from zero state matches it bitwise.
                m[rows] = self.beta1 * m[rows] + (1.0 - self.beta1) * vals
                v[rows] = self.beta2 * v[rows] + (1.0 - self.beta2) * vals**2
                self._decay_rows(p, rows)
                p.data[rows] -= (
                    self.lr * (m[rows] / bc1) / (np.sqrt(v[rows] / bc2) + self.eps)
                )
                continue
            grad = p.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            self._decay(p)
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)

    def state_dict(self) -> dict:
        return {
            "t": self._t,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        self._t = int(state["t"])
        self._copy_arrays(self._m, state["m"], "m")
        self._copy_arrays(self._v, state["v"], "v")
