"""First-order optimizers for autograd parameters.

All optimizers share the same contract: construct with the parameter list,
call :meth:`step` after gradients were produced by ``backward``, then
:meth:`zero_grad`.  ``weight_decay`` applies decoupled L2 shrinkage.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adagrad", "Adam"]


class Optimizer:
    """Base optimizer holding the parameter list."""

    def __init__(self, params: list[Tensor], lr: float, weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.params = list(params)
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _decay(self, p: Tensor) -> None:
        if self.weight_decay:
            p.data *= 1.0 - self.lr * self.weight_decay


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr, weight_decay)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                update = v
            else:
                update = p.grad
            self._decay(p)
            p.data -= self.lr * update


class Adagrad(Optimizer):
    """Adagrad: per-coordinate learning rates from accumulated squares."""

    def __init__(self, params, lr: float = 0.05, eps: float = 1e-10, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr, weight_decay)
        self.eps = eps
        self._accum = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, acc in zip(self.params, self._accum):
            if p.grad is None:
                continue
            acc += p.grad**2
            self._decay(p)
            p.data -= self.lr * p.grad / (np.sqrt(acc) + self.eps)


class Adam(Optimizer):
    """Adam with bias-corrected first/second moment estimates."""

    def __init__(
        self,
        params,
        lr: float = 0.005,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr, weight_decay)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad**2
            self._decay(p)
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
