"""Sparse row gradients for embedding-style parameters.

Every embedding lookup is a gather of a few hundred rows out of a table
with up to millions of rows.  Its gradient is therefore *row sparse*: only
the gathered rows carry signal.  The historical backward pass materialized
a dense ``(num_rows, dim)`` zeros array and ``np.add.at``-scattered the
batch into it, and the optimizer then updated the whole table — O(E*d)
work per mini-batch regardless of batch size.

:class:`SparseGrad` is the first-class alternative: a pair of ``rows``
(int64 indices into axis 0) and ``vals`` (the corresponding gradient
rows).  Duplicate rows are allowed and are summed lazily by
:meth:`SparseGrad.coalesce`; consumers that need the dense form call
:meth:`SparseGrad.to_dense`.

Bitwise compatibility
---------------------
Coalescing sums duplicates with one ``np.bincount`` pass per column.
``bincount`` accumulates weights sequentially in occurrence order — the
exact summation ``np.add.at`` performs — so a densified :class:`SparseGrad`
is *bitwise identical* to the historical dense scatter.  (``np.add.reduceat``
is faster still but uses pairwise summation and breaks bitwise
reproducibility; the equivalence tests pin this choice.)

When a parameter is gathered several times in one graph (e.g. a KGE
entity table looked up for heads, tails, and negatives), the historical
path summed each lookup's dense scatter into the gradient *table by
table*.  :meth:`SparseGrad.merge` therefore records the segment boundary,
and :meth:`SparseGrad.to_dense`/:meth:`SparseGrad.add_into` replay the
segments in accumulation order — coalesce within a segment, then add
segment sums — reproducing the historical float grouping exactly.
:meth:`SparseGrad.coalesce` collapses the segments (sparse consumers only
need the total per row).
"""

from __future__ import annotations

import numpy as np

__all__ = ["SparseGrad", "coalesce_rows"]


def coalesce_rows(rows: np.ndarray, vals: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sum duplicate rows: ``(unique_rows_ascending, per-row sums)``.

    ``vals`` must be 2-d with ``vals.shape[0] == rows.size``.  Summation
    order within a duplicate group is occurrence order (see module
    docstring), matching ``np.add.at`` bitwise.
    """
    unique, inverse = np.unique(rows, return_inverse=True)
    if unique.size == rows.size:
        # No duplicates: reorder to ascending rows, skip the bincount passes.
        order = np.argsort(rows, kind="stable")
        return unique, vals[order]
    summed = np.empty((unique.size, vals.shape[1]), dtype=vals.dtype)
    for col in range(vals.shape[1]):
        summed[:, col] = np.bincount(
            inverse, weights=vals[:, col], minlength=unique.size
        )
    return unique, summed


class SparseGrad:
    """Row-sparse gradient of a 2-d array: ``dense[rows] += vals``.

    Parameters
    ----------
    shape:
        Full dense shape ``(num_rows, dim)`` of the gradient.
    rows:
        ``(nnz,)`` int64 row indices (duplicates allowed, must be
        non-negative — producers normalize negative indices).
    vals:
        ``(nnz, dim)`` float64 gradient rows aligned with ``rows``.
    segments:
        Lengths of the independently-produced scatters concatenated into
        ``rows``/``vals`` (in accumulation order); ``None`` means a single
        segment.  Only :meth:`merge` creates multi-segment grads.
    """

    __slots__ = ("shape", "rows", "vals", "_coalesced", "_segments")

    def __init__(
        self,
        shape: tuple[int, ...],
        rows: np.ndarray,
        vals: np.ndarray,
        coalesced: bool = False,
        segments: tuple[int, ...] | None = None,
    ) -> None:
        self.shape = tuple(shape)
        self.rows = rows
        self.vals = vals
        self._coalesced = bool(coalesced)
        self._segments = segments

    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Number of stored rows (after coalescing: number of unique rows)."""
        return int(self.rows.size)

    @property
    def is_coalesced(self) -> bool:
        return self._coalesced

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = "coalesced" if self._coalesced else "raw"
        return f"SparseGrad(shape={self.shape}, nnz={self.nnz}, {tag})"

    # ------------------------------------------------------------------ #
    def coalesce(self) -> "SparseGrad":
        """Sum duplicate rows in place (idempotent); returns ``self``.

        Replaces ``rows``/``vals`` with fresh owned arrays, so any view a
        producer handed in is left untouched.
        """
        if not self._coalesced:
            self.rows, self.vals = coalesce_rows(self.rows, self.vals)
            self._coalesced = True
            self._segments = None
        return self

    def merge(self, other: "SparseGrad") -> "SparseGrad":
        """Concatenated (uncoalesced) union, preserving accumulation order.

        The boundary between the operands is recorded so densification can
        replay the historical segment-by-segment summation (see module
        docstring)."""
        if other.shape != self.shape:
            raise ValueError(
                f"cannot merge sparse grads of shapes {self.shape} and {other.shape}"
            )
        segments = (self._segments or (self.rows.size,)) + (
            other._segments or (other.rows.size,)
        )
        return SparseGrad(
            self.shape,
            np.concatenate([self.rows, other.rows]),
            np.concatenate([self.vals, other.vals]),
            segments=segments,
        )

    def _coalesced_segments(self):
        """Yield ``(unique_rows, summed_vals)`` per segment, in order."""
        if self._coalesced:
            yield self.rows, self.vals
            return
        start = 0
        for length in self._segments or (self.rows.size,):
            yield coalesce_rows(
                self.rows[start : start + length],
                self.vals[start : start + length],
            )
            start += length

    def to_dense(self) -> np.ndarray:
        """The full dense gradient (bitwise equal to the historical
        per-lookup ``np.add.at`` scatters summed in accumulation order)."""
        out = np.zeros(self.shape, dtype=self.vals.dtype)
        for rows, vals in self._coalesced_segments():
            out[rows] += vals  # rows are unique within a segment
        return out

    def add_into(self, dense: np.ndarray) -> np.ndarray:
        """Scatter-add into an existing dense array in place; returns it."""
        for rows, vals in self._coalesced_segments():
            dense[rows] += vals
        return dense
