"""A small reverse-mode automatic differentiation engine over NumPy.

The surveyed models mix embeddings, MLPs, recurrent cells, CNN text encoders,
attention, and GNN message passing.  Rather than hand-deriving gradients per
model, the library ships this minimal autograd: a :class:`Tensor` wrapping a
NumPy array, a computation tape, and reverse-mode :meth:`Tensor.backward`.

Design notes
------------
* Only float64 arrays; shapes follow NumPy broadcasting, and gradients of
  broadcast operands are reduced back to the operand shape.
* Integer "fancy" indexing is differentiable (scatter-add on the backward
  pass), which is how embedding lookups are implemented.  When the indexed
  tensor is a 2-d *leaf* (an embedding table), the backward pass produces a
  :class:`~repro.autograd.sparse.SparseGrad` — row indices plus gradient
  rows — instead of a dense zeros table, so mini-batch cost scales with the
  batch, not the table.  Reading :attr:`Tensor.grad` densifies on demand;
  sparse-aware consumers (optimizers, runtime guards) use
  :attr:`Tensor.raw_grad`.
* The tape is built eagerly; :meth:`Tensor.backward` topologically sorts it.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .sparse import SparseGrad, coalesce_rows

__all__ = ["Tensor", "as_tensor"]

#: Escape hatch: set to False to force the historical dense scatter backward
#: for embedding-style lookups (used by equivalence tests and benchmarks).
SPARSE_LOOKUP_GRADS = True


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were added or broadcast from ``shape``."""
    if grad.shape == shape:
        return grad
    # Remove leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes where the original dimension was 1.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_row_index(index) -> np.ndarray | None:
    """``index`` as an int64 axis-0 row-index array, or ``None`` if it is
    not plain integer fancy indexing (slices, masks, tuples, ...)."""
    if isinstance(index, (int, np.integer)):
        return np.asarray(index, dtype=np.int64)
    if isinstance(index, np.ndarray) and index.dtype.kind in "iu":
        return index.astype(np.int64, copy=False)
    if isinstance(index, list):
        arr = np.asarray(index)
        if arr.dtype.kind in "iu":
            return arr.astype(np.int64, copy=False)
    return None


class Tensor:
    """A NumPy array with an attached gradient and backward function."""

    __slots__ = ("data", "_grad", "requires_grad", "_parents", "_backward")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self._grad: np.ndarray | SparseGrad | None = None
        self.requires_grad = bool(requires_grad)
        self._parents = _parents
        self._backward = _backward

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    # ------------------------------------------------------------------ #
    # gradient access
    # ------------------------------------------------------------------ #
    @property
    def grad(self) -> np.ndarray | None:
        """The gradient as a dense array (densifies a sparse grad in place)."""
        g = self._grad
        if isinstance(g, SparseGrad):
            g = g.to_dense()
            self._grad = g
        return g

    @grad.setter
    def grad(self, value) -> None:
        self._grad = value

    @property
    def raw_grad(self) -> np.ndarray | SparseGrad | None:
        """The gradient in raw form — dense array or :class:`SparseGrad`."""
        return self._grad

    # ------------------------------------------------------------------ #
    # autograd machinery
    # ------------------------------------------------------------------ #
    def _accumulate(self, grad, owned: bool = False) -> None:
        """Add ``grad`` (dense or :class:`SparseGrad`) into this tensor.

        ``owned=True`` promises ``grad`` is a freshly allocated array no one
        else references, letting the first accumulation store it directly
        instead of copying (sparse grads are always fresh by construction).
        """
        current = self._grad
        if isinstance(grad, SparseGrad):
            if current is None:
                self._grad = grad
            elif isinstance(current, SparseGrad):
                self._grad = current.merge(grad)
            else:
                grad.add_into(current)
        elif current is None:
            # np.asarray also promotes 0-d NumPy scalars (e.g. from
            # ``grad * other.data`` on 0-d tensors) to real arrays, so the
            # in-place ``+=`` below always works on later accumulations.
            arr = np.asarray(grad)
            self._grad = arr if owned and arr is grad else arr.copy()
        elif isinstance(current, SparseGrad):
            dense = current.to_dense()
            dense += grad
            self._grad = dense
        else:
            current += grad

    def zero_grad(self) -> None:
        self._grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        ``grad`` defaults to 1 for scalar outputs; non-scalar roots require
        an explicit seed gradient.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() on non-scalar requires a gradient")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64).reshape(self.data.shape)

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is None:
                continue
            g = node._grad
            if g is None:
                continue
            if isinstance(g, SparseGrad):
                # Interior nodes need the dense form to keep propagating.
                g = g.to_dense()
                node._grad = g
            node._backward(g)

    @staticmethod
    def _make(data, parents: tuple["Tensor", ...], backward) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        return Tensor(
            data,
            requires_grad=requires,
            _parents=tuple(p for p in parents if p.requires_grad),
            _backward=backward if requires else None,
        )

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                g = _unbroadcast(grad, self.shape)
                self._accumulate(g, owned=g is not grad)
            if other.requires_grad:
                g = _unbroadcast(grad, other.shape)
                other._accumulate(g, owned=g is not grad)

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad, owned=True)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape), owned=True)
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape), owned=True)

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape), owned=True)
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / other.data**2, other.shape),
                    owned=True,
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(
                    grad * exponent * self.data ** (exponent - 1), owned=True
                )

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        a, b = self.data, other.data
        out_data = a @ b

        def backward(grad: np.ndarray) -> None:
            # Promote 1-d operands the way numpy's matmul does, compute the
            # 2-d/batched gradient, then squeeze the promoted axis back out.
            a2 = a[None, :] if a.ndim == 1 else a
            b2 = b[:, None] if b.ndim == 1 else b
            g = grad
            if a.ndim == 1:
                g = np.expand_dims(g, axis=-2)
            if b.ndim == 1:
                g = np.expand_dims(g, axis=-1)
            if self.requires_grad:
                ga = g @ np.swapaxes(b2, -1, -2)
                if a.ndim == 1:
                    ga = ga.reshape(-1, a.shape[0]).sum(axis=0)
                self._accumulate(_unbroadcast(ga, self.shape), owned=True)
            if other.requires_grad:
                gb = np.swapaxes(a2, -1, -2) @ g
                if b.ndim == 1:
                    gb = gb.reshape(b.shape[0], -1).sum(axis=1)
                other._accumulate(_unbroadcast(gb, other.shape), owned=True)

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        axes = axes or None
        out_data = self.data.transpose(*axes) if axes else self.data.T
        if axes:
            inverse = np.argsort(axes)
        else:
            inverse = None

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(
                    grad.transpose(*inverse) if inverse is not None else grad.T
                )

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        if not self.requires_grad:
            return Tensor._make(out_data, (self,), None)

        rows = _as_row_index(index)
        if rows is not None:
            # Integer fancy indexing along axis 0 — the embedding gather.
            # The forward lookup above already validated the index range.
            num_rows = self.data.shape[0]
            if (rows < 0).any():
                rows = np.where(rows < 0, rows + num_rows, rows)
            flat_rows = rows.reshape(-1)
            sparse_ok = (
                SPARSE_LOOKUP_GRADS
                and self.data.ndim == 2
                and self._backward is None  # leaf: the grad feeds an optimizer
            )

            def backward(grad: np.ndarray) -> None:
                vals = np.ascontiguousarray(grad).reshape(flat_rows.size, -1)
                if sparse_ok:
                    self._accumulate(SparseGrad(self.shape, flat_rows, vals))
                    return
                # Dense scatter via the coalescing kernel: bitwise identical
                # to np.add.at on zeros, without its per-element cost.
                full = np.zeros_like(self.data)
                unique, summed = coalesce_rows(flat_rows, vals)
                full.reshape(num_rows, -1)[unique] = summed
                self._accumulate(full, owned=True)

            return Tensor._make(out_data, (self,), backward)

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full, owned=True)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy(), owned=True)

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Maximum along ``axis``; gradient flows to the (first) argmax."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad if keepdims else np.expand_dims(grad, axis=axis)
            expanded = out_data if keepdims else np.expand_dims(out_data, axis=axis)
            mask = self.data == expanded
            # Split ties evenly so the gradient check stays symmetric.
            mask = mask / mask.sum(axis=axis, keepdims=True)
            self._accumulate(mask * g, owned=True)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def detach(self) -> "Tensor":
        """A view of the data cut off from the tape."""
        return Tensor(self.data, requires_grad=False)


def as_tensor(value) -> Tensor:
    """Coerce arrays/scalars to (constant) tensors; pass tensors through."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)
