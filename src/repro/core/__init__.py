"""Core abstractions: datasets, interactions, splits, the model API."""

from .clock import Clock, ManualClock, system_clock
from .dataset import Dataset
from .exceptions import (
    CheckpointError,
    ConfigError,
    DataError,
    EvaluationError,
    GraphError,
    KgrecError,
    NotFittedError,
    TrainingDivergedError,
)
from .config import GridResult, grid_search
from .interactions import InteractionMatrix
from .io import load_dataset, save_dataset
from .recommender import Explanation, Recommender
from .registry import (
    SURVEY_TABLE3,
    TECHNIQUES,
    ModelCard,
    Usage,
    card_for,
    get_model_class,
    is_implemented,
    list_registered,
    register_model,
)
from .rng import ensure_rng, spawn
from .splitter import cold_start_item_split, leave_one_out_split, random_split

__all__ = [
    "Clock",
    "ManualClock",
    "system_clock",
    "Dataset",
    "InteractionMatrix",
    "save_dataset",
    "load_dataset",
    "grid_search",
    "GridResult",
    "Recommender",
    "Explanation",
    "KgrecError",
    "ConfigError",
    "DataError",
    "GraphError",
    "NotFittedError",
    "EvaluationError",
    "TrainingDivergedError",
    "CheckpointError",
    "ensure_rng",
    "spawn",
    "random_split",
    "leave_one_out_split",
    "cold_start_item_split",
    "Usage",
    "TECHNIQUES",
    "ModelCard",
    "SURVEY_TABLE3",
    "register_model",
    "get_model_class",
    "list_registered",
    "card_for",
    "is_implemented",
]
