"""Injectable time sources shared by telemetry, serving, and the runtime.

Every time-dependent component in the repo — circuit breakers, deadlines,
the admission queue, retry backoff budgets, latency metrics, and tracer
spans — takes a ``clock`` callable returning monotonic seconds, defaulting
to :func:`time.monotonic`.  Tests and the seeded traffic replays pass a
:class:`ManualClock` instead, so "minutes" of breaker cooldown or queue
drain happen instantly and two runs with the same seed observe
bitwise-identical timestamps (which is what makes exported traces
byte-for-byte reproducible; see ``docs/observability.md``).

This module is the canonical home of the abstraction; it grew out of
``repro.serving.clock``, which now re-exports from here for compatibility.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Clock", "ManualClock", "system_clock"]

#: Type of every ``clock=`` injection point: a zero-arg monotonic-seconds
#: callable.
Clock = Callable[[], float]

#: The default wall time source (alias kept so call sites read uniformly).
system_clock: Clock = time.monotonic


class ManualClock:
    """A clock that only moves when told to.

    The instance is callable (so it slots into any ``clock=`` parameter)
    and :meth:`advance` doubles as an injected ``sleep``: a component that
    "sleeps" on a manual clock simply moves time forward for every other
    component sharing the clock.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._now += float(seconds)

    # alias so the clock can be passed wherever a ``sleep`` is injected
    sleep = advance
