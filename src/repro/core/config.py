"""Hyper-parameter search utilities.

The comparative studies use fixed, documented hyper-parameters; for users
adapting models to their own data, :func:`grid_search` sweeps a parameter
grid with a shared train/validation split and returns every configuration's
score, best first.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable

from .dataset import Dataset
from .exceptions import ConfigError
from .recommender import Recommender
from .splitter import random_split

__all__ = ["GridResult", "grid_search"]


@dataclass(frozen=True)
class GridResult:
    """One evaluated configuration."""

    params: dict[str, Any]
    score: float

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v}" for k, v in self.params.items())
        return f"GridResult({inner} -> {self.score:.4f})"


def grid_search(
    model_factory: Callable[..., Recommender],
    dataset: Dataset,
    grid: dict[str, list],
    metric: str = "AUC",
    test_fraction: float = 0.2,
    max_users: int | None = 40,
    seed: int = 0,
) -> list[GridResult]:
    """Exhaustive grid search over model keyword arguments.

    ``model_factory(**params)`` must return an unfitted model.  Every
    configuration trains on the same split and is scored with the same
    evaluator; results are sorted best-first.
    """
    if not grid:
        raise ConfigError("empty parameter grid")
    for key, values in grid.items():
        if not isinstance(values, (list, tuple)) or not values:
            raise ConfigError(f"grid entry {key!r} must be a non-empty list")

    from repro.eval.evaluator import Evaluator  # local: avoid import cycle

    train, test = random_split(dataset, test_fraction=test_fraction, seed=seed)
    evaluator = Evaluator(train, test, max_users=max_users, seed=seed)

    keys = sorted(grid)
    results: list[GridResult] = []
    for combo in itertools.product(*(grid[k] for k in keys)):
        params = dict(zip(keys, combo))
        model = model_factory(**params).fit(train)
        score = evaluator.evaluate(model)[metric]
        results.append(GridResult(params=params, score=score))
    results.sort(key=lambda r: -r.score)
    return results
