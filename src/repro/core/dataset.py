"""Dataset container tying interactions to a knowledge graph.

A :class:`Dataset` bundles the user-item feedback matrix with the side
information the survey studies: a knowledge graph plus the alignment between
items (and optionally users) and KG entities.  Models receive a dataset whose
``interactions`` field holds *training* feedback; evaluation code keeps the
held-out matrix separately (see :mod:`repro.core.splitter`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

import numpy as np

from .exceptions import DataError
from .interactions import InteractionMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kg.graph import KnowledgeGraph

__all__ = ["Dataset"]


@dataclass(frozen=True)
class Dataset:
    """A recommendation dataset with optional KG side information.

    Attributes
    ----------
    name:
        Human-readable dataset name, e.g. ``"synthetic-movielens"``.
    interactions:
        The user-item feedback matrix ``R`` (training portion when split).
    kg:
        Knowledge graph side information, or ``None`` for pure-CF data.
    item_entities:
        Integer array of length ``num_items`` mapping item id -> KG entity
        id, or ``None`` when no KG is attached.  ``-1`` marks unaligned items.
    user_entities:
        Like ``item_entities`` for users; only set for user-item graphs.
    item_text:
        Optional ``(num_items, t)`` float array of item content features
        (stands in for the textual/visual channels used by CKE and DKN).
    extra:
        Free-form metadata (scenario name, generator parameters, ...).
    """

    name: str
    interactions: InteractionMatrix
    kg: "KnowledgeGraph | None" = None
    item_entities: np.ndarray | None = None
    user_entities: np.ndarray | None = None
    item_text: np.ndarray | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.item_entities is not None:
            ents = np.asarray(self.item_entities, dtype=np.int64)
            if ents.shape != (self.num_items,):
                raise DataError("item_entities must have one entry per item")
            object.__setattr__(self, "item_entities", ents)
        if self.user_entities is not None:
            ents = np.asarray(self.user_entities, dtype=np.int64)
            if ents.shape != (self.num_users,):
                raise DataError("user_entities must have one entry per user")
            object.__setattr__(self, "user_entities", ents)
        if self.item_text is not None:
            text = np.asarray(self.item_text, dtype=np.float64)
            if text.ndim != 2 or text.shape[0] != self.num_items:
                raise DataError("item_text must be (num_items, t)")
            object.__setattr__(self, "item_text", text)

    # ------------------------------------------------------------------ #
    @property
    def num_users(self) -> int:
        return self.interactions.num_users

    @property
    def num_items(self) -> int:
        return self.interactions.num_items

    @property
    def has_kg(self) -> bool:
        return self.kg is not None

    def with_interactions(self, interactions: InteractionMatrix) -> "Dataset":
        """A copy of this dataset carrying different feedback (same KG)."""
        if interactions.shape != self.interactions.shape:
            raise DataError("replacement interactions must keep the same shape")
        return replace(self, interactions=interactions)

    def entity_of_item(self, item_id: int) -> int:
        """KG entity id aligned with ``item_id`` (raises without a KG)."""
        if self.item_entities is None:
            raise DataError(f"dataset {self.name!r} has no item-entity alignment")
        return int(self.item_entities[item_id])

    def item_of_entity(self, entity_id: int) -> int | None:
        """Inverse alignment: item id for ``entity_id`` or ``None``."""
        if self.item_entities is None:
            raise DataError(f"dataset {self.name!r} has no item-entity alignment")
        hits = np.flatnonzero(self.item_entities == entity_id)
        return int(hits[0]) if hits.size else None

    def describe(self) -> dict[str, Any]:
        """Summary statistics used by example scripts and benches."""
        info: dict[str, Any] = {
            "name": self.name,
            "num_users": self.num_users,
            "num_items": self.num_items,
            "interactions": self.interactions.nnz,
            "density": round(self.interactions.density, 6),
            "has_kg": self.has_kg,
        }
        if self.kg is not None:
            info["kg_entities"] = self.kg.num_entities
            info["kg_relations"] = self.kg.num_relations
            info["kg_triples"] = self.kg.num_triples
        return info
