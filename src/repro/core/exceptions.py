"""Exception hierarchy for the kgrec reproduction framework.

All library errors derive from :class:`KgrecError` so callers can catch one
base class.  Specific subclasses signal configuration problems, data problems,
and misuse of model APIs (e.g. predicting before fitting).
"""

from __future__ import annotations


class KgrecError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(KgrecError):
    """An invalid hyper-parameter or option combination was supplied."""


class DataError(KgrecError):
    """Input data is malformed (bad shapes, ids out of range, empty sets)."""


class NotFittedError(KgrecError):
    """A model method requiring training was called before ``fit``."""


class GraphError(KgrecError):
    """A knowledge-graph operation received inconsistent graph inputs."""


class EvaluationError(KgrecError):
    """An evaluation protocol could not be carried out on the given split."""


class TrainingDivergedError(KgrecError):
    """A training run produced non-finite values or a runaway loss series."""


class CheckpointError(KgrecError):
    """A training checkpoint could not be written, read, or restored."""


class StoreError(KgrecError):
    """An embedding store operation failed (IO, missing generation, misuse)."""


class StoreCorruptionError(StoreError):
    """On-disk store data failed verification (bad magic, checksum, torn file)."""


class RetrievalError(KgrecError):
    """An ANN retrieval index operation failed (build, search, save/load)."""


class IndexStaleError(RetrievalError):
    """The ANN index does not match the embeddings currently being served.

    Raised by the two-stage retrieval rung when its candidate index was
    built against a different embedding generation (or catalog size) than
    the one its base recommender now scores with.  The serving ladder
    treats it like any rung failure: the request degrades to the exact
    rung — a typed outcome, never a mixed-generation answer.
    """


class OnlineError(KgrecError):
    """Base class for errors raised by the online learning loop."""


class OnlineUpdateError(OnlineError):
    """An online interaction batch failed validation and was quarantined.

    Raised by the shadow trainer when a batch carries non-finite weights
    or out-of-range ids (e.g. a poisoned upstream event feed).  The loop
    records the batch as *quarantined* — a typed outcome with the reason
    attached — and skips it; it is never silently dropped, and a bounded
    run of consecutive quarantines aborts the loop with
    :class:`OnlineError` instead of training on garbage forever.
    """


class ServingError(KgrecError):
    """Base class for errors raised at the online serving boundary."""


class RequestError(ServingError):
    """A serve request failed validation (unknown ids, malformed k, ...)."""


class DeadlineExceeded(ServingError):
    """A request overran its per-request deadline budget."""


class Overloaded(ServingError):
    """The admission queue is full; the request was shed, not queued."""


class CircuitOpenError(ServingError):
    """A circuit breaker is open; calls to the protected model are refused."""


class ModelUnavailableError(ServingError):
    """No live model is registered (or every fallback rung failed)."""


class PromotionError(ServingError):
    """A candidate model failed its canary probe and was not promoted."""
