"""User-item interaction matrices (Section 3 of the survey, "User Feedback").

The survey defines the binary feedback matrix ``R \\in R^{m x n}`` with
``R_ij = 1`` iff an (implicit) interaction between user ``u_i`` and item
``v_j`` was observed.  :class:`InteractionMatrix` is that object: a sparse,
immutable matrix with fast per-user and per-item access, optional explicit
ratings, and negative-sampling utilities used by ranking losses (BPR etc.).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np
from scipy import sparse

from .exceptions import DataError
from .rng import ensure_rng

__all__ = ["InteractionMatrix"]


class InteractionMatrix:
    """Immutable sparse user-item feedback matrix.

    Parameters
    ----------
    user_ids, item_ids:
        Parallel integer arrays of observed interactions.  Duplicate
        (user, item) pairs are collapsed (ratings keep the last value).
    num_users, num_items:
        Matrix dimensions ``m`` and ``n``.  Ids must lie in range.
    ratings:
        Optional explicit feedback values aligned with the id arrays.  When
        omitted the matrix is binary implicit feedback.
    """

    def __init__(
        self,
        user_ids: np.ndarray,
        item_ids: np.ndarray,
        num_users: int,
        num_items: int,
        ratings: np.ndarray | None = None,
    ) -> None:
        user_ids = np.asarray(user_ids, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        if user_ids.shape != item_ids.shape or user_ids.ndim != 1:
            raise DataError("user_ids and item_ids must be parallel 1-d arrays")
        if num_users <= 0 or num_items <= 0:
            raise DataError("num_users and num_items must be positive")
        if user_ids.size and (user_ids.min() < 0 or user_ids.max() >= num_users):
            raise DataError("user id out of range")
        if item_ids.size and (item_ids.min() < 0 or item_ids.max() >= num_items):
            raise DataError("item id out of range")
        if ratings is not None:
            ratings = np.asarray(ratings, dtype=np.float64)
            if ratings.shape != user_ids.shape:
                raise DataError("ratings must align with user_ids/item_ids")

        self._num_users = int(num_users)
        self._num_items = int(num_items)
        values = np.ones(user_ids.size) if ratings is None else ratings
        # COO -> CSR collapses duplicates by summing; deduplicate first so a
        # repeated pair keeps its last rating instead of an accumulated sum.
        key = user_ids * num_items + item_ids
        __, last_index = np.unique(key[::-1], return_index=True)
        keep = user_ids.size - 1 - last_index
        keep.sort()
        self._csr = sparse.csr_matrix(
            (values[keep], (user_ids[keep], item_ids[keep])),
            shape=(num_users, num_items),
        )
        self._csr.sort_indices()
        self._csc = self._csr.tocsc()
        self._has_ratings = ratings is not None

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_pairs(
        cls,
        pairs: "np.ndarray | list[tuple[int, int]]",
        num_users: int,
        num_items: int,
    ) -> "InteractionMatrix":
        """Build a binary matrix from an ``(n, 2)`` array of (user, item) pairs."""
        arr = np.asarray(pairs, dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise DataError("pairs must have shape (n, 2)")
        return cls(arr[:, 0], arr[:, 1], num_users, num_items)

    @classmethod
    def empty(cls, num_users: int, num_items: int) -> "InteractionMatrix":
        """An all-zero matrix (useful as a placeholder split)."""
        zero = np.empty(0, dtype=np.int64)
        return cls(zero, zero, num_users, num_items)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_users(self) -> int:
        return self._num_users

    @property
    def num_items(self) -> int:
        return self._num_items

    @property
    def shape(self) -> tuple[int, int]:
        return (self._num_users, self._num_items)

    @property
    def nnz(self) -> int:
        """Number of observed interactions."""
        return int(self._csr.nnz)

    @property
    def density(self) -> float:
        """Fraction of the matrix that is observed."""
        return self.nnz / (self._num_users * self._num_items)

    @property
    def has_ratings(self) -> bool:
        return self._has_ratings

    def __len__(self) -> int:
        return self.nnz

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "explicit" if self._has_ratings else "implicit"
        return (
            f"InteractionMatrix({self._num_users}x{self._num_items}, "
            f"nnz={self.nnz}, {kind})"
        )

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def items_of(self, user_id: int) -> np.ndarray:
        """Item ids interacted with by ``user_id`` (sorted ascending)."""
        self._check_user(user_id)
        start, end = self._csr.indptr[user_id], self._csr.indptr[user_id + 1]
        return self._csr.indices[start:end].astype(np.int64)

    def users_of(self, item_id: int) -> np.ndarray:
        """User ids that interacted with ``item_id`` (sorted ascending)."""
        self._check_item(item_id)
        start, end = self._csc.indptr[item_id], self._csc.indptr[item_id + 1]
        return self._csc.indices[start:end].astype(np.int64)

    def ratings_of(self, user_id: int) -> np.ndarray:
        """Rating values aligned with :meth:`items_of` for ``user_id``."""
        self._check_user(user_id)
        start, end = self._csr.indptr[user_id], self._csr.indptr[user_id + 1]
        return self._csr.data[start:end].astype(np.float64)

    def contains(self, user_id: int, item_id: int) -> bool:
        """Whether (user, item) was observed."""
        items = self.items_of(user_id)
        pos = np.searchsorted(items, item_id)
        return bool(pos < items.size and items[pos] == item_id)

    def user_degrees(self) -> np.ndarray:
        """Per-user interaction counts, shape ``(m,)``."""
        return np.diff(self._csr.indptr).astype(np.int64)

    def item_degrees(self) -> np.ndarray:
        """Per-item interaction counts, shape ``(n,)``."""
        return np.diff(self._csc.indptr).astype(np.int64)

    def pairs(self) -> np.ndarray:
        """All observed (user, item) pairs as an ``(nnz, 2)`` array."""
        coo = self._csr.tocoo()
        return np.column_stack([coo.row, coo.col]).astype(np.int64)

    def iter_users(self) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(user_id, item_ids)`` for users with at least one interaction."""
        for user_id in range(self._num_users):
            items = self.items_of(user_id)
            if items.size:
                yield user_id, items

    def to_dense(self) -> np.ndarray:
        """Dense ``(m, n)`` float array (small matrices / tests only)."""
        return np.asarray(self._csr.todense(), dtype=np.float64)

    def to_csr(self) -> sparse.csr_matrix:
        """A copy of the underlying CSR matrix."""
        return self._csr.copy()

    # ------------------------------------------------------------------ #
    # derived matrices
    # ------------------------------------------------------------------ #
    def binarize(self) -> "InteractionMatrix":
        """Drop rating values, keeping the interaction pattern."""
        p = self.pairs()
        return InteractionMatrix(p[:, 0], p[:, 1], self._num_users, self._num_items)

    def filter_ratings(self, min_rating: float) -> "InteractionMatrix":
        """Keep only interactions with rating >= ``min_rating``.

        The survey notes some papers keep only 5-star ratings as positive
        implicit feedback; this implements that preprocessing step.
        """
        if not self._has_ratings:
            raise DataError("matrix has no explicit ratings to filter")
        coo = self._csr.tocoo()
        keep = coo.data >= min_rating
        return InteractionMatrix(
            coo.row[keep], coo.col[keep], self._num_users, self._num_items
        )

    # ------------------------------------------------------------------ #
    # negative sampling
    # ------------------------------------------------------------------ #
    def sample_negative_items(
        self,
        user_id: int,
        size: int,
        seed: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Sample ``size`` items the user has *not* interacted with.

        Sampling is without replacement when enough negatives exist, with
        replacement otherwise (degenerate near-full rows).
        """
        rng = ensure_rng(seed)
        positives = self.items_of(user_id)
        num_neg = self._num_items - positives.size
        if num_neg <= 0:
            raise DataError(f"user {user_id} has interacted with every item")
        mask = np.ones(self._num_items, dtype=bool)
        mask[positives] = False
        candidates = np.flatnonzero(mask)
        replace = size > candidates.size
        return rng.choice(candidates, size=size, replace=replace).astype(np.int64)

    def sample_bpr_triples(
        self,
        size: int,
        seed: int | np.random.Generator | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample ``(user, positive_item, negative_item)`` triples for BPR.

        Users are sampled proportionally to their interaction counts, the
        positive uniformly from their history, and the negative by rejection.
        """
        if self.nnz == 0:
            raise DataError("cannot sample from an empty interaction matrix")
        rng = ensure_rng(seed)
        all_pairs = self.pairs()
        idx = rng.integers(0, all_pairs.shape[0], size=size)
        users = all_pairs[idx, 0]
        positives = all_pairs[idx, 1]
        negatives = rng.integers(0, self._num_items, size=size)
        for i in range(size):
            while self.contains(users[i], negatives[i]):
                negatives[i] = rng.integers(0, self._num_items)
        return users, positives, negatives.astype(np.int64)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _check_user(self, user_id: int) -> None:
        if not 0 <= user_id < self._num_users:
            raise DataError(f"user id {user_id} out of range [0, {self._num_users})")

    def _check_item(self, item_id: int) -> None:
        if not 0 <= item_id < self._num_items:
            raise DataError(f"item id {item_id} out of range [0, {self._num_items})")
