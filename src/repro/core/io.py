"""Dataset and knowledge-graph (de)serialization.

Datasets round-trip through a single ``.npz`` archive (arrays) plus an
embedded JSON blob (labels, names, JSON-safe metadata), so a generated
world can be shared or pinned for regression testing without re-running
the generator.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path

import numpy as np

from .dataset import Dataset
from .exceptions import DataError
from .interactions import InteractionMatrix

__all__ = ["save_dataset", "load_dataset"]

_FORMAT_VERSION = 1


def save_dataset(dataset: Dataset, path: str | Path) -> Path:
    """Write ``dataset`` to ``path`` (``.npz``); returns the resolved path.

    Only JSON-serializable entries of ``dataset.extra`` are persisted;
    NumPy arrays in ``extra`` (e.g. the generator's latent matrices) are
    stored as arrays and restored as arrays.
    """
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    meta: dict = {"version": _FORMAT_VERSION, "name": dataset.name, "extra": {}}

    pairs = dataset.interactions.pairs()
    arrays["interaction_pairs"] = pairs
    meta["num_users"] = dataset.num_users
    meta["num_items"] = dataset.num_items

    if dataset.kg is not None:
        kg = dataset.kg
        arrays["kg_triples"] = kg.triples()
        meta["kg"] = {
            "num_entities": kg.num_entities,
            "num_relations": kg.num_relations,
            "entity_labels": kg.entity_labels,
            "relation_labels": kg.relation_labels,
            "type_names": kg.type_names,
        }
        if kg.entity_types is not None:
            arrays["kg_entity_types"] = kg.entity_types
    if dataset.item_entities is not None:
        arrays["item_entities"] = dataset.item_entities
    if dataset.user_entities is not None:
        arrays["user_entities"] = dataset.user_entities
    if dataset.item_text is not None:
        arrays["item_text"] = dataset.item_text

    for key, value in dataset.extra.items():
        if isinstance(value, np.ndarray):
            arrays[f"extra_array__{key}"] = value
        else:
            try:
                json.dumps(value)
            except TypeError:
                continue  # silently skip non-serializable entries
            meta["extra"][key] = value

    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_dataset(path: str | Path) -> Dataset:
    """Inverse of :func:`save_dataset`.

    Malformed input — a truncated or non-zip file, a missing array or
    metadata key, corrupt JSON, or a format-version mismatch — raises
    :class:`~repro.core.exceptions.DataError` rather than leaking the
    underlying ``KeyError``/``JSONDecodeError``/``BadZipFile``.  A missing
    file still raises ``FileNotFoundError``.
    """
    try:
        return _load_dataset(Path(path))
    except (DataError, FileNotFoundError):
        raise
    except (
        KeyError,
        ValueError,
        OSError,
        zipfile.BadZipFile,
        json.JSONDecodeError,
        UnicodeDecodeError,
    ) as exc:
        raise DataError(
            f"failed to load dataset archive {path}: {type(exc).__name__}: {exc}"
        ) from exc


def _load_dataset(path: Path) -> Dataset:
    with np.load(path, allow_pickle=False) as archive:
        if "__meta__" not in archive:
            raise DataError(f"{path} is not a kgrec dataset archive")
        meta = json.loads(bytes(archive["__meta__"].tobytes()).decode("utf-8"))
        if meta.get("version") != _FORMAT_VERSION:
            raise DataError(f"unsupported archive version {meta.get('version')}")

        pairs = archive["interaction_pairs"]
        interactions = InteractionMatrix.from_pairs(
            pairs, meta["num_users"], meta["num_items"]
        )

        kg = None
        if "kg_triples" in archive:
            from repro.kg.graph import KnowledgeGraph

            kg_meta = meta["kg"]
            kg = KnowledgeGraph.from_triples(
                archive["kg_triples"],
                num_entities=kg_meta["num_entities"],
                num_relations=kg_meta["num_relations"],
                entity_labels=kg_meta["entity_labels"],
                relation_labels=kg_meta["relation_labels"],
                entity_types=(
                    archive["kg_entity_types"] if "kg_entity_types" in archive else None
                ),
                type_names=kg_meta["type_names"],
            )

        extra = dict(meta["extra"])
        for key in archive.files:
            if key.startswith("extra_array__"):
                extra[key[len("extra_array__") :]] = archive[key]

        return Dataset(
            name=meta["name"],
            interactions=interactions,
            kg=kg,
            item_entities=(
                archive["item_entities"] if "item_entities" in archive else None
            ),
            user_entities=(
                archive["user_entities"] if "user_entities" in archive else None
            ),
            item_text=archive["item_text"] if "item_text" in archive else None,
            extra=extra,
        )
