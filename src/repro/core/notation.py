"""Executable version of the survey's Table 2 (notation glossary).

Each :class:`Notation` row maps a mathematical symbol used throughout the
survey to its description *and* to the API object in this library that
realizes it.  ``api`` is a dotted path; :func:`resolve` imports it so tests
can assert that every notation is backed by working code.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass

__all__ = ["Notation", "TABLE2", "resolve"]


@dataclass(frozen=True)
class Notation:
    symbol: str
    description: str
    api: str  # dotted path "module:attr" realizing the concept


TABLE2: tuple[Notation, ...] = (
    Notation("u_i", "User i", "repro.core.dataset:Dataset"),
    Notation("v_j", "Item j", "repro.core.dataset:Dataset"),
    Notation("e_k", "Entity k in the knowledge graph", "repro.kg.graph:KnowledgeGraph"),
    Notation(
        "r_k",
        "Relation between two entities in the knowledge graph",
        "repro.kg.triples:TripleStore",
    ),
    Notation(
        "y_hat_ij",
        "Predicted user u_i's preference for item v_j",
        "repro.core.recommender:Recommender",
    ),
    Notation("u_i (bold)", "Latent vector of user u_i", "repro.models.baselines.bpr:BPRMF"),
    Notation("v_j (bold)", "Latent vector of item v_j", "repro.models.baselines.bpr:BPRMF"),
    Notation(
        "e_k (bold)",
        "Latent vector of entity e_k in the KG",
        "repro.kge.base:KGEModel",
    ),
    Notation(
        "r_k (bold)",
        "Latent vector of relation r_k in the KG",
        "repro.kge.base:KGEModel",
    ),
    Notation("U (set)", "User set", "repro.core.interactions:InteractionMatrix"),
    Notation("V (set)", "Item set", "repro.core.interactions:InteractionMatrix"),
    Notation("U (matrix)", "Latent vectors of the user set", "repro.models.baselines.mf:FunkSVD"),
    Notation("V (matrix)", "Latent vectors of the item set", "repro.models.baselines.mf:FunkSVD"),
    Notation(
        "R",
        "User-item interaction matrix",
        "repro.core.interactions:InteractionMatrix",
    ),
    Notation(
        "p_k",
        "One path k connecting two entities in the knowledge graph",
        "repro.kg.metapath:enumerate_paths",
    ),
    Notation(
        "P(e_i, e_j)",
        "Path set between entity pair (e_i, e_j)",
        "repro.kg.metapath:enumerate_paths",
    ),
    Notation("Phi", "Nonlinear transformation", "repro.autograd.ops:sigmoid"),
    Notation("odot", "Element-wise product", "repro.autograd.tensor:Tensor"),
    Notation("oplus", "Vector concatenation", "repro.autograd.ops:concat"),
)


def resolve(notation: Notation):
    """Import and return the API object backing ``notation``.

    Raises ``ImportError``/``AttributeError`` when the mapping is stale,
    which the test suite treats as a broken table.
    """
    module_name, __, attr = notation.api.partition(":")
    module = importlib.import_module(module_name)
    return getattr(module, attr)
