"""Base recommender API and explanation objects.

Every model in the library implements the interface from Section 2.2 of the
survey: learn representations, learn a scoring function
``f: u_i x v_j -> y_hat_ij``, and recommend by sorting preference scores.
Path-based and unified models additionally support :meth:`Recommender.explain`
returning KG paths that justify a recommendation (Section 4's
"explainable recommendation" thread).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from .dataset import Dataset
from .exceptions import DataError, NotFittedError

__all__ = ["Explanation", "Recommender"]


@dataclass(frozen=True)
class Explanation:
    """A justification for recommending ``item_id`` to ``user_id``.

    ``entities`` and ``relations`` encode a KG path
    ``e_0 --r_1--> e_1 --r_2--> ... --r_k--> e_k`` with
    ``len(entities) == len(relations) + 1``.  Rule- or similarity-style
    explanations use ``detail`` and may leave the path empty.
    """

    user_id: int
    item_id: int
    kind: str
    score: float
    entities: tuple[int, ...] = ()
    relations: tuple[int, ...] = ()
    detail: str = ""

    def __post_init__(self) -> None:
        if self.entities and len(self.entities) != len(self.relations) + 1:
            raise DataError("a path needs exactly len(entities)-1 relations")

    def render(self, kg=None) -> str:
        """Human-readable form, resolving labels through ``kg`` when given."""
        if not self.entities:
            return self.detail or f"{self.kind} (score={self.score:.4f})"
        ent = (
            [kg.entity_label(e) for e in self.entities]
            if kg is not None
            else [f"e{e}" for e in self.entities]
        )
        rel = (
            [kg.relation_label(r) for r in self.relations]
            if kg is not None
            else [f"r{r}" for r in self.relations]
        )
        parts = [ent[0]]
        for r, e in zip(rel, ent[1:]):
            parts.append(f"--[{r}]--> {e}")
        return " ".join(parts)


class Recommender(abc.ABC):
    """Abstract base class for all recommendation models.

    Subclasses implement :meth:`fit` and :meth:`score_all`; ranking and
    pairwise prediction are derived.  Models requiring a knowledge graph
    should declare ``requires_kg = True`` so harnesses can check datasets.
    """

    requires_kg: bool = False
    supports_explanations: bool = False

    def __init__(self) -> None:
        self._dataset: Dataset | None = None

    # ------------------------------------------------------------------ #
    # to be implemented by subclasses
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def fit(self, dataset: Dataset) -> "Recommender":
        """Train on ``dataset`` (its interactions are the training split)."""

    @abc.abstractmethod
    def score_all(self, user_id: int) -> np.ndarray:
        """Preference scores for every item: shape ``(num_items,)``."""

    # ------------------------------------------------------------------ #
    # derived API
    # ------------------------------------------------------------------ #
    def predict(self, user_ids: np.ndarray, item_ids: np.ndarray) -> np.ndarray:
        """Element-wise scores for parallel ``user_ids`` / ``item_ids``."""
        user_ids = np.asarray(user_ids, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        if user_ids.shape != item_ids.shape:
            raise DataError("user_ids and item_ids must have the same shape")
        scores = np.empty(user_ids.size, dtype=np.float64)
        cache: dict[int, np.ndarray] = {}
        for pos, (u, v) in enumerate(zip(user_ids.ravel(), item_ids.ravel())):
            if int(u) not in cache:
                cache[int(u)] = self.score_all(int(u))
            scores[pos] = cache[int(u)][int(v)]
        return scores.reshape(user_ids.shape)

    def recommend(
        self, user_id: int, k: int = 10, exclude_seen: bool = True
    ) -> np.ndarray:
        """Top-``k`` item ids by descending preference score."""
        dataset = self.fitted_dataset
        scores = np.array(self.score_all(user_id), dtype=np.float64, copy=True)
        if exclude_seen:
            seen = dataset.interactions.items_of(user_id)
            scores[seen] = -np.inf
        k = min(k, scores.size)
        top = np.argpartition(-scores, k - 1)[:k]
        return top[np.argsort(-scores[top], kind="stable")].astype(np.int64)

    def explain(self, user_id: int, item_id: int) -> list[Explanation]:
        """Explanations for (user, item); empty when unsupported."""
        return []

    @property
    def explanation_dataset(self) -> Dataset:
        """The dataset whose KG the model's explanations refer to.

        Models that internally lift the item graph into a user-item graph
        (KGAT, PGPR, ...) override this so explanation paths validate
        against the graph they were actually found in.
        """
        return self.fitted_dataset

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        return self._dataset is not None

    @property
    def fitted_dataset(self) -> Dataset:
        if self._dataset is None:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")
        return self._dataset

    def _mark_fitted(self, dataset: Dataset) -> None:
        if self.requires_kg:
            if dataset.kg is None:
                raise DataError(
                    f"{type(self).__name__} requires a dataset with a knowledge graph"
                )
            if dataset.item_entities is None or (dataset.item_entities < 0).any():
                raise DataError(
                    f"{type(self).__name__} requires every item aligned to a KG "
                    "entity (item_entities must be set with no -1 entries)"
                )
        self._dataset = dataset

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "fitted" if self.is_fitted else "unfitted"
        return f"{type(self).__name__}({state})"
