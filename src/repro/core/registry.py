"""Model registry reproducing the survey's Table 3.

Table 3 of the survey catalogs 39 KG-based recommender papers with their
publication venue/year, how they use the KG (embedding-based, path-based, or
unified), and which framework techniques they employ (CNN, RNN, attention,
GNN, GAN, RL, autoencoder, matrix factorization).  This module keeps that
catalog as data (:data:`SURVEY_TABLE3`) and links each row to the class
implementing it in this library, so the table can be regenerated from the
code itself (see :mod:`repro.experiments.tables`).

A few technique cells in the published PDF are typographically corrupted; for
those rows the flags were reconstructed from the cited papers' architectures,
which the table is summarizing in the first place.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .exceptions import ConfigError

__all__ = [
    "Usage",
    "TECHNIQUES",
    "ModelCard",
    "SURVEY_TABLE3",
    "register_model",
    "get_model_class",
    "list_registered",
    "card_for",
]


class Usage(enum.Enum):
    """How a method uses the knowledge graph (Table 3 'Usage' columns)."""

    EMBEDDING = "Emb."
    PATH = "Path"
    UNIFIED = "Uni."
    BASELINE = "Baseline"  # not in Table 3; classic CF comparators


#: Technique columns of Table 3, in the paper's order.
TECHNIQUES: tuple[str, ...] = ("CNN", "RNN", "Att.", "GNN", "GAN", "RL", "AE", "MF")


@dataclass(frozen=True)
class ModelCard:
    """One row of Table 3 (or a baseline entry)."""

    name: str
    venue: str
    year: int
    usage: Usage
    techniques: frozenset[str] = field(default_factory=frozenset)
    ref: int | None = None  # citation number in the survey

    def __post_init__(self) -> None:
        unknown = self.techniques - set(TECHNIQUES)
        if unknown:
            raise ConfigError(f"unknown technique flags: {sorted(unknown)}")

    def technique_row(self) -> tuple[bool, ...]:
        """Boolean flags aligned with :data:`TECHNIQUES`."""
        return tuple(t in self.techniques for t in TECHNIQUES)


def _card(name, venue, year, usage, techs=(), ref=None):
    return ModelCard(name, venue, year, usage, frozenset(techs), ref)


#: The 39 rows of the survey's Table 3, in the paper's order.
SURVEY_TABLE3: tuple[ModelCard, ...] = (
    _card("CKE", "KDD", 2016, Usage.EMBEDDING, {"AE"}, 2),
    _card("entity2rec", "RecSys", 2017, Usage.EMBEDDING, (), 66),
    _card("ECFKG", "Algorithms", 2018, Usage.EMBEDDING, (), 67),
    _card("SHINE", "WSDM", 2018, Usage.EMBEDDING, {"AE"}, 68),
    _card("DKN", "WWW", 2018, Usage.EMBEDDING, {"CNN", "Att."}, 48),
    _card("KSR", "SIGIR", 2018, Usage.EMBEDDING, {"RNN", "Att."}, 44),
    _card("CFKG", "SIGIR", 2018, Usage.EMBEDDING, (), 13),
    _card("KTGAN", "ICDM", 2018, Usage.EMBEDDING, {"GAN"}, 69),
    _card("KTUP", "WWW", 2019, Usage.EMBEDDING, (), 70),
    _card("MKR", "WWW", 2019, Usage.EMBEDDING, {"Att."}, 45),
    _card("DKFM", "WWW", 2019, Usage.EMBEDDING, (), 71),
    _card("SED", "WWW", 2019, Usage.EMBEDDING, (), 72),
    _card("RCF", "SIGIR", 2019, Usage.EMBEDDING, {"Att."}, 73),
    _card("BEM", "CIKM", 2019, Usage.EMBEDDING, (), 74),
    _card("Hete-MF", "IJCAI", 2013, Usage.PATH, {"MF"}, 75),
    _card("HeteRec", "RecSys", 2013, Usage.PATH, {"MF"}, 76),
    _card("HeteRec_p", "WSDM", 2014, Usage.PATH, {"MF"}, 77),
    _card("Hete-CF", "ICDM", 2014, Usage.PATH, {"MF"}, 78),
    _card("SemRec", "CIKM", 2015, Usage.PATH, {"MF"}, 79),
    _card("ProPPR", "RecSys", 2016, Usage.PATH, {"MF"}, 80),
    _card("FMG", "KDD", 2017, Usage.PATH, {"MF"}, 3),
    _card("MCRec", "KDD", 2018, Usage.PATH, {"CNN", "Att.", "MF"}, 1),
    _card("RKGE", "RecSys", 2018, Usage.PATH, {"RNN", "Att."}, 81),
    _card("HERec", "TKDE", 2019, Usage.PATH, {"MF"}, 82),
    _card("KPRN", "AAAI", 2019, Usage.PATH, {"RNN", "Att."}, 83),
    _card("RuleRec", "WWW", 2019, Usage.PATH, {"MF"}, 84),
    _card("PGPR", "SIGIR", 2019, Usage.PATH, {"RL"}, 85),
    _card("EIUM", "MM", 2019, Usage.PATH, {"CNN", "Att."}, 86),
    _card("Ekar", "arXiv", 2019, Usage.PATH, {"RL"}, 87),
    _card("RippleNet", "CIKM", 2018, Usage.UNIFIED, {"Att."}, 14),
    _card("RippleNet-agg", "TOIS", 2019, Usage.UNIFIED, {"Att.", "GNN"}, 88),
    _card("KGCN", "WWW", 2019, Usage.UNIFIED, {"Att.", "GNN"}, 89),
    _card("KGAT", "KDD", 2019, Usage.UNIFIED, {"Att.", "GNN"}, 90),
    _card("KGCN-LS", "KDD", 2019, Usage.UNIFIED, {"Att.", "GNN"}, 91),
    _card("AKUPM", "KDD", 2019, Usage.UNIFIED, {"Att."}, 92),
    _card("KNI", "KDD", 2019, Usage.UNIFIED, {"Att.", "GNN"}, 93),
    _card("IntentGC", "KDD", 2019, Usage.UNIFIED, {"GNN"}, 94),
    _card("RCoLM", "IEEE Access", 2019, Usage.UNIFIED, {"Att."}, 95),
    _card("AKGE", "arXiv", 2019, Usage.UNIFIED, {"Att.", "GNN"}, 96),
)

_CARDS_BY_NAME: dict[str, ModelCard] = {c.name: c for c in SURVEY_TABLE3}
_REGISTRY: dict[str, type] = {}


def register_model(name: str, card: ModelCard | None = None):
    """Class decorator binding an implementation to a Table 3 row.

    ``name`` must match a Table 3 entry unless a custom ``card`` is supplied
    (used for baselines and extensions outside the survey's table).
    """

    def decorator(cls: type) -> type:
        if name in _REGISTRY:
            raise ConfigError(f"model {name!r} registered twice")
        if card is None and name not in _CARDS_BY_NAME:
            raise ConfigError(
                f"{name!r} is not a Table 3 method; pass an explicit card"
            )
        if card is not None:
            _CARDS_BY_NAME.setdefault(name, card)
        _REGISTRY[name] = cls
        cls.model_name = name
        return cls

    return decorator


def get_model_class(name: str) -> type:
    """Look up the implementation class registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"no implementation registered for {name!r}; "
            f"known: {sorted(_REGISTRY)}"
        ) from None


def list_registered(usage: Usage | None = None) -> list[str]:
    """Names of all registered implementations, optionally by usage type."""
    names = sorted(_REGISTRY)
    if usage is None:
        return names
    return [n for n in names if _CARDS_BY_NAME[n].usage is usage]


def card_for(name: str) -> ModelCard:
    """The :class:`ModelCard` (Table 3 row or baseline card) for ``name``."""
    try:
        return _CARDS_BY_NAME[name]
    except KeyError:
        raise ConfigError(f"no model card for {name!r}") from None


def is_implemented(name: str) -> bool:
    """Whether a Table 3 method has an implementation in this library."""
    return name in _REGISTRY
