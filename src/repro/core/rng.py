"""Seeding helpers.

Every stochastic component in the library takes either an integer ``seed`` or
a :class:`numpy.random.Generator`.  :func:`ensure_rng` normalizes both forms,
and :func:`spawn` derives independent child generators so that two components
seeded from the same parent do not consume each other's stream.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn"]


def ensure_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields a non-deterministic generator, an ``int`` a deterministic
    one, and an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
