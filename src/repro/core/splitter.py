"""Train/test splitting protocols.

Three protocols cover the evaluation styles used across the surveyed papers:

* :func:`random_split` — per-interaction holdout (RippleNet, KGCN, MKR, ...).
* :func:`leave_one_out_split` — one held-out item per user (KSR, NCF-style).
* :func:`cold_start_item_split` — a fraction of *items* appears only in the
  test set, simulating the item cold-start regime the survey motivates.

Each returns ``(train, test)`` as two :class:`~repro.core.dataset.Dataset`
objects sharing the same knowledge graph and alignments.
"""

from __future__ import annotations

import numpy as np

from .dataset import Dataset
from .exceptions import DataError
from .interactions import InteractionMatrix
from .rng import ensure_rng

__all__ = ["random_split", "leave_one_out_split", "cold_start_item_split"]


def _rebuild(dataset: Dataset, pairs: np.ndarray) -> Dataset:
    matrix = InteractionMatrix.from_pairs(
        pairs, dataset.num_users, dataset.num_items
    )
    return dataset.with_interactions(matrix)


def random_split(
    dataset: Dataset,
    test_fraction: float = 0.2,
    seed: int | np.random.Generator | None = None,
) -> tuple[Dataset, Dataset]:
    """Randomly hold out ``test_fraction`` of interactions.

    Every user with at least two interactions keeps at least one in train, so
    trained models always have some history per evaluated user.
    """
    if not 0.0 < test_fraction < 1.0:
        raise DataError("test_fraction must be in (0, 1)")
    rng = ensure_rng(seed)
    pairs = dataset.interactions.pairs()
    if pairs.shape[0] < 2:
        raise DataError("need at least two interactions to split")

    order = rng.permutation(pairs.shape[0])
    n_test = max(1, int(round(test_fraction * pairs.shape[0])))
    test_idx = set(order[:n_test].tolist())

    # Guarantee each user keeps one training interaction.
    train_mask = np.ones(pairs.shape[0], dtype=bool)
    train_mask[list(test_idx)] = False
    for user_id in np.unique(pairs[:, 0]):
        rows = np.flatnonzero(pairs[:, 0] == user_id)
        if rows.size >= 2 and not train_mask[rows].any():
            keep = rows[rng.integers(0, rows.size)]
            train_mask[keep] = True
    return _rebuild(dataset, pairs[train_mask]), _rebuild(dataset, pairs[~train_mask])


def leave_one_out_split(
    dataset: Dataset,
    seed: int | np.random.Generator | None = None,
) -> tuple[Dataset, Dataset]:
    """Hold out exactly one interaction per user with >= 2 interactions."""
    rng = ensure_rng(seed)
    train_pairs: list[tuple[int, int]] = []
    test_pairs: list[tuple[int, int]] = []
    matrix = dataset.interactions
    for user_id in range(dataset.num_users):
        items = matrix.items_of(user_id)
        if items.size == 0:
            continue
        if items.size == 1:
            train_pairs.append((user_id, int(items[0])))
            continue
        held = int(items[rng.integers(0, items.size)])
        test_pairs.append((user_id, held))
        train_pairs.extend((user_id, int(v)) for v in items if v != held)
    if not test_pairs:
        raise DataError("no user has two interactions; cannot leave one out")
    return (
        _rebuild(dataset, np.asarray(train_pairs)),
        _rebuild(dataset, np.asarray(test_pairs)),
    )


def cold_start_item_split(
    dataset: Dataset,
    cold_fraction: float = 0.2,
    seed: int | np.random.Generator | None = None,
) -> tuple[Dataset, Dataset, np.ndarray]:
    """Reserve a fraction of items as cold: all their feedback goes to test.

    Returns ``(train, test, cold_item_ids)``.  Cold items have zero training
    interactions, so pure-CF models cannot score them better than chance while
    KG-aware models can exploit the item graph — the survey's core motivation.
    """
    if not 0.0 < cold_fraction < 1.0:
        raise DataError("cold_fraction must be in (0, 1)")
    rng = ensure_rng(seed)
    degrees = dataset.interactions.item_degrees()
    candidates = np.flatnonzero(degrees > 0)
    if candidates.size < 2:
        raise DataError("need at least two interacted items for a cold split")
    n_cold = max(1, int(round(cold_fraction * candidates.size)))
    cold = rng.choice(candidates, size=min(n_cold, candidates.size - 1), replace=False)
    cold_set = set(cold.tolist())

    pairs = dataset.interactions.pairs()
    is_cold = np.fromiter(
        (int(v) in cold_set for v in pairs[:, 1]), dtype=bool, count=pairs.shape[0]
    )
    train = _rebuild(dataset, pairs[~is_cold])
    test = _rebuild(dataset, pairs[is_cold])
    return train, test, np.sort(cold).astype(np.int64)
