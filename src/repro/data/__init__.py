"""Synthetic datasets for the survey's seven application scenarios, plus
metadata catalogs reproducing Tables 1 and 4."""

from .catalog import TABLE4, DatasetEntry, scenarios_list, stand_in_for
from .kg_catalog import TABLE1, PublicKG, cross_domain, domain_specific
from .scenarios import (
    BOOK_SCHEMA,
    MOVIE_SCHEMA,
    MUSIC_SCHEMA,
    NEWS_SCHEMA,
    POI_SCHEMA,
    PRODUCT_SCHEMA,
    SCENARIO_SCHEMAS,
    SOCIAL_SCHEMA,
    make_book_dataset,
    make_movie_dataset,
    make_music_dataset,
    make_news_dataset,
    make_poi_dataset,
    make_product_dataset,
    make_social_dataset,
)
from .synthetic import AttributeSpec, ScenarioSchema, generate_dataset

__all__ = [
    "AttributeSpec",
    "ScenarioSchema",
    "generate_dataset",
    "SCENARIO_SCHEMAS",
    "MOVIE_SCHEMA",
    "BOOK_SCHEMA",
    "MUSIC_SCHEMA",
    "PRODUCT_SCHEMA",
    "POI_SCHEMA",
    "NEWS_SCHEMA",
    "SOCIAL_SCHEMA",
    "make_movie_dataset",
    "make_book_dataset",
    "make_music_dataset",
    "make_product_dataset",
    "make_poi_dataset",
    "make_news_dataset",
    "make_social_dataset",
    "PublicKG",
    "TABLE1",
    "cross_domain",
    "domain_specific",
    "DatasetEntry",
    "TABLE4",
    "scenarios_list",
    "stand_in_for",
]
