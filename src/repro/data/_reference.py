"""The original per-item/per-user loop world generator, kept as an oracle.

This is the seed repo's ``generate_dataset`` verbatim (plus the
``links_per_item`` clamp fix that both implementations share), retained so
the vectorized generator in :mod:`repro.data.synthetic` can be asserted
**bitwise-identical** against it — the equivalence suite and the
``bench_scenarios_panel --smoke`` CI job diff full datasets (interactions,
ratings, triples, labels, latents, text) produced by the two paths from
the same seed.  Nothing in the library should call this module except
tests and benches; it is deliberately slow.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigError
from repro.core.interactions import InteractionMatrix
from repro.core.rng import ensure_rng
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleStore

__all__ = ["generate_dataset_reference"]


def generate_dataset_reference(
    schema,
    num_users: int = 120,
    num_items: int = 200,
    num_factors: int = 6,
    mean_interactions: float = 18.0,
    kg_signal: float = 1.0,
    item_noise: float = 0.2,
    score_noise: float = 0.25,
    user_latent: np.ndarray | None = None,
    explicit_ratings: bool = False,
    seed: int | np.random.Generator | None = None,
) -> Dataset:
    """Loop reference for :func:`repro.data.synthetic.generate_dataset`."""
    from .synthetic import _validate_attribute_specs

    if not 0.0 <= kg_signal <= 1.0:
        raise ConfigError("kg_signal must be in [0, 1]")
    if num_users < 2 or num_items < 4:
        raise ConfigError("need at least 2 users and 4 items")
    _validate_attribute_specs(schema)
    rng = ensure_rng(seed)

    # 1. Attribute entities with factor anchors.
    factor_basis = np.eye(num_factors)
    attr_latents: dict[str, np.ndarray] = {}
    attr_factors: dict[str, np.ndarray] = {}
    for spec in schema.attributes:
        primary = rng.integers(0, num_factors, size=spec.count)
        latents = factor_basis[primary] + rng.normal(0.0, 0.15, (spec.count, num_factors))
        attr_latents[spec.name] = latents
        attr_factors[spec.name] = primary

    # 2. True item-attribute assignments (the preference-generating ones).
    item_primary = rng.integers(0, num_factors, size=num_items)
    true_links: dict[str, list[np.ndarray]] = {s.name: [] for s in schema.attributes}
    for spec in schema.attributes:
        same_factor: dict[int, np.ndarray] = {
            f: np.flatnonzero(attr_factors[spec.name] == f)
            for f in range(num_factors)
        }
        lo, hi = spec.per_item
        for item in range(num_items):
            # Clamp: an attribute type can never supply more distinct links
            # than it has entities (the unclamped draw used to loop forever).
            k = min(int(rng.integers(lo, hi + 1)), spec.count)
            pool = same_factor.get(int(item_primary[item]), np.empty(0, np.int64))
            if spec.informative and pool.size:
                n_primary = max(1, int(round(0.8 * k)))
                chosen = list(
                    rng.choice(pool, size=min(n_primary, pool.size), replace=False)
                )
                while len(chosen) < k:
                    cand = int(rng.integers(0, spec.count))
                    if cand not in chosen:
                        chosen.append(cand)
                links = np.asarray(chosen[:k], dtype=np.int64)
            else:
                links = rng.choice(spec.count, size=min(k, spec.count), replace=False)
            true_links[spec.name].append(np.sort(links))

    # 3. Item latents from informative attributes.
    item_latent = np.zeros((num_items, num_factors))
    for item in range(num_items):
        parts = [
            attr_latents[spec.name][true_links[spec.name][item]]
            for spec in schema.attributes
            if spec.informative and true_links[spec.name][item].size
        ]
        signal = np.concatenate(parts).mean(axis=0)
        item_latent[item] = signal + rng.normal(0.0, item_noise, num_factors)

    # 4. User latents and interactions.
    if user_latent is None:
        user_latent = np.zeros((num_users, num_factors))
        for user in range(num_users):
            user_latent[user] = rng.dirichlet(np.full(num_factors, 0.4))
    else:
        user_latent = np.asarray(user_latent, dtype=np.float64)
        if user_latent.shape != (num_users, num_factors):
            raise ConfigError("user_latent must be (num_users, num_factors)")
    scores = user_latent @ item_latent.T
    scores += rng.normal(0.0, score_noise, scores.shape)

    sigma = 0.6
    degrees = rng.lognormal(np.log(mean_interactions) - sigma**2 / 2, sigma, num_users)
    degrees = np.clip(np.round(degrees), 2, num_items - 2).astype(np.int64)

    users_list: list[int] = []
    items_list: list[int] = []
    ratings_list: list[float] = []
    for user in range(num_users):
        k = int(degrees[user])
        top = np.argpartition(-scores[user], k - 1)[:k]
        users_list.extend([user] * k)
        items_list.extend(int(v) for v in top)
        if explicit_ratings:
            chosen = scores[user, top]
            order = np.argsort(np.argsort(chosen))
            stars = 1.0 + np.floor(5.0 * order / max(1, order.size))
            ratings_list.extend(np.clip(stars, 1.0, 5.0))
    interactions = InteractionMatrix(
        np.asarray(users_list),
        np.asarray(items_list),
        num_users,
        num_items,
        ratings=np.asarray(ratings_list) if explicit_ratings else None,
    )

    # 5. Published KG: optionally degrade link fidelity (kg_signal).
    entity_labels = [f"{schema.item_type}:{i}" for i in range(num_items)]
    entity_types = [0] * num_items
    type_names = [schema.item_type] + [s.name for s in schema.attributes]
    offsets: dict[str, int] = {}
    cursor = num_items
    for type_id, spec in enumerate(schema.attributes, start=1):
        offsets[spec.name] = cursor
        entity_labels.extend(f"{spec.name}:{a}" for a in range(spec.count))
        entity_types.extend([type_id] * spec.count)
        cursor += spec.count
    num_entities = cursor

    relation_labels = [s.relation for s in schema.attributes]
    relation_ids = {s.relation: i for i, s in enumerate(schema.attributes)}
    for __, rel, __, __ in schema.attribute_links:
        if rel not in relation_ids:
            relation_ids[rel] = len(relation_labels)
            relation_labels.append(rel)

    triples: list[tuple[int, int, int]] = []
    for spec in schema.attributes:
        rel = relation_ids[spec.relation]
        for item in range(num_items):
            for attr in true_links[spec.name][item]:
                published = int(attr)
                if rng.random() > kg_signal:
                    published = int(rng.integers(0, spec.count))
                triples.append((item, rel, offsets[spec.name] + published))

    for src_name, rel_label, dst_name, per_src in schema.attribute_links:
        rel = relation_ids[rel_label]
        src_spec = next(s for s in schema.attributes if s.name == src_name)
        dst_spec = next(s for s in schema.attributes if s.name == dst_name)
        for src in range(src_spec.count):
            targets = rng.choice(
                dst_spec.count, size=min(per_src, dst_spec.count), replace=False
            )
            for dst in targets:
                triples.append(
                    (offsets[src_name] + src, rel, offsets[dst_name] + int(dst))
                )

    store = TripleStore.from_triples(
        triples, num_entities=num_entities, num_relations=len(relation_labels)
    )
    kg = KnowledgeGraph(
        store,
        entity_labels=entity_labels,
        relation_labels=relation_labels,
        entity_types=np.asarray(entity_types, dtype=np.int64),
        type_names=type_names,
    )

    # 6. Optional content features (bag of informative attributes + noise).
    item_text = None
    if schema.text_dim > 0:
        proj = rng.normal(0.0, 1.0, (num_factors, schema.text_dim))
        item_text = np.tanh(item_latent @ proj)
        item_text += rng.normal(0.0, 0.3, item_text.shape)

    return Dataset(
        name=f"synthetic-{schema.scenario}",
        interactions=interactions,
        kg=kg,
        item_entities=np.arange(num_items, dtype=np.int64),
        item_text=item_text,
        extra={
            "scenario": schema.scenario,
            "kg_signal": kg_signal,
            "num_factors": num_factors,
            "mean_interactions": mean_interactions,
            "user_latent": user_latent,
            "item_latent": item_latent,
        },
    )
