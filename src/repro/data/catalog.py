"""The survey's Table 4: datasets per application scenario.

Catalogs which public dataset each surveyed paper evaluated on, grouped by
the seven scenarios, and maps each public dataset to the synthetic stand-in
shipped in :mod:`repro.data.scenarios`.  The Table 4 bench regenerates the
paper's table from this registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.dataset import Dataset

from . import scenarios

__all__ = ["DatasetEntry", "TABLE4", "scenarios_list", "stand_in_for"]


@dataclass(frozen=True)
class DatasetEntry:
    """One dataset row of Table 4."""

    scenario: str
    dataset: str
    #: Citation numbers of the surveyed papers evaluating on this dataset.
    papers: tuple[int, ...]
    #: Factory for the synthetic stand-in shipped by this library.
    stand_in: Callable[..., Dataset]


TABLE4: tuple[DatasetEntry, ...] = (
    DatasetEntry(
        "movie", "MovieLens-100K", (1, 73, 75, 76, 77, 80), scenarios.make_movie_dataset
    ),
    DatasetEntry(
        "movie",
        "MovieLens-1M",
        (2, 14, 44, 45, 66, 70, 81, 83, 87, 92, 93, 95, 96),
        scenarios.make_movie_dataset,
    ),
    DatasetEntry(
        "movie", "MovieLens-20M", (44, 86, 88, 89, 91, 93), scenarios.make_movie_dataset
    ),
    DatasetEntry("movie", "DoubanMovie", (69, 79, 82), scenarios.make_movie_dataset),
    DatasetEntry("book", "DBbook2014", (70, 87), scenarios.make_book_dataset),
    DatasetEntry(
        "book",
        "Book-Crossing",
        (14, 45, 88, 89, 91, 92, 93, 95),
        scenarios.make_book_dataset,
    ),
    DatasetEntry("book", "Amazon-Book", (44, 90, 93), scenarios.make_book_dataset),
    DatasetEntry("book", "IntentBooks", (2,), scenarios.make_book_dataset),
    DatasetEntry("book", "DoubanBook", (82,), scenarios.make_book_dataset),
    DatasetEntry("news", "Bing-News", (14, 45, 48, 88), scenarios.make_news_dataset),
    DatasetEntry(
        "product",
        "Amazon Product data",
        (3, 13, 67, 84, 85, 94),
        scenarios.make_product_dataset,
    ),
    DatasetEntry(
        "product", "Alibaba Taobao", (74, 94), scenarios.make_product_dataset
    ),
    DatasetEntry(
        "poi",
        "Yelp challenge",
        (1, 3, 76, 77, 79, 80, 81, 82, 90, 96),
        scenarios.make_poi_dataset,
    ),
    DatasetEntry("poi", "Dianping-Food", (91,), scenarios.make_poi_dataset),
    DatasetEntry("poi", "CEM", (71,), scenarios.make_poi_dataset),
    DatasetEntry(
        "music",
        "Last.FM",
        (1, 44, 45, 87, 89, 90, 91, 96),
        scenarios.make_music_dataset,
    ),
    DatasetEntry("music", "KKBox", (73, 83), scenarios.make_music_dataset),
    DatasetEntry("social", "Weibo", (68,), scenarios.make_social_dataset),
    DatasetEntry("social", "DBLP", (78,), scenarios.make_social_dataset),
    DatasetEntry("social", "MeetUp", (78,), scenarios.make_social_dataset),
)


def scenarios_list() -> list[str]:
    """Scenario names in Table 4 order (stable, deduplicated)."""
    seen: list[str] = []
    for entry in TABLE4:
        if entry.scenario not in seen:
            seen.append(entry.scenario)
    return seen


def stand_in_for(dataset_name: str, **kwargs) -> Dataset:
    """Generate the synthetic stand-in for a public dataset by name."""
    for entry in TABLE4:
        if entry.dataset == dataset_name:
            return entry.stand_in(**kwargs)
    raise KeyError(f"no Table 4 dataset named {dataset_name!r}")
