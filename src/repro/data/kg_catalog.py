"""The survey's Table 1: commonly used public knowledge graphs.

A metadata catalog of the eleven KGs the survey lists, with domain type and
main knowledge sources.  The catalog is pure data — the public graphs
themselves are not redistributable — but it drives the Table 1 bench and
lets scenario generators record which public KG a synthetic graph stands in
for.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PublicKG", "TABLE1", "cross_domain", "domain_specific"]


@dataclass(frozen=True)
class PublicKG:
    """One row of Table 1."""

    name: str
    domain_type: str  # "Cross-Domain" or a specific domain
    sources: tuple[str, ...]
    ref: int  # citation number in the survey

    @property
    def is_cross_domain(self) -> bool:
        return self.domain_type == "Cross-Domain"


TABLE1: tuple[PublicKG, ...] = (
    PublicKG("YAGO", "Cross-Domain", ("Wikipedia",), 17),
    PublicKG(
        "Freebase",
        "Cross-Domain",
        ("Wikipedia", "NNDB", "FMD", "MusicBrainz"),
        15,
    ),
    PublicKG("DBpedia", "Cross-Domain", ("Wikipedia",), 16),
    PublicKG("Satori", "Cross-Domain", ("Web Data",), 31),
    PublicKG(
        "CN-DBPedia",
        "Cross-Domain",
        ("Baidu Baike", "Hudong Baike", "Wikipedia (Chinese)"),
        33,
    ),
    PublicKG("NELL", "Cross-Domain", ("Web Data",), 24),
    PublicKG("Wikidata", "Cross-Domain", ("Wikipedia", "Freebase"), 40),
    PublicKG("Google's Knowledge Graph", "Cross-Domain", ("Web data",), 18),
    PublicKG(
        "Facebook's Entities Graph",
        "Cross-Domain",
        ("Wikipedia", "Facebook data"),
        41,
    ),
    PublicKG(
        "Bio2RDF",
        "Biological Domain",
        ("Public bioinformatics databases", "NCBI's databases"),
        25,
    ),
    PublicKG(
        "KnowLife", "Biomedical Domain", ("Scientific literature", "Web portals"), 43
    ),
)


def cross_domain() -> list[PublicKG]:
    """The cross-domain KGs (the class used by recommender systems)."""
    return [kg for kg in TABLE1 if kg.is_cross_domain]


def domain_specific() -> list[PublicKG]:
    return [kg for kg in TABLE1 if not kg.is_cross_domain]
