"""The seven application scenarios of the survey's Table 4.

Each ``make_*_dataset`` function stands in for the public datasets the
surveyed papers evaluate on (MovieLens, Book-Crossing, Last.FM, Amazon
Product data, Yelp, Bing-News, Weibo), with a KG schema matching how those
papers construct graphs from Freebase/Satori/DBpedia side information.
All functions share the generator knobs of
:func:`repro.data.synthetic.generate_dataset`.
"""

from __future__ import annotations

from repro.core.dataset import Dataset

from .synthetic import AttributeSpec, ScenarioSchema, generate_dataset

__all__ = [
    "MOVIE_SCHEMA",
    "BOOK_SCHEMA",
    "MUSIC_SCHEMA",
    "PRODUCT_SCHEMA",
    "POI_SCHEMA",
    "NEWS_SCHEMA",
    "SOCIAL_SCHEMA",
    "SCENARIO_SCHEMAS",
    "make_movie_dataset",
    "make_book_dataset",
    "make_music_dataset",
    "make_product_dataset",
    "make_poi_dataset",
    "make_news_dataset",
    "make_social_dataset",
]


#: MovieLens-style: movies linked to genres/actors/directors/countries, the
#: exact attribute set the survey lists for movie KGs built from Satori/IMDB.
MOVIE_SCHEMA = ScenarioSchema(
    scenario="movie",
    item_type="movie",
    attributes=(
        AttributeSpec("genre", "has_genre", count=12, per_item=(1, 3)),
        AttributeSpec("actor", "acted_by", count=60, per_item=(2, 4)),
        AttributeSpec("director", "directed_by", count=25, per_item=(1, 1)),
        AttributeSpec(
            "country", "produced_in", count=8, per_item=(1, 1), informative=False
        ),
    ),
    attribute_links=(("actor", "born_in", "country", 1),),
)

#: Book-Crossing / Amazon-Book style.
BOOK_SCHEMA = ScenarioSchema(
    scenario="book",
    item_type="book",
    attributes=(
        AttributeSpec("genre", "has_genre", count=10, per_item=(1, 2)),
        AttributeSpec("author", "written_by", count=40, per_item=(1, 2)),
        AttributeSpec(
            "publisher", "published_by", count=12, per_item=(1, 1), informative=False
        ),
        AttributeSpec(
            "era", "published_in", count=6, per_item=(1, 1), informative=False
        ),
    ),
    attribute_links=(("author", "writes_for", "publisher", 1),),
)

#: Last.FM / KKBox style.
MUSIC_SCHEMA = ScenarioSchema(
    scenario="music",
    item_type="track",
    attributes=(
        AttributeSpec("genre", "has_genre", count=10, per_item=(1, 2)),
        AttributeSpec("artist", "performed_by", count=50, per_item=(1, 2)),
        AttributeSpec("album", "on_album", count=40, per_item=(1, 1)),
        AttributeSpec(
            "label", "released_by", count=8, per_item=(1, 1), informative=False
        ),
    ),
    attribute_links=(("artist", "signed_to", "label", 1),),
)

#: Amazon Product data style; ``also_bought``-like structure comes from the
#: brand/category co-membership rather than an explicit item-item relation.
PRODUCT_SCHEMA = ScenarioSchema(
    scenario="product",
    item_type="product",
    attributes=(
        AttributeSpec("category", "in_category", count=14, per_item=(1, 2)),
        AttributeSpec("brand", "has_brand", count=30, per_item=(1, 1)),
        AttributeSpec(
            "price_band", "priced_at", count=5, per_item=(1, 1), informative=False
        ),
    ),
    attribute_links=(("brand", "sells_in", "category", 2),),
)

#: Yelp-challenge style POI recommendation.
POI_SCHEMA = ScenarioSchema(
    scenario="poi",
    item_type="business",
    attributes=(
        AttributeSpec("cuisine", "serves", count=12, per_item=(1, 2)),
        AttributeSpec("city", "located_in", count=10, per_item=(1, 1)),
        AttributeSpec(
            "price_band", "priced_at", count=4, per_item=(1, 1), informative=False
        ),
        AttributeSpec("ambience", "has_ambience", count=8, per_item=(1, 2)),
    ),
)

#: Bing-News style; articles carry text features (DKN's content channel) and
#: mention KG entities.
NEWS_SCHEMA = ScenarioSchema(
    scenario="news",
    item_type="article",
    attributes=(
        AttributeSpec("topic", "about_topic", count=10, per_item=(1, 2)),
        AttributeSpec("entity", "mentions", count=80, per_item=(2, 5)),
        AttributeSpec(
            "source", "published_by", count=10, per_item=(1, 1), informative=False
        ),
    ),
    attribute_links=(("entity", "related_to", "topic", 1),),
    text_dim=32,
)

#: Weibo-style celebrity recommendation (SHINE's sentiment-link task): items
#: are celebrities with domains and organizations.
SOCIAL_SCHEMA = ScenarioSchema(
    scenario="social",
    item_type="celebrity",
    attributes=(
        AttributeSpec("domain", "works_in", count=8, per_item=(1, 2)),
        AttributeSpec("organization", "member_of", count=20, per_item=(1, 1)),
        AttributeSpec(
            "region", "based_in", count=6, per_item=(1, 1), informative=False
        ),
    ),
    attribute_links=(("organization", "located_in", "region", 1),),
)

SCENARIO_SCHEMAS: dict[str, ScenarioSchema] = {
    s.scenario: s
    for s in (
        MOVIE_SCHEMA,
        BOOK_SCHEMA,
        MUSIC_SCHEMA,
        PRODUCT_SCHEMA,
        POI_SCHEMA,
        NEWS_SCHEMA,
        SOCIAL_SCHEMA,
    )
}


def _maker(schema: ScenarioSchema):
    def make(seed=None, **kwargs) -> Dataset:
        return generate_dataset(schema, seed=seed, **kwargs)

    make.__name__ = f"make_{schema.scenario}_dataset"
    make.__doc__ = (
        f"Synthetic {schema.scenario} dataset with an aligned item KG.\n\n"
        f"Accepts all :func:`repro.data.synthetic.generate_dataset` knobs."
    )
    return make


make_movie_dataset = _maker(MOVIE_SCHEMA)
make_book_dataset = _maker(BOOK_SCHEMA)
make_music_dataset = _maker(MUSIC_SCHEMA)
make_product_dataset = _maker(PRODUCT_SCHEMA)
make_poi_dataset = _maker(POI_SCHEMA)
make_news_dataset = _maker(NEWS_SCHEMA)
make_social_dataset = _maker(SOCIAL_SCHEMA)
