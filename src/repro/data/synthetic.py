"""Synthetic world model: interactions driven by KG attributes.

The survey's central premise is that KG side information *carries preference
signal*: users like movies because of their genres, actors, and directors.
The generator here plants exactly that structure so the surveyed methods'
relative behaviour is reproducible:

1. There are ``num_factors`` latent taste factors (think: genres).
2. Every *informative* attribute entity (a genre, an actor, ...) is anchored
   to one primary factor.
3. An item's latent vector is the mean of its informative attributes'
   vectors plus item noise — so the KG links *are* the preference signal.
4. A user samples a sparse mixture over factors and interacts with the
   items scoring highest under a noisy dot product, with a long-tailed
   per-user interaction count.

``kg_signal`` controls how much of the planted structure survives into the
published KG: with probability ``1 - kg_signal`` an item's attribute links
are rewired to random attributes of the same type, decoupling the KG from
preference.  Sweeping it reproduces the survey's "KG helps when informative"
claims (Study E1); ``density``/cold-start knobs reproduce the sparsity
claims (Study E4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigError
from repro.core.interactions import InteractionMatrix
from repro.core.rng import ensure_rng
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleStore

__all__ = ["AttributeSpec", "ScenarioSchema", "generate_dataset"]


@dataclass(frozen=True)
class AttributeSpec:
    """One attribute entity type linked to items.

    Attributes
    ----------
    name:
        Entity-type name, e.g. ``"genre"``.
    relation:
        Relation label linking item -> attribute, e.g. ``"has_genre"``.
    count:
        Number of attribute entities of this type.
    per_item:
        ``(low, high)`` inclusive range of links per item.
    informative:
        Whether this attribute type carries taste factors; non-informative
        types are pure KG noise (e.g. ``release_year`` buckets).
    """

    name: str
    relation: str
    count: int
    per_item: tuple[int, int] = (1, 1)
    informative: bool = True


@dataclass(frozen=True)
class ScenarioSchema:
    """Entity/relation schema of one application scenario (Table 4 row)."""

    scenario: str
    item_type: str
    attributes: tuple[AttributeSpec, ...]
    #: Optional relations among attribute types: (src_attr, relation,
    #: dst_attr, links_per_src) adding multi-hop structure, e.g. an actor's
    #: ``born_in`` country.
    attribute_links: tuple[tuple[str, str, str, int], ...] = ()
    #: Width of the item_text content features (0 = none).  News uses this.
    text_dim: int = 0

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ConfigError("a scenario needs at least one attribute type")
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise ConfigError("duplicate attribute type names")
        if not any(a.informative for a in self.attributes):
            raise ConfigError("at least one attribute type must be informative")


def generate_dataset(
    schema: ScenarioSchema,
    num_users: int = 120,
    num_items: int = 200,
    num_factors: int = 6,
    mean_interactions: float = 18.0,
    kg_signal: float = 1.0,
    item_noise: float = 0.2,
    score_noise: float = 0.25,
    user_latent: np.ndarray | None = None,
    explicit_ratings: bool = False,
    seed: int | np.random.Generator | None = None,
) -> Dataset:
    """Generate a :class:`Dataset` with an aligned item knowledge graph.

    Parameters
    ----------
    schema:
        Scenario schema (entity/relation types).
    num_users, num_items:
        Sizes of the user and item sets.
    num_factors:
        Number of latent taste factors.
    mean_interactions:
        Mean per-user interaction count (log-normal across users); the main
        sparsity knob.
    kg_signal:
        In ``[0, 1]``; fraction of item-attribute links kept faithful to the
        preference-generating attributes (the rest are rewired randomly).
    item_noise:
        Std of item-specific latent noise relative to attribute signal.
    score_noise:
        Std of per-(user, item) score noise; raises interaction randomness.
    user_latent:
        Optional pre-drawn ``(num_users, num_factors)`` taste matrix.  Pass
        the same matrix to two scenarios to create *cross-domain* datasets
        with shared users (Section 6's cross-domain direction).
    explicit_ratings:
        When true, interactions carry 1-5 star ratings derived from the
        per-user quintiles of the true preference score (the explicit
        feedback channel SemRec-style methods weight by).
    seed:
        Reproducibility seed.
    """
    if not 0.0 <= kg_signal <= 1.0:
        raise ConfigError("kg_signal must be in [0, 1]")
    if num_users < 2 or num_items < 4:
        raise ConfigError("need at least 2 users and 4 items")
    rng = ensure_rng(seed)

    # ---------------------------------------------------------------- #
    # 1. Attribute entities with factor anchors.
    # ---------------------------------------------------------------- #
    factor_basis = np.eye(num_factors)
    attr_latents: dict[str, np.ndarray] = {}
    attr_factors: dict[str, np.ndarray] = {}
    for spec in schema.attributes:
        primary = rng.integers(0, num_factors, size=spec.count)
        latents = factor_basis[primary] + rng.normal(0.0, 0.15, (spec.count, num_factors))
        attr_latents[spec.name] = latents
        attr_factors[spec.name] = primary

    # ---------------------------------------------------------------- #
    # 2. True item-attribute assignments (the preference-generating ones).
    # ---------------------------------------------------------------- #
    # Bias assignments so an item's informative attributes agree on a factor,
    # keeping item latents peaked instead of washing out to the mean.
    item_primary = rng.integers(0, num_factors, size=num_items)
    true_links: dict[str, list[np.ndarray]] = {s.name: [] for s in schema.attributes}
    for spec in schema.attributes:
        same_factor: dict[int, np.ndarray] = {
            f: np.flatnonzero(attr_factors[spec.name] == f)
            for f in range(num_factors)
        }
        lo, hi = spec.per_item
        for item in range(num_items):
            k = int(rng.integers(lo, hi + 1))
            pool = same_factor.get(int(item_primary[item]), np.empty(0, np.int64))
            if spec.informative and pool.size:
                # 80% of links come from the item's primary factor.
                n_primary = max(1, int(round(0.8 * k)))
                chosen = list(
                    rng.choice(pool, size=min(n_primary, pool.size), replace=False)
                )
                while len(chosen) < k:
                    cand = int(rng.integers(0, spec.count))
                    if cand not in chosen:
                        chosen.append(cand)
                links = np.asarray(chosen[:k], dtype=np.int64)
            else:
                links = rng.choice(spec.count, size=min(k, spec.count), replace=False)
            true_links[spec.name].append(np.sort(links))

    # ---------------------------------------------------------------- #
    # 3. Item latents from informative attributes.
    # ---------------------------------------------------------------- #
    item_latent = np.zeros((num_items, num_factors))
    for item in range(num_items):
        parts = [
            attr_latents[spec.name][true_links[spec.name][item]]
            for spec in schema.attributes
            if spec.informative and true_links[spec.name][item].size
        ]
        signal = np.concatenate(parts).mean(axis=0)
        item_latent[item] = signal + rng.normal(0.0, item_noise, num_factors)

    # ---------------------------------------------------------------- #
    # 4. User latents and interactions.
    # ---------------------------------------------------------------- #
    if user_latent is None:
        user_latent = np.zeros((num_users, num_factors))
        for user in range(num_users):
            user_latent[user] = rng.dirichlet(np.full(num_factors, 0.4))
    else:
        user_latent = np.asarray(user_latent, dtype=np.float64)
        if user_latent.shape != (num_users, num_factors):
            raise ConfigError("user_latent must be (num_users, num_factors)")
    scores = user_latent @ item_latent.T
    scores += rng.normal(0.0, score_noise, scores.shape)

    sigma = 0.6
    degrees = rng.lognormal(np.log(mean_interactions) - sigma**2 / 2, sigma, num_users)
    degrees = np.clip(np.round(degrees), 2, num_items - 2).astype(np.int64)

    users_list: list[int] = []
    items_list: list[int] = []
    ratings_list: list[float] = []
    for user in range(num_users):
        k = int(degrees[user])
        top = np.argpartition(-scores[user], k - 1)[:k]
        users_list.extend([user] * k)
        items_list.extend(int(v) for v in top)
        if explicit_ratings:
            # 1-5 stars from the user's own preference quintiles.
            chosen = scores[user, top]
            order = np.argsort(np.argsort(chosen))
            stars = 1.0 + np.floor(5.0 * order / max(1, order.size))
            ratings_list.extend(np.clip(stars, 1.0, 5.0))
    interactions = InteractionMatrix(
        np.asarray(users_list),
        np.asarray(items_list),
        num_users,
        num_items,
        ratings=np.asarray(ratings_list) if explicit_ratings else None,
    )

    # ---------------------------------------------------------------- #
    # 5. Published KG: optionally degrade link fidelity (kg_signal).
    # ---------------------------------------------------------------- #
    entity_labels = [f"{schema.item_type}:{i}" for i in range(num_items)]
    entity_types = [0] * num_items
    type_names = [schema.item_type] + [s.name for s in schema.attributes]
    offsets: dict[str, int] = {}
    cursor = num_items
    for type_id, spec in enumerate(schema.attributes, start=1):
        offsets[spec.name] = cursor
        entity_labels.extend(f"{spec.name}:{a}" for a in range(spec.count))
        entity_types.extend([type_id] * spec.count)
        cursor += spec.count
    num_entities = cursor

    relation_labels = [s.relation for s in schema.attributes]
    relation_ids = {s.relation: i for i, s in enumerate(schema.attributes)}
    for __, rel, __, __ in schema.attribute_links:
        if rel not in relation_ids:
            relation_ids[rel] = len(relation_labels)
            relation_labels.append(rel)

    triples: list[tuple[int, int, int]] = []
    for spec in schema.attributes:
        rel = relation_ids[spec.relation]
        for item in range(num_items):
            for attr in true_links[spec.name][item]:
                published = int(attr)
                if rng.random() > kg_signal:
                    published = int(rng.integers(0, spec.count))
                triples.append((item, rel, offsets[spec.name] + published))

    for src_name, rel_label, dst_name, per_src in schema.attribute_links:
        rel = relation_ids[rel_label]
        src_spec = next(s for s in schema.attributes if s.name == src_name)
        dst_spec = next(s for s in schema.attributes if s.name == dst_name)
        for src in range(src_spec.count):
            targets = rng.choice(
                dst_spec.count, size=min(per_src, dst_spec.count), replace=False
            )
            for dst in targets:
                triples.append(
                    (offsets[src_name] + src, rel, offsets[dst_name] + int(dst))
                )

    store = TripleStore.from_triples(
        triples, num_entities=num_entities, num_relations=len(relation_labels)
    )
    kg = KnowledgeGraph(
        store,
        entity_labels=entity_labels,
        relation_labels=relation_labels,
        entity_types=np.asarray(entity_types, dtype=np.int64),
        type_names=type_names,
    )

    # ---------------------------------------------------------------- #
    # 6. Optional content features (bag of informative attributes + noise).
    # ---------------------------------------------------------------- #
    item_text = None
    if schema.text_dim > 0:
        proj = rng.normal(0.0, 1.0, (num_factors, schema.text_dim))
        item_text = np.tanh(item_latent @ proj)
        item_text += rng.normal(0.0, 0.3, item_text.shape)

    return Dataset(
        name=f"synthetic-{schema.scenario}",
        interactions=interactions,
        kg=kg,
        item_entities=np.arange(num_items, dtype=np.int64),
        item_text=item_text,
        extra={
            "scenario": schema.scenario,
            "kg_signal": kg_signal,
            "num_factors": num_factors,
            "mean_interactions": mean_interactions,
            "user_latent": user_latent,
            "item_latent": item_latent,
        },
    )
