"""Synthetic world model: interactions driven by KG attributes.

The survey's central premise is that KG side information *carries preference
signal*: users like movies because of their genres, actors, and directors.
The generator here plants exactly that structure so the surveyed methods'
relative behaviour is reproducible:

1. There are ``num_factors`` latent taste factors (think: genres).
2. Every *informative* attribute entity (a genre, an actor, ...) is anchored
   to one primary factor.
3. An item's latent vector is the mean of its informative attributes'
   vectors plus item noise — so the KG links *are* the preference signal.
4. A user samples a sparse mixture over factors and interacts with the
   items scoring highest under a noisy dot product, with a long-tailed
   per-user interaction count.

``kg_signal`` controls how much of the planted structure survives into the
published KG: with probability ``1 - kg_signal`` an item's attribute links
are rewired to random attributes of the same type, decoupling the KG from
preference.  Sweeping it reproduces the survey's "KG helps when informative"
claims (Study E1); ``density``/cold-start knobs reproduce the sparsity
claims (Study E4).

Performance
-----------
The hot loops (item latents, user taste draws, top-k interaction
selection, faithful-link publication) are batched ``Generator`` draws and
grouped ``argpartition`` calls; the default mode consumes the RNG stream
in **exactly** the order the original per-item/per-user loop
implementation did, so seeded datasets are bitwise-identical to the seed
generator (asserted against :mod:`repro.data._reference` by
``tests/test_synthetic_vectorized.py``).  Two draws cannot be reordered
without changing the stream and therefore stay loops in exact mode: the
per-item attribute-link sampling (a ``choice`` interleaved with scalar
fill draws) and the per-link rewiring when ``kg_signal < 1.0`` (a
conditional ``integers`` interleaved with ``random``).  ``fast=True``
batches those too — same distributional structure, different (still
deterministic) stream — which is what lets a 10^5-user / 10^6-interaction
world generate in seconds; see ``docs/synthetic_worlds.md`` for the scale
table.  Score matrices larger than :data:`_SCORE_CHUNK_ELEMENTS` are
processed in fixed-size user chunks (never materialised whole); chunking
draws the per-user degree vector *before* the per-chunk score noise, so
above that threshold even exact mode diverges from the legacy stream —
no legacy artifact exists at those sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigError, DataError
from repro.core.interactions import InteractionMatrix
from repro.core.rng import ensure_rng
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleStore

__all__ = ["AttributeSpec", "ScenarioSchema", "generate_dataset"]

#: Above this many score-matrix elements (users x items) the generator
#: switches to chunked score computation.  2^22 doubles = 32 MiB per chunk.
_SCORE_CHUNK_ELEMENTS = 1 << 22


@dataclass(frozen=True)
class AttributeSpec:
    """One attribute entity type linked to items.

    Attributes
    ----------
    name:
        Entity-type name, e.g. ``"genre"``.
    relation:
        Relation label linking item -> attribute, e.g. ``"has_genre"``.
    count:
        Number of attribute entities of this type.
    per_item:
        ``(low, high)`` inclusive range of links per item.  Draws above
        ``count`` are clamped (an item cannot link more distinct entities
        than exist); a ``low`` above ``count`` is rejected outright.
    informative:
        Whether this attribute type carries taste factors; non-informative
        types are pure KG noise (e.g. ``release_year`` buckets).
    """

    name: str
    relation: str
    count: int
    per_item: tuple[int, int] = (1, 1)
    informative: bool = True


@dataclass(frozen=True)
class ScenarioSchema:
    """Entity/relation schema of one application scenario (Table 4 row)."""

    scenario: str
    item_type: str
    attributes: tuple[AttributeSpec, ...]
    #: Optional relations among attribute types: (src_attr, relation,
    #: dst_attr, links_per_src) adding multi-hop structure, e.g. an actor's
    #: ``born_in`` country.
    attribute_links: tuple[tuple[str, str, str, int], ...] = ()
    #: Width of the item_text content features (0 = none).  News uses this.
    text_dim: int = 0

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ConfigError("a scenario needs at least one attribute type")
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise ConfigError("duplicate attribute type names")
        if not any(a.informative for a in self.attributes):
            raise ConfigError("at least one attribute type must be informative")


def _validate_attribute_specs(schema: ScenarioSchema) -> None:
    """Reject schemas whose link ranges cannot be satisfied.

    ``per_item[0] > count`` used to send the link sampler into an infinite
    ``while len(chosen) < k`` loop (there are no ``k`` distinct entities to
    find); it is now a :class:`DataError` naming the offending field.
    """
    for spec in schema.attributes:
        lo, hi = spec.per_item
        if spec.count < 1:
            raise DataError(
                f"attribute {spec.name!r}: count must be >= 1, got {spec.count}"
            )
        if lo < 0 or lo > hi:
            raise DataError(
                f"attribute {spec.name!r}: per_item must satisfy "
                f"0 <= low <= high, got {spec.per_item}"
            )
        if lo > spec.count:
            raise DataError(
                f"attribute {spec.name!r}: per_item minimum {lo} exceeds "
                f"count={spec.count}; cannot draw that many distinct links"
            )


# --------------------------------------------------------------------- #
# Sampling helpers
# --------------------------------------------------------------------- #
def _draw_degrees(
    rng: np.random.Generator,
    activity: str,
    mean_interactions: float,
    num_users: int,
    num_items: int,
    zipf_exponent: float,
) -> np.ndarray:
    """Per-user interaction counts under the chosen activity law."""
    if activity == "lognormal":
        sigma = 0.6
        degrees = rng.lognormal(
            np.log(mean_interactions) - sigma**2 / 2, sigma, num_users
        )
    else:  # "zipf": heavier tail, one batched draw, rescaled to the target mean
        from scipy.special import zeta

        untruncated_mean = zeta(zipf_exponent - 1) / zeta(zipf_exponent)
        raw = rng.zipf(zipf_exponent, size=num_users).astype(np.float64)
        degrees = raw * (mean_interactions / untruncated_mean)
    return np.clip(np.round(degrees), 2, num_items - 2).astype(np.int64)


def _dedupe_rows(
    rng: np.random.Generator,
    cand: np.ndarray,
    k_row: np.ndarray,
    high: int,
    max_rounds: int = 32,
) -> np.ndarray:
    """Make the first ``k_row[i]`` entries of each row distinct.

    Bounded rejection resampling (the ``corrupt_batch`` idiom): rows whose
    active prefix contains a duplicate get the duplicate positions redrawn
    from ``[0, high)``; the handful of rows still colliding after
    ``max_rounds`` (possible only when ``k`` is close to ``high``) fall
    back to a deterministic fill with the smallest unused values.
    """
    n, m = cand.shape
    col = np.arange(m)
    active = col[None, :] < k_row[:, None]
    # Inactive positions get per-column sentinels >= high so they can never
    # collide with anything.
    work = np.where(active, cand, high + col[None, :])
    for _ in range(max_rounds):
        srt = np.sort(work, axis=1)
        bad = np.flatnonzero((srt[:, 1:] == srt[:, :-1]).any(axis=1))
        if bad.size == 0:
            return np.where(active, work, 0)
        sub = work[bad]
        # A position is a duplicate if an earlier position holds its value.
        dup = ((sub[:, :, None] == sub[:, None, :])
               & (col[None, None, :] < col[None, :, None])).any(axis=2)
        sub[dup] = rng.integers(0, high, int(dup.sum()))
        work[bad] = sub
    srt = np.sort(work, axis=1)
    for r in np.flatnonzero((srt[:, 1:] == srt[:, :-1]).any(axis=1)):
        taken = set()
        free = iter(range(high))
        row = work[r]
        for j in range(int(k_row[r])):
            if int(row[j]) in taken:
                for v in free:
                    if v not in taken:
                        row[j] = v
                        break
            taken.add(int(row[j]))
    return np.where(active, work, 0)


def _sample_links_exact(
    rng: np.random.Generator,
    schema: ScenarioSchema,
    num_items: int,
    item_primary: np.ndarray,
    attr_factors: dict[str, np.ndarray],
    num_factors: int,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Per-item attribute links, consuming the RNG in legacy loop order.

    The draw sequence per item — one scalar ``integers`` for ``k``, one
    ``choice`` from the primary-factor pool, then scalar rejection fills —
    interleaves variable-length calls, so it cannot be batched without
    changing the stream.  Returns ``{name: (lengths, flat_links)}`` where
    ``flat_links`` concatenates each item's sorted links in item order.
    """
    links: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for spec in schema.attributes:
        same_factor = {
            f: np.flatnonzero(attr_factors[spec.name] == f)
            for f in range(num_factors)
        }
        lo, hi = spec.per_item
        lengths = np.empty(num_items, dtype=np.int64)
        parts: list[np.ndarray] = []
        for item in range(num_items):
            # Clamp: an attribute type can never supply more distinct links
            # than it has entities (the unclamped draw used to loop forever).
            k = min(int(rng.integers(lo, hi + 1)), spec.count)
            pool = same_factor.get(int(item_primary[item]), np.empty(0, np.int64))
            if spec.informative and pool.size:
                # 80% of links come from the item's primary factor.
                n_primary = max(1, int(round(0.8 * k)))
                chosen = list(
                    rng.choice(pool, size=min(n_primary, pool.size), replace=False)
                )
                while len(chosen) < k:
                    cand = int(rng.integers(0, spec.count))
                    if cand not in chosen:
                        chosen.append(cand)
                sel = np.asarray(chosen[:k], dtype=np.int64)
            else:
                sel = rng.choice(spec.count, size=min(k, spec.count), replace=False)
            sel = np.sort(sel)
            lengths[item] = sel.size
            parts.append(sel)
        flat = (np.concatenate(parts) if parts else np.empty(0, np.int64))
        links[spec.name] = (lengths, flat.astype(np.int64, copy=False))
    return links


def _sample_links_fast(
    rng: np.random.Generator,
    schema: ScenarioSchema,
    num_items: int,
    item_primary: np.ndarray,
    attr_factors: dict[str, np.ndarray],
    num_factors: int,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Batched attribute-link sampling (``fast=True`` stream).

    Preserves the structure — links-per-item drawn from ``per_item``
    (clamped to ``count``), ~80% of an informative type's links from the
    item's primary factor, all links distinct per (item, type) — but draws
    whole matrices at once instead of walking items.
    """
    links: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for spec in schema.attributes:
        lo, hi = spec.per_item
        k_max = min(hi, spec.count)
        k = np.minimum(rng.integers(lo, hi + 1, size=num_items), spec.count)
        cand = rng.integers(0, spec.count, size=(num_items, max(k_max, 1)))
        if spec.informative:
            pools = [
                np.flatnonzero(attr_factors[spec.name] == f)
                for f in range(num_factors)
            ]
            pool_sizes = np.asarray([p.size for p in pools], dtype=np.int64)
            max_pool = int(pool_sizes.max())
            if max_pool > 0:
                pool_matrix = np.zeros((num_factors, max_pool), dtype=np.int64)
                for f, p in enumerate(pools):
                    pool_matrix[f, : p.size] = p
                psz = pool_sizes[item_primary]
                n_primary = np.minimum(
                    np.minimum(np.maximum(1, np.round(0.8 * k).astype(np.int64)), k),
                    psz,
                )
                idx = rng.integers(
                    0, np.maximum(psz, 1)[:, None], size=cand.shape
                )
                primary_cand = pool_matrix[item_primary[:, None], idx]
                col = np.arange(cand.shape[1])[None, :]
                cand = np.where(col < n_primary[:, None], primary_cand, cand)
        cand = _dedupe_rows(rng, cand, k, spec.count)
        col = np.arange(cand.shape[1])[None, :]
        active = col < k[:, None]
        # Sort active entries first per row (inactive become >= count), then
        # flatten row-major: exactly each item's sorted links, concatenated.
        srt = np.sort(np.where(active, cand, spec.count + col), axis=1)
        links[spec.name] = (k.astype(np.int64), srt[active].astype(np.int64))
    return links


# --------------------------------------------------------------------- #
# Generator
# --------------------------------------------------------------------- #
def generate_dataset(
    schema: ScenarioSchema,
    num_users: int = 120,
    num_items: int = 200,
    num_factors: int = 6,
    mean_interactions: float = 18.0,
    kg_signal: float = 1.0,
    item_noise: float = 0.2,
    score_noise: float = 0.25,
    user_latent: np.ndarray | None = None,
    explicit_ratings: bool = False,
    seed: int | np.random.Generator | None = None,
    activity: str = "lognormal",
    zipf_exponent: float = 2.5,
    fast: bool = False,
) -> Dataset:
    """Generate a :class:`Dataset` with an aligned item knowledge graph.

    Parameters
    ----------
    schema:
        Scenario schema (entity/relation types).
    num_users, num_items:
        Sizes of the user and item sets.
    num_factors:
        Number of latent taste factors.
    mean_interactions:
        Mean per-user interaction count; the main sparsity knob.
    kg_signal:
        In ``[0, 1]``; fraction of item-attribute links kept faithful to the
        preference-generating attributes (the rest are rewired randomly).
    item_noise:
        Std of item-specific latent noise relative to attribute signal.
    score_noise:
        Std of per-(user, item) score noise; raises interaction randomness.
    user_latent:
        Optional pre-drawn ``(num_users, num_factors)`` taste matrix.  Pass
        the same matrix to two scenarios to create *cross-domain* datasets
        with shared users (Section 6's cross-domain direction).
    explicit_ratings:
        When true, interactions carry 1-5 star ratings derived from the
        per-user quintiles of the true preference score (the explicit
        feedback channel SemRec-style methods weight by).
    seed:
        Reproducibility seed.
    activity:
        Per-user activity law: ``"lognormal"`` (legacy default) or
        ``"zipf"`` — one batched Zipf draw rescaled to ``mean_interactions``
        for a genuinely power-law long tail (``zipf_exponent`` must be
        ``> 2`` so the mean exists).
    fast:
        ``False`` (default) consumes the RNG stream in the legacy loop
        order — seeded output is bitwise-identical to the original
        generator whenever ``num_users * num_items`` fits one score chunk.
        ``True`` batches *every* draw (attribute links, rewiring): same
        world structure and still deterministic per seed, but a different
        stream — use it for large worlds, where it is orders of magnitude
        faster.  The two modes are not cross-comparable draw-for-draw.
    """
    if not 0.0 <= kg_signal <= 1.0:
        raise ConfigError("kg_signal must be in [0, 1]")
    if num_users < 2 or num_items < 4:
        raise ConfigError("need at least 2 users and 4 items")
    if activity not in ("lognormal", "zipf"):
        raise ConfigError(f"unknown activity law: {activity!r}")
    if activity == "zipf" and zipf_exponent <= 2.0:
        raise ConfigError("zipf_exponent must be > 2 for a finite mean")
    _validate_attribute_specs(schema)
    rng = ensure_rng(seed)

    # ---------------------------------------------------------------- #
    # 1. Attribute entities with factor anchors.
    # ---------------------------------------------------------------- #
    factor_basis = np.eye(num_factors)
    attr_latents: dict[str, np.ndarray] = {}
    attr_factors: dict[str, np.ndarray] = {}
    for spec in schema.attributes:
        primary = rng.integers(0, num_factors, size=spec.count)
        latents = factor_basis[primary] + rng.normal(0.0, 0.15, (spec.count, num_factors))
        attr_latents[spec.name] = latents
        attr_factors[spec.name] = primary

    # ---------------------------------------------------------------- #
    # 2. True item-attribute assignments (the preference-generating ones).
    # ---------------------------------------------------------------- #
    # Bias assignments so an item's informative attributes agree on a factor,
    # keeping item latents peaked instead of washing out to the mean.
    item_primary = rng.integers(0, num_factors, size=num_items)
    sample = _sample_links_fast if fast else _sample_links_exact
    true_links = sample(
        rng, schema, num_items, item_primary, attr_factors, num_factors
    )

    # ---------------------------------------------------------------- #
    # 3. Item latents from informative attributes.
    # ---------------------------------------------------------------- #
    # One bincount per factor reproduces the legacy per-item
    # concatenate-and-mean bitwise: bincount accumulates strictly in input
    # order, and the spec-major / item-major / sorted-link layout of the
    # flat link arrays visits each item's rows in exactly the order the
    # loop's np.concatenate did.
    idx_parts = [
        np.repeat(np.arange(num_items), true_links[s.name][0])
        for s in schema.attributes
        if s.informative
    ]
    row_parts = [
        attr_latents[s.name][true_links[s.name][1]]
        for s in schema.attributes
        if s.informative
    ]
    link_items = np.concatenate(idx_parts)
    link_rows = np.concatenate(row_parts)
    counts = np.bincount(link_items, minlength=num_items)
    if (counts == 0).any():
        missing = int(np.flatnonzero(counts == 0)[0])
        raise DataError(
            f"item {missing} drew no informative attribute links; raise the "
            "per_item minimum of an informative attribute type"
        )
    sums = np.empty((num_items, num_factors))
    for f in range(num_factors):
        sums[:, f] = np.bincount(
            link_items, weights=link_rows[:, f], minlength=num_items
        )
    item_latent = sums / counts[:, None]
    item_latent += rng.normal(0.0, item_noise, (num_items, num_factors))

    # ---------------------------------------------------------------- #
    # 4. User latents and interactions.
    # ---------------------------------------------------------------- #
    if user_latent is None:
        user_latent = rng.dirichlet(np.full(num_factors, 0.4), size=num_users)
    else:
        user_latent = np.asarray(user_latent, dtype=np.float64)
        if user_latent.shape != (num_users, num_factors):
            raise ConfigError("user_latent must be (num_users, num_factors)")

    chunked = num_users * num_items > _SCORE_CHUNK_ELEMENTS
    scores: np.ndarray | None = None
    if not chunked:
        # Legacy draw order: score noise first, then the degree vector.
        scores = user_latent @ item_latent.T
        scores += rng.normal(0.0, score_noise, scores.shape)
        degrees = _draw_degrees(
            rng, activity, mean_interactions, num_users, num_items, zipf_exponent
        )
    else:
        # Chunked: degrees must exist before per-chunk noise is drawn, so
        # the stream diverges from legacy here (documented in the module
        # docstring; no legacy artifact exists above the chunk threshold).
        degrees = _draw_degrees(
            rng, activity, mean_interactions, num_users, num_items, zipf_exponent
        )

    offsets = np.zeros(num_users + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    total = int(offsets[-1])
    users_arr = np.repeat(np.arange(num_users, dtype=np.int64), degrees)
    items_arr = np.empty(total, dtype=np.int64)
    ratings_arr = np.empty(total, dtype=np.float64) if explicit_ratings else None

    chunk_rows = (
        num_users if not chunked else max(1, _SCORE_CHUNK_ELEMENTS // num_items)
    )
    for a in range(0, num_users, chunk_rows):
        b = min(a + chunk_rows, num_users)
        if scores is not None:
            sc = scores[a:b]
        else:
            sc = user_latent[a:b] @ item_latent.T
            sc += rng.normal(0.0, score_noise, sc.shape)
        deg = degrees[a:b]
        neg = -sc
        # Group users by degree: one argpartition per distinct k keeps every
        # row's selection bit-equal to the legacy per-user call.
        for k in np.unique(deg):
            rows = np.flatnonzero(deg == k)
            k = int(k)
            top = np.argpartition(neg[rows], k - 1, axis=1)[:, :k]
            pos = offsets[a + rows][:, None] + np.arange(k)
            items_arr[pos] = top
            if explicit_ratings:
                # 1-5 stars from the user's own preference quintiles.
                chosen = np.take_along_axis(sc[rows], top, axis=1)
                order = np.argsort(np.argsort(chosen, axis=1), axis=1)
                stars = 1.0 + np.floor(5.0 * order / k)
                ratings_arr[pos] = np.clip(stars, 1.0, 5.0)

    interactions = InteractionMatrix(
        users_arr, items_arr, num_users, num_items, ratings=ratings_arr
    )

    # ---------------------------------------------------------------- #
    # 5. Published KG: optionally degrade link fidelity (kg_signal).
    # ---------------------------------------------------------------- #
    entity_labels = [f"{schema.item_type}:{i}" for i in range(num_items)]
    entity_types = [0] * num_items
    type_names = [schema.item_type] + [s.name for s in schema.attributes]
    offsets_by_type: dict[str, int] = {}
    cursor = num_items
    for type_id, spec in enumerate(schema.attributes, start=1):
        offsets_by_type[spec.name] = cursor
        entity_labels.extend(f"{spec.name}:{a}" for a in range(spec.count))
        entity_types.extend([type_id] * spec.count)
        cursor += spec.count
    num_entities = cursor

    relation_labels = [s.relation for s in schema.attributes]
    relation_ids = {s.relation: i for i, s in enumerate(schema.attributes)}
    for __, rel, __, __ in schema.attribute_links:
        if rel not in relation_ids:
            relation_ids[rel] = len(relation_labels)
            relation_labels.append(rel)

    head_parts: list[np.ndarray] = []
    rel_parts: list[np.ndarray] = []
    tail_parts: list[np.ndarray] = []

    def _emit(heads: np.ndarray, rel: int, tails: np.ndarray) -> None:
        head_parts.append(heads.astype(np.int64, copy=False))
        rel_parts.append(np.full(heads.size, rel, dtype=np.int64))
        tail_parts.append(tails.astype(np.int64, copy=False))

    for spec in schema.attributes:
        rel = relation_ids[spec.relation]
        lengths, flat = true_links[spec.name]
        base = offsets_by_type[spec.name]
        if fast or kg_signal == 1.0:
            # Batched fidelity draw.  At kg_signal == 1.0 this is the exact
            # legacy stream: the per-link rng.random() calls happen (as one
            # block) and the rewire branch never fires, so no integers draw
            # interleaves.  Below 1.0 the batched mask+integers order only
            # runs in fast mode.
            u = rng.random(flat.size)
            published = flat.copy()
            if kg_signal < 1.0:
                mask = u > kg_signal
                published[mask] = rng.integers(0, spec.count, int(mask.sum()))
            _emit(np.repeat(np.arange(num_items), lengths), rel, base + published)
        else:
            # Exact mode with rewiring: the conditional integers draw
            # interleaves with the random draw per link, so the stream
            # forces a loop.
            item_of_link = np.repeat(np.arange(num_items), lengths)
            published_list: list[int] = []
            for attr in flat:
                published = int(attr)
                if rng.random() > kg_signal:
                    published = int(rng.integers(0, spec.count))
                published_list.append(published)
            _emit(
                item_of_link, rel,
                base + np.asarray(published_list, dtype=np.int64),
            )

    for src_name, rel_label, dst_name, per_src in schema.attribute_links:
        rel = relation_ids[rel_label]
        src_spec = next(s for s in schema.attributes if s.name == src_name)
        dst_spec = next(s for s in schema.attributes if s.name == dst_name)
        k = min(per_src, dst_spec.count)
        if fast:
            cand = rng.integers(0, dst_spec.count, size=(src_spec.count, max(k, 1)))
            cand = _dedupe_rows(
                rng, cand, np.full(src_spec.count, k, dtype=np.int64),
                dst_spec.count,
            )[:, :k]
            srcs = np.repeat(np.arange(src_spec.count), k)
            _emit(
                offsets_by_type[src_name] + srcs, rel,
                offsets_by_type[dst_name] + cand.ravel(),
            )
        else:
            for src in range(src_spec.count):
                targets = rng.choice(dst_spec.count, size=k, replace=False)
                _emit(
                    offsets_by_type[src_name] + np.full(k, src, dtype=np.int64),
                    rel,
                    offsets_by_type[dst_name] + targets,
                )

    store = TripleStore(
        np.concatenate(head_parts) if head_parts else np.empty(0, np.int64),
        np.concatenate(rel_parts) if rel_parts else np.empty(0, np.int64),
        np.concatenate(tail_parts) if tail_parts else np.empty(0, np.int64),
        num_entities=num_entities,
        num_relations=len(relation_labels),
    )
    kg = KnowledgeGraph(
        store,
        entity_labels=entity_labels,
        relation_labels=relation_labels,
        entity_types=np.asarray(entity_types, dtype=np.int64),
        type_names=type_names,
    )

    # ---------------------------------------------------------------- #
    # 6. Optional content features (bag of informative attributes + noise).
    # ---------------------------------------------------------------- #
    item_text = None
    if schema.text_dim > 0:
        proj = rng.normal(0.0, 1.0, (num_factors, schema.text_dim))
        item_text = np.tanh(item_latent @ proj)
        item_text += rng.normal(0.0, 0.3, item_text.shape)

    return Dataset(
        name=f"synthetic-{schema.scenario}",
        interactions=interactions,
        kg=kg,
        item_entities=np.arange(num_items, dtype=np.int64),
        item_text=item_text,
        extra={
            "scenario": schema.scenario,
            "kg_signal": kg_signal,
            "num_factors": num_factors,
            "mean_interactions": mean_interactions,
            "user_latent": user_latent,
            "item_latent": item_latent,
        },
    )
