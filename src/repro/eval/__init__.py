"""Evaluation: metrics, protocols, cold-start studies, explanations,
significance testing."""

from .coldstart import cold_start_study, sparsity_sweep
from .evaluator import EvalResult, Evaluator
from .explain import (
    explanation_fidelity,
    grounded_in_history,
    is_valid_explanation,
)
from .ranking import sampled_ranking_evaluation
from .metrics import (
    auc,
    average_precision,
    hit_ratio_at_k,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)
from .significance import bootstrap_ci, paired_permutation_test

__all__ = [
    "Evaluator",
    "EvalResult",
    "auc",
    "precision_at_k",
    "recall_at_k",
    "hit_ratio_at_k",
    "ndcg_at_k",
    "average_precision",
    "reciprocal_rank",
    "sampled_ranking_evaluation",
    "sparsity_sweep",
    "cold_start_study",
    "is_valid_explanation",
    "grounded_in_history",
    "explanation_fidelity",
    "bootstrap_ci",
    "paired_permutation_test",
]
