"""Sparsity and cold-start studies (Study E4).

The survey motivates KG side information as a remedy for CF's data sparsity
and cold-start problems.  These helpers run that experiment:

* :func:`sparsity_sweep` — regenerate a scenario at decreasing interaction
  density and track each model's metric, exposing where the KG-vs-CF gap
  widens.
* :func:`cold_start_study` — evaluate models on items with zero training
  interactions, where pure CF can only guess.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.dataset import Dataset
from repro.core.recommender import Recommender
from repro.core.splitter import cold_start_item_split, random_split

from .evaluator import Evaluator
from .metrics import auc

__all__ = ["sparsity_sweep", "cold_start_study"]


def sparsity_sweep(
    make_dataset: Callable[..., Dataset],
    model_factories: dict[str, Callable[[], Recommender]],
    mean_interactions: tuple[float, ...] = (30.0, 15.0, 8.0, 4.0),
    metric: str = "AUC",
    seed: int = 0,
    max_users: int | None = 60,
    **dataset_kwargs,
) -> list[dict[str, float | str]]:
    """Evaluate models across interaction-density levels.

    Returns one row per (density, model): ``{"mean_interactions", "model",
    "metric", "value"}``.  Model factories are re-invoked per level so every
    cell trains from scratch.
    """
    rows: list[dict[str, float | str]] = []
    for level in mean_interactions:
        dataset = make_dataset(
            seed=seed, mean_interactions=level, **dataset_kwargs
        )
        train, test = random_split(dataset, seed=seed)
        evaluator = Evaluator(train, test, max_users=max_users, seed=seed)
        for name, factory in model_factories.items():
            model = factory().fit(train)
            result = evaluator.evaluate(model, name=name)
            rows.append(
                {
                    "mean_interactions": level,
                    "model": name,
                    "metric": metric,
                    "value": result[metric],
                }
            )
    return rows


def cold_start_study(
    dataset: Dataset,
    model_factories: dict[str, Callable[[], Recommender]],
    cold_fraction: float = 0.2,
    num_negatives: int = 30,
    seed: int = 0,
) -> list[dict[str, float | str]]:
    """AUC among cold items (the standard item cold-start protocol).

    A fraction of items is hidden from training entirely.  For each user
    with held-out cold positives, those positives are ranked against *other
    cold items* the user never touched.  Every candidate thus has zero
    training feedback: a pure-CF model is at chance (~0.5) by construction,
    while a KG-aware model can still separate them through shared
    attributes — the survey's cold-start argument, isolated.
    """
    train, test, cold_items = cold_start_item_split(
        dataset, cold_fraction=cold_fraction, seed=seed
    )
    rng = np.random.default_rng(seed)
    cold_set = set(int(v) for v in cold_items)

    rows: list[dict[str, float | str]] = []
    for name, factory in model_factories.items():
        model = factory().fit(train)
        user_aucs: list[float] = []
        for user in range(dataset.num_users):
            positives = [
                int(v)
                for v in test.interactions.items_of(user)
                if int(v) in cold_set
            ]
            if not positives:
                continue
            pool = [v for v in cold_set if v not in positives]
            if not pool:
                continue
            take = min(num_negatives, len(pool))
            negs = rng.choice(np.asarray(pool), size=take, replace=False)
            scores = model.score_all(user)
            user_aucs.append(auc(scores[positives], scores[negs]))
        rows.append(
            {
                "model": name,
                "metric": "cold-item AUC",
                "value": float(np.mean(user_aucs)) if user_aucs else 0.5,
                "num_users": float(len(user_aucs)),
                "num_cold_items": float(len(cold_set)),
            }
        )
    return rows
