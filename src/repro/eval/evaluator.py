"""End-to-end evaluation protocol.

For every user with held-out items, :class:`Evaluator` ranks the full item
catalog excluding training interactions (the full-sort protocol), computes
the top-K metrics of :mod:`repro.eval.metrics`, and computes AUC on the
held-out positives against sampled unseen negatives.  Results are averaged
over users; :meth:`Evaluator.compare` runs a panel of models on identical
candidate sets for fair side-by-side tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import EvaluationError
from repro.core.recommender import Recommender
from repro.core.rng import ensure_rng

from . import metrics

__all__ = ["EvalResult", "Evaluator"]


@dataclass(frozen=True)
class EvalResult:
    """Averaged metrics for one model on one split."""

    model: str
    values: dict[str, float]
    num_users: int

    def __getitem__(self, key: str) -> float:
        return self.values[key]

    def row(self, columns: list[str]) -> list[float]:
        return [self.values[c] for c in columns]


class Evaluator:
    """Evaluates recommenders on a train/test split.

    Parameters
    ----------
    train, test:
        Datasets sharing shape and KG; ``test.interactions`` holds the
        held-out feedback.
    k_values:
        Cutoffs for top-K metrics.
    num_negatives:
        Negatives sampled per user for AUC.
    max_users:
        Optional cap on evaluated users (speeds up large sweeps); users are
        subsampled deterministically from ``seed``.
    assume_fresh:
        Promise that ``model.score_all`` returns a *fresh* array per call
        (true for every in-repo recommender).  The evaluator then masks
        seen items in that array directly instead of taking a defensive
        per-user copy — at catalog scale the copy is a measurable slice of
        evaluation time.  Leave ``False`` for models that might hand back
        a view of an internal buffer.
    """

    def __init__(
        self,
        train: Dataset,
        test: Dataset,
        k_values: tuple[int, ...] = (5, 10),
        num_negatives: int = 50,
        max_users: int | None = None,
        seed: int | np.random.Generator | None = 0,
        assume_fresh: bool = False,
    ) -> None:
        if train.interactions.shape != test.interactions.shape:
            raise EvaluationError("train/test must share the matrix shape")
        self.train = train
        self.test = test
        self.k_values = tuple(k_values)
        self.num_negatives = num_negatives
        self.assume_fresh = bool(assume_fresh)
        rng = ensure_rng(seed)

        eligible = [
            u
            for u in range(test.num_users)
            if test.interactions.items_of(u).size > 0
        ]
        if not eligible:
            raise EvaluationError("no user has held-out interactions")
        if max_users is not None and len(eligible) > max_users:
            eligible = list(
                rng.choice(np.asarray(eligible), size=max_users, replace=False)
            )
        self.users = [int(u) for u in eligible]
        # Pre-sample AUC negatives per user so every model sees the same set.
        self._negatives: dict[int, np.ndarray] = {}
        num_items = train.num_items
        for u in self.users:
            seen = set(train.interactions.items_of(u).tolist())
            seen |= set(test.interactions.items_of(u).tolist())
            pool = np.asarray(
                [v for v in range(num_items) if v not in seen], dtype=np.int64
            )
            if pool.size == 0:
                continue
            take = min(self.num_negatives, pool.size)
            self._negatives[u] = rng.choice(pool, size=take, replace=False)

    # ------------------------------------------------------------------ #
    def evaluate(self, model: Recommender, name: str | None = None) -> EvalResult:
        """Average metrics for a fitted model over all evaluated users."""
        if not model.is_fitted:
            raise EvaluationError("model must be fitted before evaluation")
        per_metric: dict[str, list[float]] = {}

        def push(key: str, value: float) -> None:
            per_metric.setdefault(key, []).append(value)

        max_k = max(self.k_values)
        for user in self.users:
            relevant = set(self.test.interactions.items_of(user).tolist())
            scores = np.asarray(model.score_all(user), dtype=np.float64)
            # AUC reads come before the seen-item masking so the fresh-array
            # path can mask in place without a per-user defensive copy.
            negatives = self._negatives.get(user)
            auc_value = (
                metrics.auc(scores[list(relevant)], scores[negatives])
                if negatives is not None and negatives.size
                else None
            )
            ranked_scores = scores if self.assume_fresh else scores.copy()
            ranked_scores[self.train.interactions.items_of(user)] = -np.inf
            order = np.argsort(-ranked_scores, kind="stable")[: max_k * 4]

            for k in self.k_values:
                push(f"Precision@{k}", metrics.precision_at_k(order, relevant, k))
                push(f"Recall@{k}", metrics.recall_at_k(order, relevant, k))
                push(f"NDCG@{k}", metrics.ndcg_at_k(order, relevant, k))
                push(f"HR@{k}", metrics.hit_ratio_at_k(order, relevant, k))
            push("MRR", metrics.reciprocal_rank(order, relevant))

            if auc_value is not None:
                push("AUC", auc_value)

        values = {key: float(np.mean(vals)) for key, vals in per_metric.items()}
        return EvalResult(
            model=name or type(model).__name__,
            values=values,
            num_users=len(self.users),
        )

    def per_user_metric(self, model: Recommender, metric: str = "AUC") -> np.ndarray:
        """Per-user values of one metric (for significance testing)."""
        rows: list[float] = []
        max_k = max(self.k_values)
        for user in self.users:
            relevant = set(self.test.interactions.items_of(user).tolist())
            scores = np.asarray(model.score_all(user), dtype=np.float64)
            if metric == "AUC":
                negatives = self._negatives.get(user)
                if negatives is None or not negatives.size:
                    continue
                rows.append(metrics.auc(scores[list(relevant)], scores[negatives]))
                continue
            ranked = scores if self.assume_fresh else scores.copy()
            ranked[self.train.interactions.items_of(user)] = -np.inf
            order = np.argsort(-ranked, kind="stable")[: max_k * 4]
            name, __, k_str = metric.partition("@")
            k = int(k_str) if k_str else max_k
            fn = {
                "Precision": metrics.precision_at_k,
                "Recall": metrics.recall_at_k,
                "NDCG": metrics.ndcg_at_k,
                "HR": metrics.hit_ratio_at_k,
            }[name]
            rows.append(fn(order, relevant, k))
        return np.asarray(rows, dtype=np.float64)

    def compare(
        self, models: dict[str, Recommender], fit: bool = True
    ) -> list[EvalResult]:
        """Fit (optionally) and evaluate a panel of models on this split."""
        results = []
        for name, model in models.items():
            if fit and not model.is_fitted:
                model.fit(self.train)
            results.append(self.evaluate(model, name=name))
        return results
