"""Explanation quality measurement (Study E7).

The survey argues path-based and unified methods make the reasoning process
available.  This module checks that claim mechanically:

* :func:`is_valid_explanation` — the explanation's path must exist edge by
  edge in the KG (undirected traversal) and terminate at the recommended
  item's entity.
* :func:`explanation_fidelity` — over a model's top-K recommendations, the
  fraction for which the model produces at least one valid explanation.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import EvaluationError
from repro.core.recommender import Explanation, Recommender

__all__ = ["is_valid_explanation", "explanation_fidelity", "grounded_in_history"]


def is_valid_explanation(explanation: Explanation, dataset: Dataset) -> bool:
    """Whether the explanation's path exists in the KG and ends at the item.

    Each hop must be a fact (in either direction); the final entity must be
    the entity aligned with the explained item.  Pathless (detail-only)
    explanations are not considered valid paths.
    """
    if dataset.kg is None or dataset.item_entities is None:
        raise EvaluationError("dataset has no KG to validate explanations against")
    if not explanation.entities:
        return False
    kg = dataset.kg
    for head, relation, tail in zip(
        explanation.entities[:-1], explanation.relations, explanation.entities[1:]
    ):
        forward = kg.has_fact(head, relation, tail)
        backward = kg.has_fact(tail, relation, head)
        if not (forward or backward):
            return False
    target_entity = int(dataset.item_entities[explanation.item_id])
    return int(explanation.entities[-1]) == target_entity


def grounded_in_history(
    explanation: Explanation, dataset: Dataset
) -> bool:
    """Whether the path starts from the user or one of their history items.

    Accepts a start entity that is either the user's own entity (user-item
    graphs) or the entity of an item the user interacted with in training.
    """
    if not explanation.entities:
        return False
    start = int(explanation.entities[0])
    if dataset.user_entities is not None:
        if start == int(dataset.user_entities[explanation.user_id]):
            return True
    if dataset.item_entities is not None:
        history = dataset.interactions.items_of(explanation.user_id)
        history_entities = set(
            int(dataset.item_entities[v]) for v in history
        )
        return start in history_entities
    return False


def explanation_fidelity(
    model: Recommender,
    dataset: Dataset | None = None,
    users: list[int] | None = None,
    k: int = 5,
    require_grounding: bool = True,
) -> dict[str, float]:
    """Explanation coverage/validity over top-K recommendations.

    Returns
    -------
    dict with:
        ``coverage`` — fraction of (user, recommended item) pairs with >= 1
        explanation of any kind;
        ``validity`` — fraction with >= 1 *valid* path explanation;
        ``mean_path_length`` — average length of valid explanation paths.
    """
    if dataset is None:
        dataset = model.explanation_dataset
    if users is None:
        users = list(range(min(dataset.num_users, 30)))
    pairs = 0
    covered = 0
    valid = 0
    lengths: list[int] = []
    for user in users:
        for item in model.recommend(user, k=k):
            pairs += 1
            explanations = model.explain(user, int(item))
            if explanations:
                covered += 1
            ok = False
            for expl in explanations:
                if is_valid_explanation(expl, dataset) and (
                    not require_grounding or grounded_in_history(expl, dataset)
                ):
                    ok = True
                    lengths.append(len(expl.relations))
            if ok:
                valid += 1
    if pairs == 0:
        raise EvaluationError("no (user, item) pairs to explain")
    return {
        "coverage": covered / pairs,
        "validity": valid / pairs,
        "mean_path_length": float(np.mean(lengths)) if lengths else 0.0,
        "pairs": float(pairs),
    }
