"""Ranking and classification metrics used across the surveyed papers.

All top-K metrics take a *ranked list* of recommended item ids and the set
of relevant (held-out) items; AUC takes score arrays.  Per-user values are
averaged by :class:`repro.eval.evaluator.Evaluator`.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import EvaluationError

__all__ = [
    "auc",
    "precision_at_k",
    "recall_at_k",
    "hit_ratio_at_k",
    "ndcg_at_k",
    "average_precision",
    "reciprocal_rank",
]


def auc(positive_scores: np.ndarray, negative_scores: np.ndarray) -> float:
    """Area under the ROC curve from score samples.

    Computed exactly as the probability a random positive outscores a random
    negative, with ties counted as half.
    """
    pos = np.asarray(positive_scores, dtype=np.float64).ravel()
    neg = np.asarray(negative_scores, dtype=np.float64).ravel()
    if pos.size == 0 or neg.size == 0:
        raise EvaluationError("AUC needs at least one positive and one negative")
    # Rank-sum formulation (Mann-Whitney U), robust to ties.
    combined = np.concatenate([pos, neg])
    order = np.argsort(combined, kind="stable")
    ranks = np.empty(combined.size, dtype=np.float64)
    ranks[order] = np.arange(1, combined.size + 1)
    # Average ranks over ties.
    sorted_scores = combined[order]
    i = 0
    while i < combined.size:
        j = i
        while j + 1 < combined.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + 1 + j + 1) / 2.0
        i = j + 1
    u = ranks[: pos.size].sum() - pos.size * (pos.size + 1) / 2.0
    return float(u / (pos.size * neg.size))


def _validate(ranked: np.ndarray, k: int) -> np.ndarray:
    ranked = np.asarray(ranked, dtype=np.int64).ravel()
    if k < 1:
        raise EvaluationError("k must be >= 1")
    return ranked[:k]


def precision_at_k(ranked_items: np.ndarray, relevant: set[int], k: int) -> float:
    """Fraction of the top-k that is relevant."""
    top = _validate(ranked_items, k)
    if top.size == 0:
        return 0.0
    hits = sum(1 for v in top if int(v) in relevant)
    return hits / k


def recall_at_k(ranked_items: np.ndarray, relevant: set[int], k: int) -> float:
    """Fraction of relevant items captured in the top-k."""
    if not relevant:
        raise EvaluationError("recall undefined with no relevant items")
    top = _validate(ranked_items, k)
    hits = sum(1 for v in top if int(v) in relevant)
    return hits / len(relevant)


def hit_ratio_at_k(ranked_items: np.ndarray, relevant: set[int], k: int) -> float:
    """1.0 iff any relevant item appears in the top-k."""
    top = _validate(ranked_items, k)
    return 1.0 if any(int(v) in relevant for v in top) else 0.0


def ndcg_at_k(ranked_items: np.ndarray, relevant: set[int], k: int) -> float:
    """Normalized discounted cumulative gain with binary relevance."""
    if not relevant:
        raise EvaluationError("nDCG undefined with no relevant items")
    top = _validate(ranked_items, k)
    gains = np.fromiter(
        (1.0 if int(v) in relevant else 0.0 for v in top), dtype=np.float64
    )
    discounts = 1.0 / np.log2(np.arange(2, top.size + 2))
    dcg = float((gains * discounts).sum())
    ideal_hits = min(len(relevant), k)
    ideal = float((1.0 / np.log2(np.arange(2, ideal_hits + 2))).sum())
    return dcg / ideal if ideal > 0 else 0.0


def average_precision(ranked_items: np.ndarray, relevant: set[int], k: int) -> float:
    """AP@k: mean of precision values at each relevant hit position."""
    if not relevant:
        raise EvaluationError("AP undefined with no relevant items")
    top = _validate(ranked_items, k)
    hits = 0
    total = 0.0
    for pos, item in enumerate(top, start=1):
        if int(item) in relevant:
            hits += 1
            total += hits / pos
    return total / min(len(relevant), k)


def reciprocal_rank(ranked_items: np.ndarray, relevant: set[int]) -> float:
    """1 / rank of the first relevant item (0 when none appears)."""
    ranked = np.asarray(ranked_items, dtype=np.int64).ravel()
    for pos, item in enumerate(ranked, start=1):
        if int(item) in relevant:
            return 1.0 / pos
    return 0.0
