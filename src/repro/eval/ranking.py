"""Sampled-candidate ranking protocol (the NCF/KSR evaluation style).

Several surveyed papers (KSR and the sequential line) evaluate with
leave-one-out plus sampled negatives: the held-out item is ranked against
``num_negatives`` unseen items, and HR@K/NDCG@K/MRR are averaged over
users.  :func:`sampled_ranking_evaluation` implements that protocol on top
of any fitted :class:`~repro.core.recommender.Recommender`.

The inner loop is array-native: per-user seen items become a boolean mask,
negatives for all of a user's held-out items are drawn with one random-key
``argpartition`` (uniform without replacement per row), and ranks are
computed by counting negatives that outscore the positive — no per-item
Python loops or candidate list materialization (``docs/performance.md``).
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import EvaluationError
from repro.core.recommender import Recommender
from repro.core.rng import ensure_rng

__all__ = ["sampled_ranking_evaluation"]


def sampled_ranking_evaluation(
    model: Recommender,
    train: Dataset,
    test: Dataset,
    num_negatives: int = 99,
    k_values: tuple[int, ...] = (5, 10),
    max_users: int | None = None,
    seed: int | np.random.Generator | None = 0,
) -> dict[str, float]:
    """Leave-one-out style sampled ranking metrics.

    For every (user, held-out item) pair, the item competes against
    ``num_negatives`` items the user never interacted with (train or test).
    Ties between the positive and a negative favor the positive (matching
    the stable-sort convention of listing the held-out item first).
    Returns averaged ``HR@K``, ``NDCG@K``, and ``MRR``.
    """
    if not model.is_fitted:
        raise EvaluationError("model must be fitted")
    rng = ensure_rng(seed)
    k_arr = np.asarray(k_values, dtype=np.int64)
    if k_arr.size and k_arr.min() < 1:
        raise EvaluationError("k must be >= 1")
    num_items = train.num_items

    users = np.flatnonzero(test.interactions.user_degrees() > 0)
    if users.size == 0:
        raise EvaluationError("no held-out interactions to evaluate")
    if max_users is not None and users.size > max_users:
        users = rng.choice(users, size=max_users, replace=False)

    hr_sums = np.zeros(k_arr.size, dtype=np.float64)
    ndcg_sums = np.zeros(k_arr.size, dtype=np.float64)
    mrr_sum = 0.0
    num_pairs = 0
    seen = np.empty(num_items, dtype=bool)
    for user in users:
        user = int(user)
        held = test.interactions.items_of(user)
        seen[:] = False
        seen[train.interactions.items_of(user)] = True
        seen[held] = True
        pool = np.flatnonzero(~seen)
        if pool.size == 0:
            continue
        scores = np.asarray(model.score_all(user), dtype=np.float64)
        take = min(num_negatives, pool.size)
        # Uniform without-replacement draw per held-out item: random keys +
        # argpartition selects `take` distinct pool positions per row.
        keys = rng.random((held.size, pool.size))
        chosen = np.argpartition(keys, take - 1, axis=1)[:, :take]
        neg_scores = scores[pool[chosen]]
        pos_scores = scores[held][:, None]
        ranks = 1 + (neg_scores > pos_scores).sum(axis=1)
        in_top = ranks[:, None] <= k_arr[None, :]
        discounted = 1.0 / np.log2(ranks[:, None] + 1.0)
        hr_sums += in_top.sum(axis=0)
        ndcg_sums += np.where(in_top, discounted, 0.0).sum(axis=0)
        mrr_sum += float((1.0 / ranks).sum())
        num_pairs += int(held.size)
    if num_pairs == 0:
        raise EvaluationError("no evaluable (user, item) pairs")
    result: dict[str, float] = {}
    for i, k in enumerate(k_arr):
        result[f"HR@{int(k)}"] = float(hr_sums[i] / num_pairs)
        result[f"NDCG@{int(k)}"] = float(ndcg_sums[i] / num_pairs)
    result["MRR"] = mrr_sum / num_pairs
    return result
