"""Sampled-candidate ranking protocol (the NCF/KSR evaluation style).

Several surveyed papers (KSR and the sequential line) evaluate with
leave-one-out plus sampled negatives: the held-out item is ranked against
``num_negatives`` unseen items, and HR@K/NDCG@K/MRR are averaged over
users.  :func:`sampled_ranking_evaluation` implements that protocol on top
of any fitted :class:`~repro.core.recommender.Recommender`.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import EvaluationError
from repro.core.recommender import Recommender
from repro.core.rng import ensure_rng

from . import metrics

__all__ = ["sampled_ranking_evaluation"]


def sampled_ranking_evaluation(
    model: Recommender,
    train: Dataset,
    test: Dataset,
    num_negatives: int = 99,
    k_values: tuple[int, ...] = (5, 10),
    max_users: int | None = None,
    seed: int | np.random.Generator | None = 0,
) -> dict[str, float]:
    """Leave-one-out style sampled ranking metrics.

    For every (user, held-out item) pair, the item competes against
    ``num_negatives`` items the user never interacted with (train or test).
    Returns averaged ``HR@K``, ``NDCG@K``, and ``MRR``.
    """
    if not model.is_fitted:
        raise EvaluationError("model must be fitted")
    rng = ensure_rng(seed)
    per_metric: dict[str, list[float]] = {}

    users = [
        u for u in range(test.num_users) if test.interactions.items_of(u).size > 0
    ]
    if not users:
        raise EvaluationError("no held-out interactions to evaluate")
    if max_users is not None and len(users) > max_users:
        users = list(rng.choice(np.asarray(users), size=max_users, replace=False))

    for user in users:
        user = int(user)
        seen = set(train.interactions.items_of(user).tolist())
        seen |= set(test.interactions.items_of(user).tolist())
        pool = np.asarray(
            [v for v in range(train.num_items) if v not in seen], dtype=np.int64
        )
        if pool.size == 0:
            continue
        scores = model.score_all(user)
        for held in test.interactions.items_of(user):
            take = min(num_negatives, pool.size)
            negatives = rng.choice(pool, size=take, replace=False)
            candidates = np.concatenate([[int(held)], negatives])
            order = candidates[np.argsort(-scores[candidates], kind="stable")]
            relevant = {int(held)}
            for k in k_values:
                per_metric.setdefault(f"HR@{k}", []).append(
                    metrics.hit_ratio_at_k(order, relevant, k)
                )
                per_metric.setdefault(f"NDCG@{k}", []).append(
                    metrics.ndcg_at_k(order, relevant, k)
                )
            per_metric.setdefault("MRR", []).append(
                metrics.reciprocal_rank(order, relevant)
            )
    if not per_metric:
        raise EvaluationError("no evaluable (user, item) pairs")
    return {key: float(np.mean(vals)) for key, vals in per_metric.items()}
