"""Statistical significance utilities for model comparisons.

Small synthetic datasets make per-run noise visible, so the comparative
studies report bootstrap confidence intervals over per-user metrics and a
paired permutation test between two models evaluated on the same users.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import EvaluationError
from repro.core.rng import ensure_rng

__all__ = ["bootstrap_ci", "paired_permutation_test"]


def bootstrap_ci(
    values: np.ndarray,
    confidence: float = 0.95,
    num_samples: int = 2000,
    seed: int | np.random.Generator | None = 0,
) -> tuple[float, float, float]:
    """``(mean, low, high)`` percentile bootstrap CI of the mean."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise EvaluationError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise EvaluationError("confidence must be in (0, 1)")
    rng = ensure_rng(seed)
    idx = rng.integers(0, values.size, size=(num_samples, values.size))
    means = values[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return float(values.mean()), float(low), float(high)


def paired_permutation_test(
    a: np.ndarray,
    b: np.ndarray,
    num_permutations: int = 5000,
    seed: int | np.random.Generator | None = 0,
) -> float:
    """Two-sided p-value that paired samples ``a`` and ``b`` share a mean.

    Randomly flips the sign of per-pair differences; the p-value is the
    fraction of permuted mean differences at least as extreme as observed.
    """
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape or a.size == 0:
        raise EvaluationError("paired test needs equal-length non-empty samples")
    rng = ensure_rng(seed)
    diffs = a - b
    observed = abs(diffs.mean())
    signs = rng.choice([-1.0, 1.0], size=(num_permutations, diffs.size))
    permuted = np.abs((signs * diffs).mean(axis=1))
    return float((permuted >= observed - 1e-15).mean())
