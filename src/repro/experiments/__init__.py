"""Experiments: table/figure regeneration and comparative studies."""

from . import comparative, figure1, tables
from .harness import FailureRecord, PanelResult, results_table, run_panel

__all__ = [
    "tables",
    "figure1",
    "comparative",
    "run_panel",
    "results_table",
    "PanelResult",
    "FailureRecord",
]
