"""Experiments: table/figure regeneration and comparative studies."""

from . import comparative, figure1, tables
from .harness import run_panel, results_table

__all__ = ["tables", "figure1", "comparative", "run_panel", "results_table"]
