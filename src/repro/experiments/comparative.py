"""Comparative studies validating the survey's qualitative claims (E1-E8).

The survey reports no unified benchmark numbers of its own; its evaluative
content is a set of claims about how the method families behave.  Each
study here operationalizes one claim on the synthetic scenarios and returns
rows a bench can print.  Pass criteria live in DESIGN.md (C1-C5).

Studies default to small workloads so the full bench suite stays fast;
every knob is exposed for larger runs.
"""

from __future__ import annotations

import numpy as np

from repro.core.splitter import random_split
from repro.data import make_movie_dataset
from repro.eval.coldstart import cold_start_study, sparsity_sweep
from repro.eval.evaluator import Evaluator
from repro.eval.explain import explanation_fidelity
from repro.kg.completion import evaluate_link_prediction
from repro.kge import KGE_MODELS
from repro.models.baselines import BPRMF, ItemKNN, MostPopular
from repro.models.embedding_based import CFKG, CKE, MKR, KTUP, RCF
from repro.models.path_based import KPRN, PGPR, HeteMF, HeteRec, RKGE
from repro.models.unified import KGAT, KGCN, AKUPM, RippleNet

from .harness import run_panel, results_table

__all__ = [
    "study_embedding_methods",
    "study_kg_signal_sweep",
    "study_path_methods",
    "study_unified_methods",
    "study_cold_start",
    "study_kge_link_prediction",
    "study_aggregators",
    "study_explainability",
    "study_multitask",
    "DEFAULT_DATA_KWARGS",
]

#: Shared small-but-meaningful dataset size for the studies.  The mean
#: interaction count keeps density under ~9%, the sparse regime where the
#: survey situates KG-based recommendation (public datasets are sparser
#: still: MovieLens-1M is ~4%).
DEFAULT_DATA_KWARGS = dict(num_users=80, num_items=120, mean_interactions=10.0)


def _movie(seed: int = 0, **overrides):
    kwargs = {**DEFAULT_DATA_KWARGS, **overrides}
    return make_movie_dataset(seed=seed, **kwargs)


# ---------------------------------------------------------------------- #
# E1 — embedding-based methods vs pure CF
# ---------------------------------------------------------------------- #
def study_embedding_methods(
    seed: int = 0,
    epochs: int = 25,
    executor: str = "sequential",
    max_workers: int | None = None,
):
    """CF baselines vs embedding-based KG methods on the movie scenario."""
    dataset = _movie(seed=seed)
    factories = {
        "MostPopular": lambda: MostPopular(),
        "ItemKNN": lambda: ItemKNN(),
        "BPR-MF": lambda: BPRMF(epochs=epochs, seed=seed),
        "CKE": lambda: CKE(epochs=epochs, seed=seed),
        "CFKG": lambda: CFKG(epochs=epochs, seed=seed),
        "MKR": lambda: MKR(epochs=epochs, seed=seed),
        "KTUP": lambda: KTUP(epochs=epochs, seed=seed),
        "RCF": lambda: RCF(epochs=epochs, seed=seed),
    }
    return run_panel(
        dataset, factories, seed=seed, executor=executor, max_workers=max_workers
    )


# ---------------------------------------------------------------------- #
# E1b — KG signal sweep: the KG helps exactly when it is informative
# ---------------------------------------------------------------------- #
def study_kg_signal_sweep(
    seed: int = 0,
    signals: tuple[float, ...] = (1.0, 0.5, 0.0),
    epochs: int = 25,
    executor: str = "sequential",
    max_workers: int | None = None,
):
    """KG-aware vs CF as the published KG's fidelity degrades."""
    rows = []
    for signal in signals:
        dataset = _movie(seed=seed, kg_signal=signal)
        results = run_panel(
            dataset,
            {
                "BPR-MF": lambda: BPRMF(epochs=epochs, seed=seed),
                "KGCN": lambda: KGCN(epochs=epochs, seed=seed),
                "RCF": lambda: RCF(epochs=epochs, seed=seed),
            },
            seed=seed,
            executor=executor,
            max_workers=max_workers,
        )
        for r in results:
            rows.append(
                {"kg_signal": signal, "model": r.model, "AUC": r["AUC"],
                 "NDCG@10": r["NDCG@10"]}
            )
    return rows


# ---------------------------------------------------------------------- #
# E2 — path-based methods
# ---------------------------------------------------------------------- #
def study_path_methods(
    seed: int = 0,
    epochs: int = 8,
    executor: str = "sequential",
    max_workers: int | None = None,
):
    dataset = _movie(seed=seed)
    factories = {
        "MostPopular": lambda: MostPopular(),
        "BPR-MF": lambda: BPRMF(epochs=25, seed=seed),
        "Hete-MF": lambda: HeteMF(epochs=10, seed=seed),
        "HeteRec": lambda: HeteRec(seed=seed),
        "RKGE": lambda: RKGE(epochs=epochs, seed=seed),
        "KPRN": lambda: KPRN(epochs=epochs, seed=seed),
        "PGPR": lambda: PGPR(epochs=6, seed=seed),
    }
    return run_panel(
        dataset, factories, seed=seed, executor=executor, max_workers=max_workers
    )


def study_metapath_count(seed: int = 0, counts: tuple[int, ...] = (1, 2, 4)):
    """HeteRec as a function of the number of meta-paths L."""
    dataset = _movie(seed=seed)
    rows = []
    for count in counts:
        results = run_panel(
            dataset,
            {f"HeteRec(L={count})": lambda c=count: HeteRec(num_metapaths=c, seed=seed)},
            seed=seed,
        )
        rows.append(
            {"num_metapaths": count, "AUC": results[0]["AUC"],
             "NDCG@10": results[0]["NDCG@10"]}
        )
    return rows


# ---------------------------------------------------------------------- #
# E3 — unified methods and the hop-depth ablation
# ---------------------------------------------------------------------- #
def study_unified_methods(
    seed: int = 0,
    epochs: int = 20,
    executor: str = "sequential",
    max_workers: int | None = None,
):
    dataset = _movie(seed=seed)
    factories = {
        "BPR-MF": lambda: BPRMF(epochs=25, seed=seed),
        "CKE (best Emb.)": lambda: CKE(epochs=25, seed=seed),
        "HeteRec (best Path)": lambda: HeteRec(seed=seed),
        "RippleNet": lambda: RippleNet(epochs=epochs, num_negatives=2, seed=seed),
        "KGCN": lambda: KGCN(epochs=epochs, num_negatives=2, seed=seed),
        "KGAT": lambda: KGAT(epochs=10, seed=seed),
        "AKUPM": lambda: AKUPM(epochs=epochs, seed=seed),
    }
    return run_panel(
        dataset, factories, seed=seed, executor=executor, max_workers=max_workers
    )


def study_hop_depth(
    seed: int = 0,
    hops: tuple[int, ...] = (1, 2, 3),
    executor: str = "sequential",
    max_workers: int | None = None,
):
    """RippleNet/KGCN ripple-hop sweep (propagation depth ablation)."""
    dataset = _movie(seed=seed)
    rows = []
    for h in hops:
        results = run_panel(
            dataset,
            {
                f"RippleNet(H={h})": lambda hh=h: RippleNet(
                    hops=hh, epochs=15, num_negatives=2, seed=seed
                ),
                f"KGCN(H={h})": lambda hh=h: KGCN(
                    hops=hh, num_neighbors=8, epochs=20, num_negatives=2, seed=seed
                ),
            },
            seed=seed,
            executor=executor,
            max_workers=max_workers,
        )
        for r in results:
            rows.append({"hops": h, "model": r.model, "AUC": r["AUC"]})
    return rows


# ---------------------------------------------------------------------- #
# E4 — sparsity and cold start
# ---------------------------------------------------------------------- #
def study_cold_start(seed: int = 0):
    """Cold-item AUC: KG methods vs CF (the survey's core motivation)."""
    dataset = _movie(seed=seed)
    factories = {
        "BPR-MF": lambda: BPRMF(epochs=25, seed=seed),
        "ItemKNN": lambda: ItemKNN(),
        "CKE": lambda: CKE(epochs=25, seed=seed),
        "KGCN": lambda: KGCN(epochs=25, num_negatives=2, seed=seed),
        "CFKG": lambda: CFKG(epochs=25, seed=seed),
    }
    return cold_start_study(dataset, factories, seed=seed)


def study_sparsity(seed: int = 0, levels: tuple[float, ...] = (25.0, 12.0, 6.0)):
    """AUC as mean interactions per user shrinks."""
    factories = {
        "BPR-MF": lambda: BPRMF(epochs=25, seed=seed),
        "KGCN": lambda: KGCN(epochs=25, num_negatives=2, seed=seed),
    }
    size_kwargs = {
        k: v for k, v in DEFAULT_DATA_KWARGS.items() if k != "mean_interactions"
    }
    return sparsity_sweep(
        make_movie_dataset,
        factories,
        mean_interactions=levels,
        seed=seed,
        **size_kwargs,
    )


# ---------------------------------------------------------------------- #
# E5 — KGE model comparison (link prediction)
# ---------------------------------------------------------------------- #
def study_kge_link_prediction(
    seed: int = 0, epochs: int = 25, dim: int = 16, holdout: float = 0.15
):
    """Translation-distance vs semantic-matching KGE on the movie KG."""
    dataset = _movie(seed=seed)
    kg = dataset.kg
    rng = np.random.default_rng(seed)
    triples = kg.triples()
    order = rng.permutation(triples.shape[0])
    n_test = max(10, int(holdout * triples.shape[0]))
    test = triples[order[:n_test]]
    train = triples[order[n_test:]]
    from repro.kg.triples import TripleStore

    train_store = TripleStore.from_triples(train, kg.num_entities, kg.num_relations)
    rows = []
    for name, cls in KGE_MODELS.items():
        model = cls(kg.num_entities, kg.num_relations, dim=dim, seed=seed)
        model.fit(train_store, epochs=epochs, seed=seed)
        result = evaluate_link_prediction(
            model.score_triples, test, kg.store, kg.num_entities
        )
        rows.append({"model": name, **result.as_dict()})
    return rows


def study_kge_downstream(
    seed: int = 0,
    kge_models: tuple[str, ...] = ("TransE", "TransR", "DistMult"),
    epochs: int = 25,
    executor: str = "sequential",
    max_workers: int | None = None,
):
    """Downstream effect of the KGE choice: CKE and CFKG per KGE model.

    The survey's Future Directions asks under which circumstances each KGE
    family should be adopted; this measures the recommendation-side answer.
    """
    dataset = _movie(seed=seed)
    factories = {}
    for name in kge_models:
        factories[f"CKE[{name}]"] = lambda n=name: CKE(kge=n, epochs=epochs, seed=seed)
        factories[f"CFKG[{name}]"] = lambda n=name: CFKG(kge=n, epochs=epochs, seed=seed)
    return run_panel(
        dataset, factories, seed=seed, executor=executor, max_workers=max_workers
    )


# ---------------------------------------------------------------------- #
# E6 — aggregator ablation (Eq. 30-33)
# ---------------------------------------------------------------------- #
def study_aggregators(
    seed: int = 0,
    epochs: int = 20,
    executor: str = "sequential",
    max_workers: int | None = None,
):
    dataset = _movie(seed=seed)
    factories = {
        f"KGCN[{agg}]": (
            lambda a=agg: KGCN(aggregator=a, epochs=epochs, num_negatives=2, seed=seed)
        )
        for agg in ("sum", "concat", "neighbor", "bi-interaction")
    }
    return run_panel(
        dataset, factories, seed=seed, executor=executor, max_workers=max_workers
    )


# ---------------------------------------------------------------------- #
# E7 — explanation validity
# ---------------------------------------------------------------------- #
def study_explainability(seed: int = 0):
    """Path validity/coverage for the explanation-capable models."""
    dataset = _movie(seed=seed)
    train, __ = random_split(dataset, seed=seed)
    rows = []
    for name, factory in {
        "CFKG": lambda: CFKG(epochs=20, seed=seed),
        "RKGE": lambda: RKGE(epochs=5, seed=seed),
        "KPRN": lambda: KPRN(epochs=5, seed=seed),
        "PGPR": lambda: PGPR(epochs=5, seed=seed),
        "KGAT": lambda: KGAT(epochs=8, seed=seed),
    }.items():
        model = factory().fit(train)
        fidelity = explanation_fidelity(model, users=list(range(15)), k=5)
        rows.append({"model": name, **fidelity})
    return rows


# ---------------------------------------------------------------------- #
# E8 — multi-task weight sweep
# ---------------------------------------------------------------------- #
def study_multitask(
    seed: int = 0,
    weights: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0),
    epochs: int = 25,
    num_seeds: int = 3,
    executor: str = "sequential",
    max_workers: int | None = None,
):
    """KTUP/MKR joint-training weight lambda (Eq. 9) sweep.

    Single-seed gains are noisy at this scale, so each (model, lambda) cell
    is the mean AUC over ``num_seeds`` dataset/training seeds.
    """
    rows = []
    for lam in weights:
        sums: dict[str, float] = {"KTUP": 0.0, "MKR": 0.0}
        for offset in range(num_seeds):
            s = seed + offset
            dataset = _movie(seed=s)
            results = run_panel(
                dataset,
                {
                    "KTUP": lambda w=lam, ss=s: KTUP(kg_weight=w, epochs=epochs, seed=ss),
                    "MKR": lambda w=lam, ss=s: MKR(kg_weight=w, epochs=epochs, seed=ss),
                },
                seed=s,
                executor=executor,
                max_workers=max_workers,
            )
            for r in results:
                sums[r.model] += r["AUC"]
        for model, total in sums.items():
            rows.append(
                {"lambda": lam, "model": f"{model}(l={lam})", "AUC": total / num_seeds}
            )
    return rows
