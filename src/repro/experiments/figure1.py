"""Reproduction of the survey's Figure 1: the worked movie-KG example.

The figure shows user Bob, his watched movies, and a movie KG with genre /
actor / director / friendship relations; the survey explains that "Avatar"
is recommended because it shares the Sci-Fi genre with the watched
"Interstellar", and "Blood Diamond" through the acting link to the watched
"Inception".  This module builds that exact graph, runs a KG-based
recommender over it, and extracts the same explanation paths.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.interactions import InteractionMatrix
from repro.kg.graph import KnowledgeGraph
from repro.kg.metapath import enumerate_paths
from repro.kg.triples import TripleStore
from repro.models.embedding_based.sed import SED

__all__ = ["build_figure1_dataset", "run_figure1", "FIGURE1_USERS", "FIGURE1_MOVIES"]

FIGURE1_USERS = ["Bob", "Alice"]
FIGURE1_MOVIES = ["Interstellar", "Inception", "Avatar", "Blood Diamond", "Titanic"]
_ATTRIBUTES = ["Sci-Fi", "Romance", "Leonardo DiCaprio", "James Cameron"]
_RELATIONS = ["has_genre", "acted_by", "directed_by"]


def build_figure1_dataset() -> Dataset:
    """The Figure 1 movie KG with Bob's and Alice's watch history.

    Entities 0-4 are the movies; 5-8 the attributes.  Bob watched
    Interstellar and Inception; Alice watched Titanic.
    """
    labels = FIGURE1_MOVIES + _ATTRIBUTES
    e = {name: i for i, name in enumerate(labels)}
    r = {name: i for i, name in enumerate(_RELATIONS)}
    triples = [
        (e["Interstellar"], r["has_genre"], e["Sci-Fi"]),
        (e["Inception"], r["has_genre"], e["Sci-Fi"]),
        (e["Avatar"], r["has_genre"], e["Sci-Fi"]),
        (e["Titanic"], r["has_genre"], e["Romance"]),
        (e["Inception"], r["acted_by"], e["Leonardo DiCaprio"]),
        (e["Blood Diamond"], r["acted_by"], e["Leonardo DiCaprio"]),
        (e["Titanic"], r["acted_by"], e["Leonardo DiCaprio"]),
        (e["Avatar"], r["directed_by"], e["James Cameron"]),
        (e["Titanic"], r["directed_by"], e["James Cameron"]),
    ]
    store = TripleStore.from_triples(triples, len(labels), len(_RELATIONS))
    kg = KnowledgeGraph(
        store,
        entity_labels=labels,
        relation_labels=_RELATIONS,
        entity_types=np.asarray([0] * 5 + [1, 1, 2, 3], dtype=np.int64),
        type_names=["movie", "genre", "actor", "director"],
    )
    interactions = InteractionMatrix.from_pairs(
        [
            (0, FIGURE1_MOVIES.index("Interstellar")),
            (0, FIGURE1_MOVIES.index("Inception")),
            (1, FIGURE1_MOVIES.index("Titanic")),
        ],
        num_users=2,
        num_items=5,
    )
    return Dataset(
        name="figure1",
        interactions=interactions,
        kg=kg,
        item_entities=np.arange(5, dtype=np.int64),
        extra={"users": FIGURE1_USERS},
    )


def run_figure1(model=None) -> dict:
    """Recommend movies for Bob and extract explanation paths.

    Returns a dict with the ranked recommendations, the explanation strings,
    and booleans asserting the survey's claims (Avatar and Blood Diamond are
    the top-2, each justified by the published path).
    """
    dataset = build_figure1_dataset()
    model = model if model is not None else SED()
    model.fit(dataset)
    bob = 0
    ranked = model.recommend(bob, k=3)
    names = [FIGURE1_MOVIES[int(v)] for v in ranked]

    explanations: dict[str, list[str]] = {}
    kg = dataset.kg
    history = dataset.interactions.items_of(bob)
    for item in ranked:
        paths: list[str] = []
        for watched in history:
            for path in enumerate_paths(
                kg,
                int(dataset.item_entities[watched]),
                int(dataset.item_entities[item]),
                max_length=2,
                max_paths=2,
            ):
                paths.append(f"Bob --[watched]--> {path.render(kg)}")
        explanations[FIGURE1_MOVIES[int(item)]] = paths

    avatar_path_ok = any(
        "Sci-Fi" in p and "Interstellar" in p
        for p in explanations.get("Avatar", [])
    )
    blood_diamond_path_ok = any(
        "Leonardo DiCaprio" in p and "Inception" in p
        for p in explanations.get("Blood Diamond", [])
    )
    return {
        "recommendations": names,
        "explanations": explanations,
        "top2_matches_figure": set(names[:2]) == {"Avatar", "Blood Diamond"},
        "avatar_path_ok": avatar_path_ok,
        "blood_diamond_path_ok": blood_diamond_path_ok,
    }


def render_figure1() -> str:
    """ASCII rendering of Figure 1's graph and reasoning."""
    result = run_figure1()
    lines = [
        "Figure 1: An illustration of KG-based recommendation.",
        "",
        "  Bob --watched--> Interstellar --has_genre--> Sci-Fi <--has_genre-- Avatar",
        "  Bob --watched--> Inception --acted_by--> Leonardo DiCaprio <--acted_by-- Blood Diamond",
        "  Alice --watched--> Titanic --directed_by--> James Cameron <--directed_by-- Avatar",
        "",
        f"  Recommendations for Bob: {', '.join(result['recommendations'])}",
    ]
    for movie, paths in result["explanations"].items():
        for p in paths:
            lines.append(f"    why {movie}: {p}")
    return "\n".join(lines)
