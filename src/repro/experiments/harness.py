"""Experiment harness: run model panels and collect comparable rows.

Every comparative study reduces to the same loop — generate a dataset,
split, fit a panel of models, evaluate on identical candidate sets — which
:func:`run_panel` implements once.  Studies in
:mod:`repro.experiments.comparative` build on it.

Panels are *fault-isolated* by default: one model diverging or crashing no
longer aborts the whole study.  A failing entry becomes a structured
:class:`FailureRecord` on the returned :class:`PanelResult` (which still
behaves as the historical ``list[EvalResult]``), optionally after retries
via :class:`~repro.runtime.retry.RetryPolicy`, and optionally replaced by
a registered fallback baseline so downstream tables keep a row for every
panel entry.  See ``docs/robustness.md``.

Panels can also run their entries in a **process pool**
(``executor="process"``): every entry fits and evaluates in a forked
worker with the retry/time-budget/fallback machinery intact, producing
row-for-row identical results to the sequential executor.  See
:mod:`repro.experiments.parallel` and ``docs/performance.md``.
"""

from __future__ import annotations

import dataclasses
import time
import traceback as traceback_module
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigError
from repro.core.recommender import Recommender
from repro.core.registry import get_model_class
from repro.core.splitter import random_split
from repro.eval.evaluator import EvalResult, Evaluator
from repro.runtime.retry import RetryPolicy
from repro.telemetry.base import activate, get_active

from .tables import render_table

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.telemetry import Telemetry

__all__ = ["run_panel", "results_table", "PanelResult", "FailureRecord"]


@dataclass(frozen=True)
class FailureRecord:
    """Structured account of one panel entry that could not be evaluated."""

    model: str
    phase: str  # "fit" or "evaluate"
    error_type: str
    message: str
    traceback: str = ""
    attempts: int = 1
    #: Wall-clock from entry start to failure, *including* retry backoff
    #: sleeps — the user-facing "how long did this entry cost me" number.
    elapsed: float = 0.0
    #: Duration of the last fit attempt alone (no backoff sleeps, no
    #: evaluation).  This is what ``time_budget`` judges, so a retried
    #: model is budgeted on its fit work rather than on sleep.
    fit_elapsed: float = 0.0
    #: Name of the substituted fallback row in the results, when degradation
    #: was enabled and succeeded.
    fallback: str | None = None
    #: Id of this entry's ``panel/model`` telemetry span, when the panel ran
    #: with telemetry — lets a trace consumer join the failure to its exact
    #: timed span (and every child span recorded during the failing fit).
    #: For process-pool panels the id is already remapped into the parent
    #: trace's id space.
    span_id: int | None = None

    def describe(self) -> str:
        out = (
            f"{self.model}: {self.phase} failed after {self.attempts} "
            f"attempt(s) in {self.elapsed:.2f}s: {self.error_type}: {self.message}"
        )
        if self.fallback:
            out += f" (fallback row: {self.fallback!r})"
        return out


class PanelResult(list):
    """``list[EvalResult]`` plus the failures met while producing it."""

    def __init__(self, results=(), failures: list[FailureRecord] | None = None) -> None:
        super().__init__(results)
        self.failures: list[FailureRecord] = list(failures or [])

    @property
    def failed_models(self) -> list[str]:
        return [f.model for f in self.failures]

    @property
    def ok(self) -> bool:
        return not self.failures


def _resolve_fallback(
    fallback: str | Callable[[], Recommender] | None,
) -> tuple[str, Callable[[], Recommender]] | None:
    if fallback is None:
        return None
    if isinstance(fallback, str):
        cls = get_model_class(fallback)
        return fallback, cls
    name = getattr(fallback, "__name__", type(fallback).__name__)
    return name, fallback


def _resolve_retry(retry: RetryPolicy | int | None) -> RetryPolicy:
    if retry is None:
        return RetryPolicy(max_attempts=1)
    if isinstance(retry, int):
        # No real sleeping inside a panel unless the caller asks for it.
        return RetryPolicy(max_attempts=retry, base_delay=0.0, jitter=0.0)
    return retry


def _execute_entry(
    name: str,
    factory: Callable[[], Recommender],
    train: Dataset,
    evaluator: Evaluator,
    policy: RetryPolicy,
    time_budget: float | None,
    fallback_entry: tuple[str, Callable[[], Recommender]] | None,
    clock: Callable[[], float],
    tel,
    isolate: bool,
) -> tuple[list[EvalResult], FailureRecord | None]:
    """Fit + evaluate one panel entry under the full resilience machinery.

    Returns ``(rows, failure)``: zero or one :class:`EvalResult` rows (the
    entry's row on success, the fallback's row on degraded failure) and the
    :class:`FailureRecord` when the entry failed.  This is the single code
    path shared by the sequential loop and the process-pool workers, which
    is what makes the two executors row-for-row identical by construction.
    """
    enabled = tel.enabled
    phase = "fit"
    attempts = 0
    last_fit_elapsed = 0.0
    start = clock()
    model_span = tel.begin("panel/model", model=name) if enabled else None
    results: list[EvalResult] = []

    def fit_once() -> Recommender:
        nonlocal attempts, last_fit_elapsed
        attempts += 1
        fit_start = clock()
        try:
            model = factory()
            model.fit(train)
        finally:
            # Per-attempt fit time, recorded even on failure: time_budget
            # judges fit work, not the policy's backoff sleeps.
            last_fit_elapsed = clock() - fit_start
        return model

    try:
        model = policy.call(fit_once)
        if time_budget is not None and last_fit_elapsed > time_budget:
            raise TimeoutError(
                f"fit took {last_fit_elapsed:.2f}s, budget is {time_budget:.2f}s"
            )
        phase = "evaluate"
        results.append(evaluator.evaluate(model, name=name))
        if model_span is not None:
            tel.counter("panel.models_ok").inc()
            tel.end(model_span, outcome="ok", attempts=attempts)
        return results, None
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        elapsed = clock() - start
        if not isolate:
            if model_span is not None:
                tel.end(
                    model_span, outcome="failed", phase=phase,
                    error_type=type(exc).__name__,
                )
            if hasattr(exc, "add_note"):
                exc.add_note(
                    f"while running panel entry {name!r} (phase: {phase})"
                )
            raise
        error_type = (
            "TimeBudgetExceeded"
            if isinstance(exc, TimeoutError)
            else type(exc).__name__
        )
        record = FailureRecord(
            model=name,
            phase=phase,
            error_type=error_type,
            message=str(exc),
            traceback=traceback_module.format_exc(),
            attempts=attempts,
            elapsed=elapsed,
            fit_elapsed=last_fit_elapsed,
            span_id=model_span.span_id if model_span is not None else None,
        )
        if fallback_entry is not None:
            fb_name, fb_factory = fallback_entry
            row_name = f"{name} (fallback: {fb_name})"
            try:
                fb_model = fb_factory()
                fb_model.fit(train)
                results.append(evaluator.evaluate(fb_model, name=row_name))
                record = dataclasses.replace(record, fallback=row_name)
            except Exception:  # noqa: BLE001 - fallback is best-effort
                pass
        if model_span is not None:
            tel.counter("panel.models_failed").inc()
            tel.end(
                model_span, outcome="failed", phase=phase,
                error_type=error_type, attempts=attempts,
                fallback=record.fallback,
            )
        return results, record


def run_panel(
    dataset: Dataset,
    model_factories: dict[str, Callable[[], Recommender]],
    test_fraction: float = 0.2,
    k_values: tuple[int, ...] = (5, 10),
    max_users: int | None = 50,
    seed: int = 0,
    *,
    isolate: bool = True,
    retry: RetryPolicy | int | None = None,
    time_budget: float | None = None,
    fallback: str | Callable[[], Recommender] | None = None,
    clock: Callable[[], float] = time.monotonic,
    telemetry: "Telemetry | None" = None,
    executor: str = "sequential",
    max_workers: int | None = None,
) -> PanelResult:
    """Split ``dataset`` and evaluate every model on the identical split.

    Parameters
    ----------
    isolate:
        When true (the default), an exception from one model's
        ``fit``/``evaluate`` is captured as a :class:`FailureRecord` instead
        of aborting the panel.  When false, the exception propagates (with a
        note naming the panel entry and phase).
    retry:
        ``None`` (single attempt), an int (that many attempts, no backoff),
        or a full :class:`~repro.runtime.retry.RetryPolicy`.  Each attempt
        builds a *fresh* model from the factory, so a half-trained model is
        never refit.
    time_budget:
        Optional per-model wall-clock budget in seconds.  Enforcement is
        cooperative and judges the *last fit attempt's* duration — backoff
        sleeps between retries do not count against the budget.  A model
        whose (successful) fit overran is recorded as a
        ``TimeBudgetExceeded`` failure rather than evaluated.
    fallback:
        Graceful degradation: a registered model name (e.g. ``"MostPopular"``)
        or a zero-arg factory, substituted for an entry that failed after
        retries.  The fallback's row is named ``"<entry> (fallback: <name>)"``
        and recorded on the corresponding :class:`FailureRecord`.
    clock:
        Injection point for the time source (tests use a fake clock).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` (defaults to the
        active one, so a CLI-level ``--trace-out`` covers panels run deep
        inside a study).  Records a ``panel`` span wrapping one
        ``panel/model`` span per entry — carrying outcome, phase,
        error type, and attempt count, with the span id joined onto the
        matching :class:`FailureRecord` — and is activated for the
        duration, so model ``fit`` internals (optimizer steps, negative
        sampling) nest underneath.
    executor:
        ``"sequential"`` (the default, in-process) or ``"process"``: every
        entry runs in a forked worker process so panel wall-clock is set by
        the slowest entry rather than the sum.  Results are row-for-row
        identical to sequential (entries carry their own seeds; the split
        is computed once, pre-fork).  Worker telemetry is merged back into
        the parent trace with remapped span ids.  Requires ``isolate=True``.
    max_workers:
        Process-pool width for ``executor="process"`` (default: one worker
        per entry, capped at the CPU count).
    """
    if executor not in ("sequential", "process"):
        raise ConfigError(
            f"unknown executor {executor!r}; choose 'sequential' or 'process'"
        )
    train, test = random_split(dataset, test_fraction=test_fraction, seed=seed)
    evaluator = Evaluator(
        train, test, k_values=k_values, max_users=max_users, seed=seed
    )
    policy = _resolve_retry(retry)
    fallback_entry = _resolve_fallback(fallback)
    tel = telemetry if telemetry is not None else get_active()
    enabled = tel.enabled

    if executor == "process":
        if not isolate:
            raise ConfigError(
                "executor='process' requires isolate=True: worker failures "
                "are captured in-child as FailureRecords, not re-raised"
            )
        from .parallel import run_panel_process

        return run_panel_process(
            model_factories,
            train=train,
            evaluator=evaluator,
            policy=policy,
            time_budget=time_budget,
            fallback_entry=fallback_entry,
            clock=clock,
            telemetry=tel,
            max_workers=max_workers,
            seed=seed,
        )

    results: list[EvalResult] = []
    failures: list[FailureRecord] = []

    if enabled:
        previous_telemetry = activate(tel)
        panel_span = tel.begin(
            "panel", models=len(model_factories), seed=seed,
        )
    try:
        for name, factory in model_factories.items():
            rows, failure = _execute_entry(
                name, factory, train, evaluator, policy, time_budget,
                fallback_entry, clock, tel, isolate,
            )
            results.extend(rows)
            if failure is not None:
                failures.append(failure)
    finally:
        if enabled:
            tel.end(panel_span, ok=len(results), failed=len(failures))
            activate(previous_telemetry)

    return PanelResult(results, failures)


def results_table(
    results: PanelResult | list[EvalResult],
    columns: tuple[str, ...] = ("AUC", "NDCG@10", "Recall@10", "HR@10"),
    title: str = "",
) -> str:
    """Render evaluation results as an aligned text table.

    A :class:`PanelResult` carrying failures renders one ``FAILED`` row per
    failure plus a trailing ``Failures:`` block with the details.
    """
    rows = [
        [r.model] + [f"{r.values.get(c, float('nan')):.4f}" for c in columns]
        for r in results
    ]
    failures = list(getattr(results, "failures", ()))
    for f in failures:
        marker = f"FAILED ({f.phase}: {f.error_type})"
        rows.append([f.model] + ([marker] + ["--"] * (len(columns) - 1) if columns else []))
    text = render_table(["Model"] + list(columns), rows, title=title)
    if failures:
        lines = [text, "", "Failures:"]
        lines.extend(f"  - {f.describe()}" for f in failures)
        text = "\n".join(lines)
    return text
