"""Experiment harness: run model panels and collect comparable rows.

Every comparative study reduces to the same loop — generate a dataset,
split, fit a panel of models, evaluate on identical candidate sets — which
:func:`run_panel` implements once.  Studies in
:mod:`repro.experiments.comparative` build on it.
"""

from __future__ import annotations

from typing import Callable

from repro.core.dataset import Dataset
from repro.core.recommender import Recommender
from repro.core.splitter import random_split
from repro.eval.evaluator import EvalResult, Evaluator

from .tables import render_table

__all__ = ["run_panel", "results_table", "PanelResult"]


PanelResult = list[EvalResult]


def run_panel(
    dataset: Dataset,
    model_factories: dict[str, Callable[[], Recommender]],
    test_fraction: float = 0.2,
    k_values: tuple[int, ...] = (5, 10),
    max_users: int | None = 50,
    seed: int = 0,
) -> PanelResult:
    """Split ``dataset`` and evaluate every model on the identical split."""
    train, test = random_split(dataset, test_fraction=test_fraction, seed=seed)
    evaluator = Evaluator(
        train, test, k_values=k_values, max_users=max_users, seed=seed
    )
    results: PanelResult = []
    for name, factory in model_factories.items():
        model = factory().fit(train)
        results.append(evaluator.evaluate(model, name=name))
    return results


def results_table(
    results: PanelResult,
    columns: tuple[str, ...] = ("AUC", "NDCG@10", "Recall@10", "HR@10"),
    title: str = "",
) -> str:
    """Render evaluation results as an aligned text table."""
    rows = [
        [r.model] + [f"{r.values.get(c, float('nan')):.4f}" for c in columns]
        for r in results
    ]
    return render_table(["Model"] + list(columns), rows, title=title)
