"""Process-pool execution of panel entries (``run_panel(executor="process")``).

The sequential panel loop fits one model at a time, so study wall-clock
grows linearly with the method count.  This module runs every panel entry
in a **forked worker process** instead, while keeping the results
row-for-row identical to the sequential executor:

* The split and :class:`~repro.eval.evaluator.Evaluator` are computed once
  in the parent, *before* forking, so every worker scores against the
  identical candidate sets — and the (possibly huge) dataset reaches the
  workers by copy-on-write page sharing, never by pickling.
* Each worker runs the exact same
  :func:`~repro.experiments.harness._execute_entry` code path as the
  sequential loop — retries, per-attempt ``time_budget`` enforcement, and
  fallback degradation all happen **in the child** — so the two executors
  cannot drift.  Only the retry policy differs: each entry gets a jitter
  seed derived from ``(policy seed, entry index)`` so concurrent workers
  do not back off in lockstep (jitter affects sleep durations only, never
  rows).
* A worker returns a pickled :class:`~repro.eval.evaluator.EvalResult`
  row (or its fallback's row) plus a structured
  :class:`~repro.experiments.harness.FailureRecord` with the traceback
  captured in-child.  A worker that dies outright (segfault, ``os._exit``)
  becomes a ``WorkerCrashed`` failure record rather than aborting the
  panel.
* When the parent panel runs traced, each worker records into its own
  :class:`~repro.telemetry.Telemetry`; the parent merges every child
  capture back via :meth:`~repro.telemetry.tracer.Tracer.adopt` — span ids
  remapped into the parent's sequence, child roots re-parented under the
  parent ``panel`` span, child clocks re-based onto the parent timeline —
  and folds child metric registries into the parent's, so ``trace-report``
  reconciles a process-pool study exactly like a sequential one.

Worker state travels through a module-level slot (:data:`_WORK`) that the
fork inherits, which is what lets panel factories stay plain lambdas: the
only objects that ever cross a process boundary by pickle are the small
result payloads.  On platforms without ``fork`` the runner transparently
degrades to the sequential code path (same rows, no speedup).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import traceback as traceback_module
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable

from repro.eval.evaluator import EvalResult, Evaluator
from repro.runtime.retry import RetryPolicy
from repro.telemetry import Telemetry
from repro.telemetry.base import NULL, activate, activated
from repro.telemetry.tracer import SpanRecord

from .harness import FailureRecord, PanelResult, _execute_entry

__all__ = ["run_panel_process", "derive_entry_seed", "fork_available"]


def fork_available() -> bool:
    """Whether this platform supports the copy-on-write ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def derive_entry_seed(seed: int, index: int) -> int:
    """Deterministic per-entry jitter seed, decorrelated across entries.

    Used for each worker's retry-backoff jitter stream so simultaneous
    retries don't sleep in lockstep (a thundering-herd of refits).  The
    derived seed never influences rows: model seeds live in the factories
    and the evaluation seed is fixed panel-wide.
    """
    return (int(seed) * 1_000_003 + index + 1) % (2**31 - 1)


def _derive_policy(policy: RetryPolicy, seed: int) -> RetryPolicy:
    """A copy of ``policy`` with a different jitter seed (same clocks)."""
    return RetryPolicy(
        max_attempts=policy.max_attempts,
        base_delay=policy.base_delay,
        multiplier=policy.multiplier,
        max_delay=policy.max_delay,
        jitter=policy.jitter,
        seed=seed,
        deadline=policy.deadline,
        total_budget=policy.total_budget,
        retry_on=policy.retry_on,
        sleep=policy.sleep,
        clock=policy.clock,
    )


@dataclasses.dataclass
class _WorkerState:
    """Everything a forked worker needs, inherited copy-on-write."""

    entries: list[tuple[str, Callable]]
    train: object
    evaluator: Evaluator
    policy: RetryPolicy
    time_budget: float | None
    fallback_entry: tuple[str, Callable] | None
    clock: Callable[[], float]
    traced: bool


@dataclasses.dataclass
class _EntryPayload:
    """What one worker sends back (everything here must pickle)."""

    index: int
    results: list[EvalResult]
    failure: FailureRecord | None
    spans: list[SpanRecord]
    metrics: object | None  # MetricRegistry when traced


#: Fork-inherited worker state; set by the parent immediately before the
#: pool is created and cleared when the panel finishes.
_WORK: _WorkerState | None = None


def _child_run(index: int) -> _EntryPayload:
    """Worker entry point: execute one panel entry and package the outcome."""
    state = _WORK
    if state is None:  # pragma: no cover - defensive: fork didn't carry state
        raise RuntimeError("panel worker state missing (not forked from parent?)")
    name, factory = state.entries[index]
    policy = _derive_policy(
        state.policy, derive_entry_seed(state.policy.seed, index)
    )
    tel = Telemetry() if state.traced else NULL
    with activated(tel if state.traced else None):
        results, failure = _execute_entry(
            name, factory, state.train, state.evaluator, policy,
            state.time_budget, state.fallback_entry, state.clock, tel,
            isolate=True,
        )
    spans = tel.tracer.records() if state.traced else []
    metrics = tel.metrics if state.traced else None
    return _EntryPayload(index, results, failure, spans, metrics)


def _crash_payload(index: int, name: str, exc: BaseException) -> _EntryPayload:
    """Failure payload for a worker that died before returning a result."""
    record = FailureRecord(
        model=name,
        phase="fit",
        error_type="WorkerCrashed",
        message=f"{type(exc).__name__}: {exc}",
        traceback=traceback_module.format_exc(),
    )
    return _EntryPayload(index, [], record, [], None)


def run_panel_process(
    model_factories: dict[str, Callable],
    *,
    train,
    evaluator: Evaluator,
    policy: RetryPolicy,
    time_budget: float | None,
    fallback_entry: tuple[str, Callable] | None,
    clock: Callable[[], float],
    telemetry,
    max_workers: int | None,
    seed: int,
) -> PanelResult:
    """Run prepared panel entries in a fork-based process pool.

    Called by :func:`~repro.experiments.harness.run_panel` after the split,
    evaluator, retry policy, and fallback have been resolved — the panel
    API surface lives there; this function owns only the execution
    strategy.
    """
    global _WORK
    entries = list(model_factories.items())
    tel = telemetry
    enabled = tel.enabled

    if not entries:
        return PanelResult()

    workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
    workers = max(1, min(int(workers), len(entries)))

    if enabled:
        previous_telemetry = activate(tel)
        panel_span = tel.begin(
            "panel", models=len(entries), seed=seed,
            executor="process", workers=workers,
        )

    payloads: dict[int, _EntryPayload] = {}
    dispatch_times: dict[int, float] = {}
    rows: list[EvalResult] = []
    failures: list[FailureRecord] = []
    try:
        if not fork_available():  # pragma: no cover - non-POSIX platforms
            # No copy-on-write fork: degrade to in-process execution.  Rows
            # are identical by construction; only the speedup is lost.
            for i, (name, factory) in enumerate(entries):
                results, failure = _execute_entry(
                    name, factory, train, evaluator,
                    _derive_policy(policy, derive_entry_seed(policy.seed, i)),
                    time_budget, fallback_entry, clock, tel, isolate=True,
                )
                payloads[i] = _EntryPayload(i, results, failure, [], None)
        else:
            _WORK = _WorkerState(
                entries=entries,
                train=train,
                evaluator=evaluator,
                policy=policy,
                time_budget=time_budget,
                fallback_entry=fallback_entry,
                clock=clock,
                traced=enabled,
            )
            context = multiprocessing.get_context("fork")
            try:
                orphans: list[int] = []
                with ProcessPoolExecutor(
                    max_workers=workers, mp_context=context
                ) as pool:
                    futures = {}
                    for i in range(len(entries)):
                        dispatch_times[i] = tel.clock() if enabled else 0.0
                        futures[i] = pool.submit(_child_run, i)
                    for i in range(len(entries)):
                        try:
                            payloads[i] = futures[i].result()
                        except BrokenProcessPool:
                            # A worker died hard (segfault, os._exit) and took
                            # the pool down; every in-flight entry raises this,
                            # innocent or not.  Defer them for a solo retry.
                            orphans.append(i)
                        except Exception as exc:  # noqa: BLE001 - crash isolation
                            payloads[i] = _crash_payload(i, entries[i][0], exc)
                # Re-run each orphan alone in a fresh single-worker pool: the
                # entries that merely shared a broken pool produce their real
                # rows; the one that actually kills its worker breaks its own
                # private pool and becomes the WorkerCrashed record.
                for i in orphans:
                    try:
                        with ProcessPoolExecutor(
                            max_workers=1, mp_context=context
                        ) as solo:
                            dispatch_times[i] = tel.clock() if enabled else 0.0
                            payloads[i] = solo.submit(_child_run, i).result()
                    except Exception as exc:  # noqa: BLE001 - crash isolation
                        payloads[i] = _crash_payload(i, entries[i][0], exc)
            finally:
                _WORK = None

        for i in range(len(entries)):
            payload = payloads[i]
            failure = payload.failure
            if enabled and payload.spans:
                # Re-base the child's clock so its spans sit on the parent
                # timeline (child monotonic origins are arbitrary).
                shift = dispatch_times[i] - min(r.start for r in payload.spans)
                idmap = tel.tracer.adopt(
                    payload.spans, parent_id=panel_span.span_id, shift=shift
                )
                if failure is not None and failure.span_id is not None:
                    failure = dataclasses.replace(
                        failure, span_id=idmap.get(failure.span_id)
                    )
            if enabled and payload.metrics is not None:
                tel.metrics.merge(payload.metrics)
            rows.extend(payload.results)
            if failure is not None:
                failures.append(failure)
    finally:
        if enabled:
            tel.end(panel_span, ok=len(rows), failed=len(failures))
            activate(previous_telemetry)

    return PanelResult(rows, failures)
