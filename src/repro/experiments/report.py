"""One-shot reproduction report.

:func:`build_report` regenerates the survey's tables, runs Figure 1 and a
configurable slice of the comparative studies, and assembles a single
markdown document — the artifact to diff against EXPERIMENTS.md or to
attach to a CI run.  ``fast=True`` shrinks the study workloads so the full
report builds in well under a minute.
"""

from __future__ import annotations

from pathlib import Path

from . import comparative, figure1, tables
from .harness import results_table

__all__ = ["build_report", "write_report"]


def _study_section(fast: bool, seed: int) -> list[str]:
    lines: list[str] = []
    epochs = 5 if fast else 25

    lines.append("## Study E1 — embedding-based methods vs CF\n")
    results = comparative.study_embedding_methods(seed=seed, epochs=epochs)
    lines.append("```\n" + results_table(results) + "\n```\n")

    lines.append("## Study E3 — unified methods\n")
    results = comparative.study_unified_methods(seed=seed, epochs=epochs)
    lines.append("```\n" + results_table(results) + "\n```\n")

    lines.append("## Study E4 — cold-start items\n")
    rows = comparative.study_cold_start(seed=seed)
    body = "\n".join(
        f"  {row['model']:10s} cold-item AUC={row['value']:.4f}" for row in rows
    )
    lines.append("```\n" + body + "\n```\n")

    if not fast:
        lines.append("## Study E5 — KGE link prediction\n")
        rows = comparative.study_kge_link_prediction(seed=seed)
        body = "\n".join(
            f"  {row['model']:10s} MRR={row['MRR']:.4f} Hits@10={row['Hits@10']:.4f}"
            for row in rows
        )
        lines.append("```\n" + body + "\n```\n")

        lines.append("## Study E7 — explanation fidelity\n")
        rows = comparative.study_explainability(seed=seed)
        body = "\n".join(
            f"  {row['model']:6s} coverage={row['coverage']:.3f} "
            f"validity={row['validity']:.3f}"
            for row in rows
        )
        lines.append("```\n" + body + "\n```\n")
    return lines


def build_report(fast: bool = True, seed: int = 0) -> str:
    """Assemble the markdown reproduction report and return it."""
    lines: list[str] = [
        "# kgrec reproduction report",
        "",
        f"mode: {'fast' if fast else 'full'}, seed: {seed}",
        "",
        "## Artifacts",
        "",
    ]
    for table_fn in (tables.table1, tables.table2, tables.table3, tables.table4):
        lines.append("```\n" + table_fn() + "\n```\n")

    fig = figure1.run_figure1()
    lines.append("## Figure 1\n")
    lines.append("```\n" + figure1.render_figure1() + "\n```\n")
    lines.append(
        f"figure-1 claims: top2={fig['top2_matches_figure']}, "
        f"avatar-path={fig['avatar_path_ok']}, "
        f"blood-diamond-path={fig['blood_diamond_path_ok']}\n"
    )

    lines.extend(_study_section(fast, seed))
    return "\n".join(lines)


def write_report(path: str | Path, fast: bool = True, seed: int = 0) -> Path:
    """Build the report and write it to ``path``."""
    path = Path(path)
    path.write_text(build_report(fast=fast, seed=seed), encoding="utf-8")
    return path
