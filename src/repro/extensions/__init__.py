"""Extensions implementing the survey's Section 6 future directions:
cross-domain preference propagation, user side information, and dynamic
(drifting-preference) recommendation."""

from .cross_domain import PPGN, make_cross_domain_pair
from .dynamic import RecencyKNN, make_dynamic_dataset, temporal_split
from .user_side import attach_user_attributes

__all__ = [
    "PPGN",
    "make_cross_domain_pair",
    "attach_user_attributes",
    "make_dynamic_dataset",
    "temporal_split",
    "RecencyKNN",
]
