"""Cross-domain recommendation via preference propagation (survey §6).

The survey's cross-domain direction cites PPGN (Zhao et al., CIKM 2019):
put users and the items of *several* domains into one graph and let a
graph network propagate preference across domains, so a target domain with
sparse feedback borrows evidence from a denser source domain.

* :func:`make_cross_domain_pair` — two scenario datasets sharing the same
  users (identical latent tastes), a dense source and a sparse target.
* :class:`PPGN` — preference propagation over the joint user-item graph of
  both domains (GCN-style, trained with BPR on both domains' feedback),
  scored in the target domain.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

from repro.autograd import nn, ops
from repro.autograd.tensor import Tensor
from repro.core.dataset import Dataset
from repro.core.exceptions import DataError
from repro.core.rng import ensure_rng
from repro.data.scenarios import BOOK_SCHEMA, MOVIE_SCHEMA
from repro.data.synthetic import generate_dataset

from ..models.common import GradientRecommender

__all__ = ["make_cross_domain_pair", "PPGN"]


def make_cross_domain_pair(
    num_users: int = 80,
    num_factors: int = 6,
    source_interactions: float = 20.0,
    target_interactions: float = 4.0,
    seed: int | np.random.Generator | None = 0,
    source_schema=MOVIE_SCHEMA,
    target_schema=BOOK_SCHEMA,
) -> tuple[Dataset, Dataset]:
    """A (dense source, sparse target) dataset pair with shared users."""
    rng = ensure_rng(seed)
    user_latent = np.stack(
        [rng.dirichlet(np.full(num_factors, 0.4)) for __ in range(num_users)]
    )
    source = generate_dataset(
        source_schema,
        num_users=num_users,
        num_factors=num_factors,
        mean_interactions=source_interactions,
        user_latent=user_latent,
        seed=rng,
    )
    target = generate_dataset(
        target_schema,
        num_users=num_users,
        num_factors=num_factors,
        mean_interactions=target_interactions,
        user_latent=user_latent,
        seed=rng,
    )
    return source, target


class PPGN(GradientRecommender):
    """Preference Propagation GraphNet over two domains' joint graph.

    ``fit`` receives the *target* dataset; the *source* dataset is supplied
    at construction.  The joint graph has one node per user (shared), per
    source item, and per target item; edges are the interactions of both
    domains.  Two normalized-adjacency propagation layers produce the node
    states; scoring is the inner product of propagated user and target-item
    states, trained with BPR on the target feedback (the source feedback
    shapes the graph structure).
    """

    requires_kg = False

    def __init__(self, source: Dataset, dim: int = 16, num_layers: int = 2, **kwargs) -> None:
        super().__init__(dim=dim, loss="bpr", **kwargs)
        self.source = source
        self.num_layers = num_layers

    def _build(self, dataset: Dataset, rng: np.random.Generator) -> None:
        if self.source.num_users != dataset.num_users:
            raise DataError("source and target must share the user set")
        m = dataset.num_users
        n_src = self.source.num_items
        n_tgt = dataset.num_items
        total = m + n_src + n_tgt
        self._user_offset = 0
        self._src_offset = m
        self._tgt_offset = m + n_src

        rows: list[int] = []
        cols: list[int] = []
        for u, v in self.source.interactions.pairs():
            rows += [u, self._src_offset + v]
            cols += [self._src_offset + v, u]
        for u, v in dataset.interactions.pairs():
            rows += [u, self._tgt_offset + v]
            cols += [self._tgt_offset + v, u]
        adj = sp.csr_matrix(
            (np.ones(len(rows)), (rows, cols)), shape=(total, total)
        ).toarray()
        adj += np.eye(total)
        deg = adj.sum(axis=1, keepdims=True)
        self._adjacency = adj / np.maximum(deg, 1.0)

        self.node = nn.Embedding(total, self.dim, seed=rng)
        self.layers = [nn.Linear(self.dim, self.dim, seed=rng) for __ in range(self.num_layers)]

    def _propagate(self) -> Tensor:
        x = self.node.weight
        for i, layer in enumerate(self.layers):
            x = layer(Tensor(self._adjacency) @ x)
            x = ops.relu(x) if i < self.num_layers - 1 else ops.tanh(x)
        return x

    def _score_batch(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        table = self._propagate()
        u = table[users]
        v = table[self._tgt_offset + items]
        return (u * v).sum(axis=1)

    def score_all(self, user_id: int) -> np.ndarray:
        table = self._propagate().numpy()
        u = table[user_id]
        items = table[self._tgt_offset : self._tgt_offset + self.fitted_dataset.num_items]
        return items @ u
