"""Dynamic recommendation (survey §6, first future direction).

The survey argues static preference models miss rapidly-changing interests
and points to dynamic graph attention (DGRec).  This module provides the
ingredients to study that at library scale:

* :func:`make_dynamic_dataset` — a scenario whose users' latent tastes
  *drift* across discrete time periods, with per-interaction timestamps.
* :func:`temporal_split` — train on the past, test on the final period
  (the only split that exposes drift).
* :class:`RecencyKNN` — item-based CF whose user profile decays with
  interaction age; ``decay=1`` recovers the static ItemKNN, smaller values
  track the drifting interest.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigError, DataError
from repro.core.interactions import InteractionMatrix
from repro.core.recommender import Recommender
from repro.core.rng import ensure_rng
from repro.data.scenarios import MOVIE_SCHEMA
from repro.data.synthetic import generate_dataset

__all__ = ["make_dynamic_dataset", "temporal_split", "RecencyKNN"]


def make_dynamic_dataset(
    schema=MOVIE_SCHEMA,
    num_users: int = 60,
    num_items: int = 90,
    num_factors: int = 6,
    num_periods: int = 3,
    interactions_per_period: int = 5,
    drift: float = 1.0,
    score_noise: float = 0.25,
    seed: int | np.random.Generator | None = 0,
) -> Dataset:
    """A dataset whose users' tastes drift over ``num_periods`` epochs.

    Each user has a start and an end taste vector; period ``t`` interpolates
    between them with weight ``drift * t / (num_periods - 1)`` (``drift=0``
    freezes preferences; ``drift=1`` fully migrates them).  Every
    interaction carries its period in ``extra['interaction_times']``, a
    dense ``(m, n)`` array with ``-1`` for unobserved pairs.
    """
    if num_periods < 2:
        raise ConfigError("need at least two periods for a dynamic dataset")
    if not 0.0 <= drift <= 1.0:
        raise ConfigError("drift must be in [0, 1]")
    rng = ensure_rng(seed)

    # One static world supplies the items and the KG.
    base = generate_dataset(
        schema,
        num_users=num_users,
        num_items=num_items,
        num_factors=num_factors,
        mean_interactions=interactions_per_period,
        seed=rng,
    )
    item_latent = base.extra["item_latent"]

    start = np.stack(
        [rng.dirichlet(np.full(num_factors, 0.4)) for __ in range(num_users)]
    )
    end = np.stack(
        [rng.dirichlet(np.full(num_factors, 0.4)) for __ in range(num_users)]
    )

    times = np.full((num_users, num_items), -1, dtype=np.int64)
    users_list: list[int] = []
    items_list: list[int] = []
    for period in range(num_periods):
        alpha = drift * period / (num_periods - 1)
        latent = (1.0 - alpha) * start + alpha * end
        scores = latent @ item_latent.T
        scores += rng.normal(0.0, score_noise, scores.shape)
        for user in range(num_users):
            row = scores[user].copy()
            row[times[user] >= 0] = -np.inf  # one timestamp per pair
            k = min(interactions_per_period, int((row > -np.inf).sum()))
            top = np.argpartition(-row, k - 1)[:k]
            for item in top:
                times[user, int(item)] = period
                users_list.append(user)
                items_list.append(int(item))

    interactions = InteractionMatrix(
        np.asarray(users_list), np.asarray(items_list), num_users, num_items
    )
    return Dataset(
        name=f"dynamic-{schema.scenario}",
        interactions=interactions,
        kg=base.kg,
        item_entities=base.item_entities,
        item_text=base.item_text,
        extra={
            "scenario": schema.scenario,
            "num_periods": num_periods,
            "drift": drift,
            "interaction_times": times,
            "user_latent_start": start,
            "user_latent_end": end,
            "item_latent": item_latent,
        },
    )


def temporal_split(dataset: Dataset) -> tuple[Dataset, Dataset]:
    """Train on all periods but the last; test on the final period."""
    times = dataset.extra.get("interaction_times")
    if times is None:
        raise DataError("dataset has no extra['interaction_times']")
    last = int(times.max())
    if last < 1:
        raise DataError("need at least two observed periods to split")
    train_pairs = np.argwhere((times >= 0) & (times < last))
    test_pairs = np.argwhere(times == last)
    make = lambda pairs: dataset.with_interactions(  # noqa: E731
        InteractionMatrix.from_pairs(pairs, dataset.num_users, dataset.num_items)
    )
    return make(train_pairs), make(test_pairs)


class RecencyKNN(Recommender):
    """Item-based CF with an exponentially time-decayed user profile.

    ``score(u) = sum_{v in history} decay^(age_v) * sim[v, :]`` where
    ``age_v`` is how many periods before the latest training period the
    interaction happened.  ``decay=1.0`` is the static ItemKNN profile.
    """

    def __init__(self, decay: float = 0.5, num_neighbors: int = 20) -> None:
        super().__init__()
        if not 0.0 < decay <= 1.0:
            raise ConfigError("decay must be in (0, 1]")
        self.decay = decay
        self.num_neighbors = num_neighbors
        self._similarity = None
        self._weights: np.ndarray | None = None

    def fit(self, dataset: Dataset) -> "RecencyKNN":
        times = dataset.extra.get("interaction_times")
        if times is None:
            raise DataError("RecencyKNN needs extra['interaction_times']")
        self._mark_fitted(dataset)
        from ..models.baselines.knn import _cosine_similarity, _truncate_topk

        matrix = dataset.interactions.to_csr()
        self._similarity = _truncate_topk(
            _cosine_similarity(matrix, 0.0), self.num_neighbors
        )
        # Recency weights over the *training* interactions only.
        observed = dataset.interactions.to_dense() > 0
        masked_times = np.where(observed, times, -1)
        latest = masked_times.max()
        ages = np.where(observed, latest - masked_times, 0)
        self._weights = np.where(observed, self.decay**ages, 0.0)
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        self.fitted_dataset
        row = sparse.csr_matrix(self._weights[user_id])
        return np.asarray((row @ self._similarity).todense()).ravel()
