"""User side information in the KG (survey §6).

The survey observes that almost all collected works model *item* side
information and names user side information (demographics, social links)
as a research direction, citing GraphRec and AKGE's user-relation variant.

:func:`attach_user_attributes` extends a lifted user-item graph with
demographic-style user attribute entities whose assignment correlates with
the users' latent tastes (strength controllable), so any model operating on
the lifted graph — KGAT, IntentGC, PGPR — transparently benefits.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import DataError
from repro.core.rng import ensure_rng
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleStore

__all__ = ["attach_user_attributes"]


def attach_user_attributes(
    lifted: Dataset,
    num_attributes: int = 8,
    relation_label: str = "has_demographic",
    signal: float = 1.0,
    seed: int | np.random.Generator | None = 0,
) -> Dataset:
    """Add user-attribute entities to a lifted user-item graph.

    Each user links to one demographic entity.  With probability ``signal``
    the entity is chosen by the user's dominant latent factor (so users who
    share tastes share demographics); otherwise uniformly at random.
    Requires the generator-produced ``user_latent`` in ``extra``.
    """
    if lifted.user_entities is None or lifted.kg is None:
        raise DataError("attach_user_attributes needs a lifted dataset")
    if "user_latent" not in lifted.extra:
        raise DataError("dataset lacks extra['user_latent']")
    if not 0.0 <= signal <= 1.0:
        raise DataError("signal must be in [0, 1]")
    rng = ensure_rng(seed)
    kg = lifted.kg
    user_latent = lifted.extra["user_latent"]
    num_factors = user_latent.shape[1]

    attr_offset = kg.num_entities
    relation_id = kg.num_relations
    # Map factors onto attribute entities round-robin.
    factor_to_attr = rng.permutation(num_attributes)[
        np.arange(num_factors) % num_attributes
    ]

    triples = [tuple(t) for t in kg.triples().tolist()]
    for user in range(lifted.num_users):
        if rng.random() < signal:
            attr = int(factor_to_attr[int(np.argmax(user_latent[user]))])
        else:
            attr = int(rng.integers(0, num_attributes))
        triples.append(
            (int(lifted.user_entities[user]), relation_id, attr_offset + attr)
        )

    entity_labels = None
    if kg.entity_labels is not None:
        entity_labels = kg.entity_labels + [
            f"demographic:{a}" for a in range(num_attributes)
        ]
    relation_labels = None
    if kg.relation_labels is not None:
        relation_labels = kg.relation_labels + [relation_label]
    entity_types = None
    type_names = None
    if kg.entity_types is not None:
        demo_type = int(kg.entity_types.max()) + 1
        entity_types = np.concatenate(
            [kg.entity_types, np.full(num_attributes, demo_type, dtype=np.int64)]
        )
        if kg.type_names is not None:
            type_names = kg.type_names + ["demographic"]

    store = TripleStore.from_triples(
        triples,
        num_entities=kg.num_entities + num_attributes,
        num_relations=kg.num_relations + 1,
    )
    enriched = KnowledgeGraph(
        store,
        entity_labels=entity_labels,
        relation_labels=relation_labels,
        entity_types=entity_types,
        type_names=type_names,
    )
    return Dataset(
        name=lifted.name + "+demo",
        interactions=lifted.interactions,
        kg=enriched,
        item_entities=lifted.item_entities,
        user_entities=lifted.user_entities,
        item_text=lifted.item_text,
        extra={**lifted.extra, "demographic_relation": relation_id},
    )
