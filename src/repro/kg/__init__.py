"""Knowledge-graph data structures: triples, typed graphs, meta-paths,
ripple sets, sampling, graph builders, and link-prediction evaluation."""

from .analysis import (
    connected_components,
    degree_distribution,
    graph_summary,
    relation_histogram,
)
from .builders import build_user_item_graph, ensure_user_item_graph
from .completion import LinkPredictionResult, evaluate_link_prediction
from .graph import KnowledgeGraph
from .hin import NetworkSchema
from .metapath import (
    MetaGraph,
    MetaPath,
    Path,
    enumerate_paths,
    metagraph_adjacency,
    metapath_adjacency,
    pathcount_similarity,
    pathsim_matrix,
)
from .ripple import (
    RippleSet,
    entity_ripple_sets,
    relevant_entities,
    user_ripple_sets,
)
from .sampling import NeighborCache, corrupt_batch
from .triples import TripleStore

__all__ = [
    "TripleStore",
    "KnowledgeGraph",
    "NetworkSchema",
    "MetaPath",
    "MetaGraph",
    "Path",
    "enumerate_paths",
    "metapath_adjacency",
    "metagraph_adjacency",
    "pathsim_matrix",
    "pathcount_similarity",
    "RippleSet",
    "relevant_entities",
    "user_ripple_sets",
    "entity_ripple_sets",
    "NeighborCache",
    "corrupt_batch",
    "build_user_item_graph",
    "ensure_user_item_graph",
    "graph_summary",
    "relation_histogram",
    "degree_distribution",
    "connected_components",
    "LinkPredictionResult",
    "evaluate_link_prediction",
]
