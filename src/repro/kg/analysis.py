"""Knowledge-graph analysis utilities.

Dataset summaries, sanity checks, and the structural statistics that the
survey's dataset section reports informally (graph size, relation mix,
connectivity).  Used by examples and the Table 4 bench.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .graph import KnowledgeGraph

__all__ = [
    "relation_histogram",
    "degree_distribution",
    "connected_components",
    "graph_summary",
]


def relation_histogram(kg: KnowledgeGraph) -> dict[str, int]:
    """Fact count per relation label."""
    counts = np.bincount(kg.store.relations, minlength=kg.num_relations)
    return {kg.relation_label(r): int(c) for r, c in enumerate(counts)}


def degree_distribution(kg: KnowledgeGraph) -> dict[str, float]:
    """Summary statistics of the (undirected) entity degree distribution."""
    degrees = np.asarray(
        [kg.degree(e) for e in range(kg.num_entities)], dtype=np.float64
    )
    return {
        "min": float(degrees.min()),
        "median": float(np.median(degrees)),
        "mean": float(degrees.mean()),
        "max": float(degrees.max()),
        "isolated": int((degrees == 0).sum()),
    }


def connected_components(kg: KnowledgeGraph) -> list[np.ndarray]:
    """Undirected connected components, largest first."""
    seen = np.zeros(kg.num_entities, dtype=bool)
    components: list[np.ndarray] = []
    for start in range(kg.num_entities):
        if seen[start]:
            continue
        queue = deque([start])
        seen[start] = True
        members = [start]
        while queue:
            node = queue.popleft()
            for __, nbr in kg.neighbors(node, undirected=True):
                if not seen[nbr]:
                    seen[nbr] = True
                    members.append(nbr)
                    queue.append(nbr)
        components.append(np.asarray(sorted(members), dtype=np.int64))
    components.sort(key=len, reverse=True)
    return components


def graph_summary(kg: KnowledgeGraph) -> dict:
    """One-stop structural summary (sizes, relations, degrees, components)."""
    components = connected_components(kg)
    return {
        "entities": kg.num_entities,
        "relations": kg.num_relations,
        "triples": kg.num_triples,
        "relation_histogram": relation_histogram(kg),
        "degree": degree_distribution(kg),
        "num_components": len(components),
        "largest_component": int(len(components[0])) if components else 0,
    }
