"""Graph construction: item graphs and user-item graphs.

The survey distinguishes two ways datasets turn into KGs (Section 4.1/5):

* an **item graph** — items and their attributes only (CKE, DKN, MKR, ...),
  which the scenario generators in :mod:`repro.data` produce directly;
* a **user-item graph** — users are added as entities and their feedback as
  an ``interact`` relation (CFKG, KGAT, path-based methods).

:func:`build_user_item_graph` performs the item-graph -> user-item-graph
lift for any dataset with an aligned KG.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import GraphError

from .graph import KnowledgeGraph
from .triples import TripleStore

__all__ = ["build_user_item_graph", "ensure_user_item_graph"]


def ensure_user_item_graph(dataset: Dataset, interact_label: str = "interacts") -> Dataset:
    """Lift to a user-item graph, or pass through if already lifted.

    Models that operate on user-item graphs call this so that datasets
    pre-enriched with user-side information (``repro.extensions``) are not
    lifted a second time.
    """
    if dataset.user_entities is not None:
        return dataset
    return build_user_item_graph(dataset, interact_label=interact_label)


def build_user_item_graph(
    dataset: Dataset, interact_label: str = "interacts"
) -> Dataset:
    """Lift a dataset with an item graph into one with a user-item graph.

    Users are appended as new entities (with a fresh ``user`` entity type),
    and one ``(user, interacts, item_entity)`` fact is added per *training*
    interaction.  Returns a new :class:`Dataset` whose ``kg`` is the lifted
    graph and whose ``user_entities`` alignment is populated.
    """
    if dataset.kg is None or dataset.item_entities is None:
        raise GraphError("dataset needs an aligned item graph to lift")
    kg = dataset.kg
    num_users = dataset.num_users

    user_entities = np.arange(
        kg.num_entities, kg.num_entities + num_users, dtype=np.int64
    )
    interact_relation = kg.num_relations

    pairs = dataset.interactions.pairs()
    new_heads = user_entities[pairs[:, 0]]
    new_tails = dataset.item_entities[pairs[:, 1]]
    keep = new_tails >= 0  # skip unaligned items
    triples = np.concatenate(
        [
            kg.triples(),
            np.stack(
                [new_heads[keep], np.full(keep.sum(), interact_relation), new_tails[keep]],
                axis=1,
            ),
        ]
    )

    entity_labels = None
    if kg.entity_labels is not None:
        entity_labels = kg.entity_labels + [f"user:{u}" for u in range(num_users)]
    relation_labels = None
    if kg.relation_labels is not None:
        relation_labels = kg.relation_labels + [interact_label]

    entity_types = None
    type_names = None
    if kg.entity_types is not None:
        user_type = int(kg.entity_types.max()) + 1
        entity_types = np.concatenate(
            [kg.entity_types, np.full(num_users, user_type, dtype=np.int64)]
        )
        if kg.type_names is not None:
            type_names = kg.type_names + ["user"]

    store = TripleStore.from_triples(
        triples,
        num_entities=kg.num_entities + num_users,
        num_relations=kg.num_relations + 1,
    )
    lifted = KnowledgeGraph(
        store,
        entity_labels=entity_labels,
        relation_labels=relation_labels,
        entity_types=entity_types,
        type_names=type_names,
    )
    return Dataset(
        name=dataset.name + "+users",
        interactions=dataset.interactions,
        kg=lifted,
        item_entities=dataset.item_entities,
        user_entities=user_entities,
        item_text=dataset.item_text,
        extra={**dataset.extra, "interact_relation": interact_relation},
    )
