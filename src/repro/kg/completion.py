"""Link-prediction evaluation for KG embedding models.

The standard KG completion protocol: for each test fact ``(h, r, t)``, rank
the true tail against all entities (and the true head likewise), filtering
out other known facts, then report MRR and Hits@K.  Used by the KGE bench
(Study E5) to compare translation-distance and semantic-matching models,
the comparison the survey's "Future Directions" section calls for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.exceptions import EvaluationError

from .triples import TripleStore

__all__ = ["LinkPredictionResult", "evaluate_link_prediction"]


@dataclass(frozen=True)
class LinkPredictionResult:
    """Aggregated filtered ranks over a test set."""

    mrr: float
    hits_at_1: float
    hits_at_3: float
    hits_at_10: float
    mean_rank: float
    num_queries: int

    def as_dict(self) -> dict[str, float]:
        return {
            "MRR": self.mrr,
            "Hits@1": self.hits_at_1,
            "Hits@3": self.hits_at_3,
            "Hits@10": self.hits_at_10,
            "MeanRank": self.mean_rank,
            "queries": float(self.num_queries),
        }


def evaluate_link_prediction(
    score_fn: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    test_triples: np.ndarray,
    known: TripleStore,
    num_entities: int,
    both_sides: bool = True,
) -> LinkPredictionResult:
    """Filtered link-prediction metrics.

    Parameters
    ----------
    score_fn:
        Vectorized plausibility function over parallel ``(h, r, t)`` arrays;
        *higher* means more plausible.
    test_triples:
        ``(n, 3)`` array of held-out facts.
    known:
        All facts (train + test) used for filtering competing candidates.
    both_sides:
        Rank both tail replacement and head replacement (the usual protocol).
    """
    test_triples = np.asarray(test_triples, dtype=np.int64)
    if test_triples.ndim != 2 or test_triples.shape[1] != 3:
        raise EvaluationError("test_triples must be (n, 3)")
    if test_triples.shape[0] == 0:
        raise EvaluationError("empty link-prediction test set")

    candidates = np.arange(num_entities, dtype=np.int64)
    ranks: list[int] = []
    for h, r, t in test_triples:
        ranks.append(
            _filtered_rank(score_fn, int(h), int(r), int(t), candidates, known, "tail")
        )
        if both_sides:
            ranks.append(
                _filtered_rank(
                    score_fn, int(h), int(r), int(t), candidates, known, "head"
                )
            )

    rank_arr = np.asarray(ranks, dtype=np.float64)
    return LinkPredictionResult(
        mrr=float((1.0 / rank_arr).mean()),
        hits_at_1=float((rank_arr <= 1).mean()),
        hits_at_3=float((rank_arr <= 3).mean()),
        hits_at_10=float((rank_arr <= 10).mean()),
        mean_rank=float(rank_arr.mean()),
        num_queries=len(ranks),
    )


def _filtered_rank(
    score_fn,
    h: int,
    r: int,
    t: int,
    candidates: np.ndarray,
    known: TripleStore,
    side: str,
) -> int:
    n = candidates.size
    if side == "tail":
        scores = score_fn(np.full(n, h), np.full(n, r), candidates)
        true_id = t
        mask = np.fromiter(
            ((h, r, int(c)) in known and int(c) != t for c in candidates),
            dtype=bool,
            count=n,
        )
    else:
        scores = score_fn(candidates, np.full(n, r), np.full(n, t))
        true_id = h
        mask = np.fromiter(
            ((int(c), r, t) in known and int(c) != h for c in candidates),
            dtype=bool,
            count=n,
        )
    scores = np.asarray(scores, dtype=np.float64).copy()
    scores[mask] = -np.inf  # filter competing true facts
    true_score = scores[true_id]
    # Rank = 1 + number of strictly better candidates; ties broken
    # optimistically-pessimistically averaged to keep the metric stable.
    better = int((scores > true_score).sum())
    equal = int((scores == true_score).sum()) - 1
    return better + 1 + equal // 2
