"""The :class:`KnowledgeGraph`: a typed, labeled triple store.

Matches the survey's definition: a directed graph whose nodes are entities
and whose edges are subject-property-object facts, viewed as an instance of
a heterogeneous information network when entity/relation types are present.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import GraphError

from .triples import TripleStore

__all__ = ["KnowledgeGraph"]


class KnowledgeGraph:
    """A knowledge graph ``G = (V, E)`` with optional labels and types.

    Parameters
    ----------
    store:
        The underlying facts.
    entity_labels, relation_labels:
        Optional human-readable names (one per id).
    entity_types:
        Optional integer type id per entity (the HIN mapping ``phi``).
    type_names, relation_type_names:
        Names for entity-type ids and (defaulting to relation labels) the
        relation-type mapping ``psi``.
    """

    def __init__(
        self,
        store: TripleStore,
        entity_labels: list[str] | None = None,
        relation_labels: list[str] | None = None,
        entity_types: np.ndarray | None = None,
        type_names: list[str] | None = None,
    ) -> None:
        self.store = store
        if entity_labels is not None and len(entity_labels) != store.num_entities:
            raise GraphError("need one label per entity")
        if relation_labels is not None and len(relation_labels) != store.num_relations:
            raise GraphError("need one label per relation")
        self.entity_labels = list(entity_labels) if entity_labels else None
        self.relation_labels = list(relation_labels) if relation_labels else None
        if entity_types is not None:
            entity_types = np.asarray(entity_types, dtype=np.int64)
            if entity_types.shape != (store.num_entities,):
                raise GraphError("need one type per entity")
        self.entity_types = entity_types
        self.type_names = list(type_names) if type_names else None
        self._entity_index: dict[str, int] | None = None
        self._relation_index: dict[str, int] | None = None

    # ------------------------------------------------------------------ #
    @classmethod
    def from_triples(
        cls,
        triples,
        num_entities: int,
        num_relations: int,
        **kwargs,
    ) -> "KnowledgeGraph":
        store = TripleStore.from_triples(triples, num_entities, num_relations)
        return cls(store, **kwargs)

    # ------------------------------------------------------------------ #
    @property
    def num_entities(self) -> int:
        return self.store.num_entities

    @property
    def num_relations(self) -> int:
        return self.store.num_relations

    @property
    def num_triples(self) -> int:
        return self.store.num_triples

    @property
    def is_typed(self) -> bool:
        return self.entity_types is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KnowledgeGraph(entities={self.num_entities}, "
            f"relations={self.num_relations}, triples={self.num_triples})"
        )

    # ------------------------------------------------------------------ #
    # labels and types
    # ------------------------------------------------------------------ #
    def entity_label(self, entity: int) -> str:
        if self.entity_labels is None:
            return f"e{entity}"
        return self.entity_labels[entity]

    def relation_label(self, relation: int) -> str:
        if self.relation_labels is None:
            return f"r{relation}"
        return self.relation_labels[relation]

    @staticmethod
    def _label_index(labels: list[str]) -> dict[str, int]:
        index: dict[str, int] = {}
        for i, label in enumerate(labels):
            index.setdefault(label, i)
        return index

    def entity_id(self, label: str) -> int:
        """Inverse of :meth:`entity_label` (lazily built dict, O(1) lookup)."""
        if self.entity_labels is None:
            raise GraphError("graph has no entity labels")
        if self._entity_index is None:
            self._entity_index = self._label_index(self.entity_labels)
        try:
            return self._entity_index[label]
        except KeyError:
            raise GraphError(f"no entity labeled {label!r}") from None

    def relation_id(self, label: str) -> int:
        if self.relation_labels is None:
            raise GraphError("graph has no relation labels")
        if self._relation_index is None:
            self._relation_index = self._label_index(self.relation_labels)
        try:
            return self._relation_index[label]
        except KeyError:
            raise GraphError(f"no relation labeled {label!r}") from None

    def type_of(self, entity: int) -> int:
        """The HIN entity-type id ``phi(entity)``."""
        if self.entity_types is None:
            raise GraphError("graph has no entity types")
        return int(self.entity_types[entity])

    def type_name(self, type_id: int) -> str:
        if self.type_names is None:
            return f"type{type_id}"
        return self.type_names[type_id]

    def entities_of_type(self, type_id: int) -> np.ndarray:
        if self.entity_types is None:
            raise GraphError("graph has no entity types")
        return np.flatnonzero(self.entity_types == type_id).astype(np.int64)

    # ------------------------------------------------------------------ #
    # delegated graph access
    # ------------------------------------------------------------------ #
    def neighbors(self, entity: int, undirected: bool = True) -> list[tuple[int, int]]:
        return self.store.neighbors(entity, undirected=undirected)

    def degree(self, entity: int) -> int:
        return self.store.degree(entity)

    def has_fact(self, head: int, relation: int, tail: int) -> bool:
        return (head, relation, tail) in self.store

    def triples(self) -> np.ndarray:
        return self.store.triples()

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #
    def subgraph(self, entities: np.ndarray) -> tuple["KnowledgeGraph", np.ndarray]:
        """Induced subgraph on ``entities``.

        Returns ``(subgraph, mapping)`` where ``mapping[i]`` is the original
        entity id of the subgraph's entity ``i``.  Relations keep their ids
        (and labels); only facts with both endpoints inside ``entities``
        survive.  Labels and types are carried over.
        """
        mapping = np.unique(np.asarray(entities, dtype=np.int64))
        if mapping.size and (mapping.min() < 0 or mapping.max() >= self.num_entities):
            raise GraphError("subgraph entity id out of range")
        heads, rels, tails = self.store.heads, self.store.relations, self.store.tails
        if mapping.size:
            # mapping is sorted, so searchsorted positions double as the new
            # (compacted) entity ids wherever the lookup is an exact hit.
            hpos = np.searchsorted(mapping, heads)
            tpos = np.searchsorted(mapping, tails)
            hpos_c = np.minimum(hpos, mapping.size - 1)
            tpos_c = np.minimum(tpos, mapping.size - 1)
            keep = (mapping[hpos_c] == heads) & (mapping[tpos_c] == tails)
            new_h, new_r, new_t = hpos[keep], rels[keep], tpos[keep]
        else:
            new_h = new_r = new_t = np.empty(0, dtype=np.int64)
        store = TripleStore(
            new_h,
            new_r,
            new_t,
            num_entities=max(1, mapping.size),
            num_relations=self.num_relations,
        )
        sub = KnowledgeGraph(
            store,
            entity_labels=(
                [self.entity_label(int(e)) for e in mapping]
                if self.entity_labels is not None and mapping.size
                else None
            ),
            relation_labels=self.relation_labels,
            entity_types=(
                self.entity_types[mapping]
                if self.entity_types is not None and mapping.size
                else None
            ),
            type_names=self.type_names,
        )
        return sub, mapping

    # ------------------------------------------------------------------ #
    # exports
    # ------------------------------------------------------------------ #
    def to_networkx(self):
        """A ``networkx.MultiDiGraph`` view (for analysis and examples)."""
        import networkx as nx

        g = nx.MultiDiGraph()
        for e in range(self.num_entities):
            attrs = {"label": self.entity_label(e)}
            if self.entity_types is not None:
                attrs["type"] = self.type_name(self.type_of(e))
            g.add_node(e, **attrs)
        for h, r, t in self.triples():
            g.add_edge(int(h), int(t), relation=self.relation_label(int(r)))
        return g

    def describe(self) -> dict[str, float]:
        """Basic statistics used in dataset summaries."""
        degrees = self.store.degree_batch(
            np.arange(self.num_entities, dtype=np.int64)
        ).astype(np.float64)
        return {
            "entities": self.num_entities,
            "relations": self.num_relations,
            "triples": self.num_triples,
            "mean_degree": float(degrees.mean()) if degrees.size else 0.0,
            "max_degree": float(degrees.max()) if degrees.size else 0.0,
        }
