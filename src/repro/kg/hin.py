"""Heterogeneous information network schema utilities.

A HIN is a typed graph with entity-type mapping ``phi`` and link-type
mapping ``psi`` (Section 3).  :class:`NetworkSchema` is the type-level graph
``G_T = (A, R)`` induced by a typed :class:`~repro.kg.graph.KnowledgeGraph`:
it records which ``(source type, relation, target type)`` signatures occur,
validates meta-paths against them, and enumerates candidate meta-paths — the
step that traditional path-based methods delegate to domain experts and that
RuleRec automates.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import GraphError

from .graph import KnowledgeGraph
from .metapath import MetaPath

__all__ = ["NetworkSchema"]


class NetworkSchema:
    """The network schema of a typed knowledge graph."""

    def __init__(self, kg: KnowledgeGraph) -> None:
        if kg.entity_types is None:
            raise GraphError("network schema requires a typed graph")
        self.kg = kg
        signatures: set[tuple[int, int, int]] = set()
        types = kg.entity_types
        for h, r, t in kg.triples():
            signatures.add((int(types[h]), int(r), int(types[t])))
        self.signatures = frozenset(signatures)
        self.num_types = int(types.max()) + 1 if types.size else 0

    # ------------------------------------------------------------------ #
    def allows(self, src_type: int, relation: int, dst_type: int) -> bool:
        """Whether the schema contains the (possibly reversed) signature."""
        return (src_type, relation, dst_type) in self.signatures or (
            dst_type,
            relation,
            src_type,
        ) in self.signatures

    def steps_from(self, src_type: int) -> list[tuple[int, int]]:
        """``(relation, dst_type)`` steps available from ``src_type``."""
        steps: set[tuple[int, int]] = set()
        for a, r, b in self.signatures:
            if a == src_type:
                steps.add((r, b))
            if b == src_type:
                steps.add((r, a))
        return sorted(steps)

    def validate(self, metapath: MetaPath) -> None:
        """Raise :class:`GraphError` if the meta-path leaves the schema."""
        for a, r, b in zip(
            metapath.node_types[:-1],
            metapath.relation_types,
            metapath.node_types[1:],
        ):
            if not self.allows(a, r, b):
                raise GraphError(
                    f"schema has no step {self.kg.type_name(a)} "
                    f"-[{self.kg.relation_label(r)}]-> {self.kg.type_name(b)}"
                )

    def enumerate_metapaths(
        self,
        src_type: int,
        dst_type: int,
        max_length: int = 3,
        max_paths: int = 100,
    ) -> list[MetaPath]:
        """All schema-valid meta-paths ``src_type ~> dst_type``.

        Generated in breadth-first order (shortest first), bounded by
        ``max_length`` steps and ``max_paths`` results.
        """
        if max_length < 1:
            raise GraphError("max_length must be >= 1")
        results: list[MetaPath] = []
        frontier: list[tuple[tuple[int, ...], tuple[int, ...]]] = [
            ((src_type,), ())
        ]
        for __ in range(max_length):
            next_frontier: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
            for node_types, rel_types in frontier:
                for relation, nxt in self.steps_from(node_types[-1]):
                    candidate = (node_types + (nxt,), rel_types + (relation,))
                    if nxt == dst_type:
                        results.append(MetaPath(candidate[0], candidate[1]))
                        if len(results) >= max_paths:
                            return results
                    next_frontier.append(candidate)
            frontier = next_frontier
        return results

    def describe(self) -> list[str]:
        """Readable signature list, sorted."""
        lines = []
        for a, r, b in sorted(self.signatures):
            lines.append(
                f"{self.kg.type_name(a)} -[{self.kg.relation_label(r)}]-> "
                f"{self.kg.type_name(b)}"
            )
        return lines
