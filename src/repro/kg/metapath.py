"""Meta-paths, meta-graphs, PathSim, and path enumeration (Section 3).

A meta-path ``P = A_0 -R_1-> A_1 ... -R_k-> A_k`` is a relation sequence over
the network schema of a HIN; a meta-graph combines several meta-paths between
the same endpoint types.  This module provides:

* :class:`MetaPath` / :class:`MetaGraph` — schema-level path descriptions,
* :func:`metapath_adjacency` — the commuting matrix counting path instances,
* :func:`pathsim_matrix` — PathSim similarity (survey Eq. 12),
* :func:`enumerate_paths` — instance-level paths between two entities,
  used by RKGE/KPRN/MCRec-style models and by explanation extraction.

Meta-path traversal treats relations as undirected (each step may follow a
fact forward or backward), the convention in HIN recommendation where e.g.
``user -rates-> movie <-rates- user`` is a single meta-path UMU.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.exceptions import GraphError

from .graph import KnowledgeGraph

__all__ = [
    "MetaPath",
    "MetaGraph",
    "metapath_adjacency",
    "metagraph_adjacency",
    "pathsim_matrix",
    "pathcount_similarity",
    "enumerate_paths",
    "Path",
]


@dataclass(frozen=True)
class MetaPath:
    """A schema-level path ``A_0 -R_1-> A_1 ... -R_k-> A_k``.

    ``node_types`` are entity-type ids and ``relation_types`` relation ids;
    ``len(node_types) == len(relation_types) + 1``.
    """

    node_types: tuple[int, ...]
    relation_types: tuple[int, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if len(self.node_types) != len(self.relation_types) + 1:
            raise GraphError("meta-path needs len(node_types)-1 relation types")
        if len(self.node_types) < 2:
            raise GraphError("meta-path must contain at least one step")

    @property
    def length(self) -> int:
        """Number of steps (edges) in the meta-path."""
        return len(self.relation_types)

    @property
    def is_symmetric(self) -> bool:
        """Whether the path starts and ends at the same entity type."""
        return self.node_types[0] == self.node_types[-1]

    def describe(self, kg: KnowledgeGraph | None = None) -> str:
        if kg is None:
            nodes = [f"T{t}" for t in self.node_types]
            rels = [f"r{r}" for r in self.relation_types]
        else:
            nodes = [kg.type_name(t) for t in self.node_types]
            rels = [kg.relation_label(r) for r in self.relation_types]
        parts = [nodes[0]]
        for r, n in zip(rels, nodes[1:]):
            parts.append(f"-[{r}]-> {n}")
        return " ".join(parts)


@dataclass(frozen=True)
class MetaGraph:
    """A combination of meta-paths sharing endpoint types (FMG, Section 3).

    ``combine='sum'`` counts instances of any member path (OR semantics);
    ``combine='hadamard'`` counts pairs of endpoints connected by *all*
    member paths simultaneously (AND semantics), the stricter structure
    that gives meta-graphs their extra expressiveness.
    """

    paths: tuple[MetaPath, ...]
    combine: str = "hadamard"
    name: str = ""

    def __post_init__(self) -> None:
        if not self.paths:
            raise GraphError("meta-graph needs at least one meta-path")
        if self.combine not in ("sum", "hadamard"):
            raise GraphError("combine must be 'sum' or 'hadamard'")
        first, last = self.paths[0].node_types[0], self.paths[0].node_types[-1]
        for p in self.paths[1:]:
            if p.node_types[0] != first or p.node_types[-1] != last:
                raise GraphError("meta-graph paths must share endpoint types")


def _relation_adjacency(
    kg: KnowledgeGraph, relation: int, src_type: int, dst_type: int
) -> sparse.csr_matrix:
    """Undirected adjacency for one relation, restricted to typed endpoints."""
    if kg.entity_types is None:
        raise GraphError("meta-path operations require a typed graph")
    n = kg.num_entities
    idx = kg.store.with_relation(relation)
    heads = kg.store.heads[idx]
    tails = kg.store.tails[idx]
    rows = np.concatenate([heads, tails])
    cols = np.concatenate([tails, heads])
    types = kg.entity_types
    keep = (types[rows] == src_type) & (types[cols] == dst_type)
    rows, cols = rows[keep], cols[keep]
    data = np.ones(rows.size)
    mat = sparse.csr_matrix((data, (rows, cols)), shape=(n, n))
    mat.sum_duplicates()
    mat.data[:] = 1.0  # forward+backward of a self-symmetric fact counts once
    return mat


def metapath_adjacency(kg: KnowledgeGraph, metapath: MetaPath) -> sparse.csr_matrix:
    """Commuting matrix ``M`` with ``M[x, y]`` = #path instances x ~> y."""
    matrices = [
        _relation_adjacency(kg, r, a, b)
        for r, a, b in zip(
            metapath.relation_types, metapath.node_types[:-1], metapath.node_types[1:]
        )
    ]
    result = matrices[0]
    for mat in matrices[1:]:
        result = result @ mat
    return result.tocsr()


def metagraph_adjacency(kg: KnowledgeGraph, metagraph: MetaGraph) -> sparse.csr_matrix:
    """Instance-count matrix for a meta-graph (AND/OR combination)."""
    mats = [metapath_adjacency(kg, p) for p in metagraph.paths]
    result = mats[0]
    for mat in mats[1:]:
        result = result.multiply(mat) if metagraph.combine == "hadamard" else result + mat
    return result.tocsr()


def pathsim_matrix(kg: KnowledgeGraph, metapath: MetaPath) -> sparse.csr_matrix:
    """PathSim (Eq. 12): ``s_xy = 2 M_xy / (M_xx + M_yy)``.

    Requires a symmetric meta-path.  Returned matrix is restricted to
    entities of the endpoint type; other rows/columns are zero.
    """
    if not metapath.is_symmetric:
        raise GraphError("PathSim requires a symmetric meta-path")
    m = metapath_adjacency(kg, metapath).tocoo()
    diag = m.tocsr().diagonal()
    denom = diag[m.row] + diag[m.col]
    with np.errstate(divide="ignore", invalid="ignore"):
        data = np.where(denom > 0, 2.0 * m.data / denom, 0.0)
    out = sparse.csr_matrix((data, (m.row, m.col)), shape=m.shape)
    out.eliminate_zeros()
    return out


def pathcount_similarity(
    kg: KnowledgeGraph, metapath: MetaPath, normalize: bool = True
) -> sparse.csr_matrix:
    """Raw or row-normalized path-count similarity (HeteRec's diffusion)."""
    m = metapath_adjacency(kg, metapath)
    if not normalize:
        return m
    row_sums = np.asarray(m.sum(axis=1)).ravel()
    inv = np.divide(
        1.0, row_sums, out=np.zeros_like(row_sums, dtype=np.float64), where=row_sums > 0
    )
    return sparse.diags(inv) @ m


@dataclass(frozen=True)
class Path:
    """One concrete path instance ``e_0 -r_1-> e_1 ... -r_k-> e_k``."""

    entities: tuple[int, ...]
    relations: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.entities) != len(self.relations) + 1:
            raise GraphError("path needs len(entities)-1 relations")

    @property
    def length(self) -> int:
        return len(self.relations)

    def render(self, kg: KnowledgeGraph | None = None) -> str:
        if kg is None:
            ents = [f"e{e}" for e in self.entities]
            rels = [f"r{r}" for r in self.relations]
        else:
            ents = [kg.entity_label(e) for e in self.entities]
            rels = [kg.relation_label(r) for r in self.relations]
        parts = [ents[0]]
        for r, e in zip(rels, ents[1:]):
            parts.append(f"-[{r}]-> {e}")
        return " ".join(parts)


def enumerate_paths(
    kg: KnowledgeGraph,
    source: int,
    target: int,
    max_length: int = 3,
    max_paths: int = 50,
    undirected: bool = True,
) -> list[Path]:
    """All simple paths source ~> target up to ``max_length`` steps.

    Bounded depth-first search without revisiting entities; stops after
    ``max_paths`` results.  This realizes the survey's path set
    ``P(e_i, e_j) = {p_1, ..., p_s}`` used by RKGE/KPRN and by the
    explanation machinery.
    """
    if max_length < 1:
        raise GraphError("max_length must be >= 1")
    results: list[Path] = []
    # DFS stack of (entity, entity_path, relation_path).
    stack: list[tuple[int, tuple[int, ...], tuple[int, ...]]] = [
        (source, (source,), ())
    ]
    while stack and len(results) < max_paths:
        node, ent_path, rel_path = stack.pop()
        if len(rel_path) >= max_length:
            continue
        for relation, neighbor in kg.neighbors(node, undirected=undirected):
            if neighbor == target:
                results.append(
                    Path(ent_path + (neighbor,), rel_path + (relation,))
                )
                if len(results) >= max_paths:
                    break
            elif neighbor not in ent_path:
                stack.append(
                    (neighbor, ent_path + (neighbor,), rel_path + (relation,))
                )
    return results
