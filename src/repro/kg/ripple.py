"""Ripple sets and relevant entities (Section 3 definitions).

RippleNet-style models propagate user preference along the KG starting from
the user's historical items.  The survey formalizes this with three sets:

* ``E_u^k`` — k-hop *relevant entities* of user ``u``,
* ``S_u^k`` — the *user ripple set*: triples whose heads lie in ``E_u^{k-1}``,
* ``S_e^k`` — the *entity ripple set*: triples whose heads are (k-1)-hop
  neighbors of entity ``e``.

Functions here compute those sets exactly, plus sampled fixed-size versions
used for efficient mini-batch training.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import GraphError
from repro.core.rng import ensure_rng

from .graph import KnowledgeGraph

__all__ = [
    "RippleSet",
    "relevant_entities",
    "user_ripple_sets",
    "entity_ripple_sets",
]


@dataclass(frozen=True)
class RippleSet:
    """Triples of one hop: parallel head/relation/tail arrays."""

    heads: np.ndarray
    relations: np.ndarray
    tails: np.ndarray

    def __post_init__(self) -> None:
        if not (self.heads.shape == self.relations.shape == self.tails.shape):
            raise GraphError("ripple set arrays must be parallel")

    @property
    def size(self) -> int:
        return int(self.heads.size)

    def __len__(self) -> int:
        return self.size


def _hop_triples(kg: KnowledgeGraph, frontier: np.ndarray) -> RippleSet:
    """All facts whose head lies in ``frontier``."""
    indices: list[np.ndarray] = [kg.store.outgoing(int(e)) for e in frontier]
    if indices:
        idx = np.concatenate(indices).astype(np.int64)
    else:
        idx = np.empty(0, dtype=np.int64)
    return RippleSet(
        kg.store.heads[idx], kg.store.relations[idx], kg.store.tails[idx]
    )


def relevant_entities(
    kg: KnowledgeGraph, seeds: np.ndarray, hops: int
) -> list[np.ndarray]:
    """``[E^1, ..., E^H]`` starting from seed entities ``E^0 = seeds``.

    Follows the survey's definition literally: ``E^k`` contains the tails of
    facts whose heads lie in ``E^{k-1}`` (directed propagation).
    """
    if hops < 1:
        raise GraphError("hops must be >= 1")
    layers: list[np.ndarray] = []
    frontier = np.unique(np.asarray(seeds, dtype=np.int64))
    for __ in range(hops):
        hop = _hop_triples(kg, frontier)
        frontier = np.unique(hop.tails)
        layers.append(frontier)
    return layers


def _sample(ripple: RippleSet, size: int, rng: np.random.Generator) -> RippleSet:
    if ripple.size == 0 or ripple.size == size:
        return ripple
    replace = ripple.size < size
    idx = rng.choice(ripple.size, size=size, replace=replace)
    return RippleSet(ripple.heads[idx], ripple.relations[idx], ripple.tails[idx])


def user_ripple_sets(
    kg: KnowledgeGraph,
    seed_entities: np.ndarray,
    hops: int,
    max_size: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> list[RippleSet]:
    """``[S_u^1, ..., S_u^H]`` for a user whose history maps to ``seed_entities``.

    ``max_size`` caps each hop by sampling with replacement (RippleNet's
    fixed-size ripple sets).  Hops that find no facts fall back to the
    previous hop's triples, RippleNet's published fallback for sparse graphs;
    a user whose seeds have no outgoing facts at all yields empty hops.
    """
    if hops < 1:
        raise GraphError("hops must be >= 1")
    rng = ensure_rng(seed)
    sets: list[RippleSet] = []
    frontier = np.unique(np.asarray(seed_entities, dtype=np.int64))
    previous: RippleSet | None = None
    for __ in range(hops):
        hop = _hop_triples(kg, frontier)
        if hop.size == 0 and previous is not None:
            hop = previous
        if max_size is not None:
            hop = _sample(hop, max_size, rng)
        frontier = np.unique(hop.tails) if hop.size else frontier
        sets.append(hop)
        previous = hop
    return sets


def entity_ripple_sets(
    kg: KnowledgeGraph,
    entity: int,
    hops: int,
    max_size: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> list[RippleSet]:
    """``[S_e^1, ..., S_e^H]`` for a single entity (Section 3)."""
    return user_ripple_sets(
        kg, np.asarray([entity], dtype=np.int64), hops, max_size=max_size, seed=seed
    )
