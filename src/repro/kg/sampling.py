"""Neighbor and negative sampling utilities for KG models.

:class:`NeighborCache` precomputes per-entity undirected ``(relation,
neighbor)`` lists and draws fixed-size receptive fields, the sampling trick
KGCN uses to keep GNN propagation scalable.  :func:`corrupt_batch` produces
filtered negative triples for translation-model training.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import GraphError
from repro.core.rng import ensure_rng

from .graph import KnowledgeGraph
from .triples import TripleStore

__all__ = ["NeighborCache", "corrupt_batch"]


class NeighborCache:
    """Precomputed undirected adjacency with fixed-size sampling.

    Entities without any neighbor sample themselves with the reserved
    self-loop relation id ``num_relations`` (one extra embedding row is
    allocated by models using this cache).
    """

    def __init__(self, kg: KnowledgeGraph) -> None:
        self.kg = kg
        self.self_relation = kg.num_relations
        self._relations: list[np.ndarray] = []
        self._neighbors: list[np.ndarray] = []
        for entity in range(kg.num_entities):
            pairs = kg.neighbors(entity, undirected=True)
            if pairs:
                rels = np.fromiter((r for r, __ in pairs), dtype=np.int64)
                nbrs = np.fromiter((n for __, n in pairs), dtype=np.int64)
            else:
                rels = np.asarray([self.self_relation], dtype=np.int64)
                nbrs = np.asarray([entity], dtype=np.int64)
            self._relations.append(rels)
            self._neighbors.append(nbrs)

    def neighbors_of(self, entity: int) -> tuple[np.ndarray, np.ndarray]:
        """Full ``(relations, neighbors)`` arrays for ``entity``."""
        return self._relations[entity], self._neighbors[entity]

    def sample(
        self,
        entities: np.ndarray,
        num_samples: int,
        seed: int | np.random.Generator | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fixed-size neighborhood per input entity.

        Returns ``(relations, neighbors)`` each of shape
        ``(len(entities), num_samples)``, sampled with replacement.
        """
        if num_samples < 1:
            raise GraphError("num_samples must be >= 1")
        rng = ensure_rng(seed)
        entities = np.asarray(entities, dtype=np.int64).ravel()
        rel_out = np.empty((entities.size, num_samples), dtype=np.int64)
        nbr_out = np.empty((entities.size, num_samples), dtype=np.int64)
        for row, entity in enumerate(entities):
            rels, nbrs = self._relations[entity], self._neighbors[entity]
            idx = rng.integers(0, rels.size, size=num_samples)
            rel_out[row] = rels[idx]
            nbr_out[row] = nbrs[idx]
        return rel_out, nbr_out


def corrupt_batch(
    store: TripleStore,
    indices: np.ndarray,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Negative ``(h, r, t)`` arrays for the facts at ``indices``."""
    rng = ensure_rng(seed)
    heads = np.empty(len(indices), dtype=np.int64)
    rels = np.empty(len(indices), dtype=np.int64)
    tails = np.empty(len(indices), dtype=np.int64)
    for row, idx in enumerate(np.asarray(indices, dtype=np.int64)):
        h, r, t = store.corrupt(int(idx), seed=rng)
        heads[row], rels[row], tails[row] = h, r, t
    return heads, rels, tails
