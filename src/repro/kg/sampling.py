"""Neighbor and negative sampling utilities for KG models.

:class:`NeighborCache` precomputes per-entity undirected ``(relation,
neighbor)`` adjacency as flat arrays plus offsets and draws fixed-size
receptive fields with a single vectorized gather, the sampling trick KGCN
uses to keep GNN propagation scalable.  :func:`corrupt_batch` produces
filtered negative triples for translation-model training with one RNG call
per resampling round instead of one per triple (see
``docs/performance.md``).
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import GraphError
from repro.core.rng import ensure_rng
from repro.telemetry.base import get_active

from .graph import KnowledgeGraph
from .triples import TripleStore

__all__ = ["NeighborCache", "corrupt_batch"]


class NeighborCache:
    """Precomputed undirected adjacency with fixed-size sampling.

    The adjacency is stored CSR-style: two flat arrays (``relations``,
    ``neighbors``) indexed by a per-entity ``offsets`` array, so sampling a
    whole batch of receptive fields is one bounded-``integers`` draw plus
    two gathers.  Entities without any neighbor sample themselves with the
    reserved self-loop relation id ``num_relations`` (one extra embedding
    row is allocated by models using this cache).
    """

    def __init__(self, kg: KnowledgeGraph) -> None:
        self.kg = kg
        self.self_relation = kg.num_relations
        adj_offsets, adj_rels, adj_nbrs = kg.store.undirected_adjacency()
        degrees = np.diff(adj_offsets)
        counts = np.where(degrees == 0, 1, degrees)
        offsets = np.zeros(kg.num_entities + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        flat_rels = np.empty(int(offsets[-1]), dtype=np.int64)
        flat_nbrs = np.empty(int(offsets[-1]), dtype=np.int64)
        # Real edges land at their entity's (possibly shifted) slot range...
        shift = offsets[:-1] - adj_offsets[:-1]
        dest = np.arange(adj_rels.size, dtype=np.int64) + np.repeat(shift, degrees)
        flat_rels[dest] = adj_rels
        flat_nbrs[dest] = adj_nbrs
        # ...and isolated entities get a single self-loop slot.
        isolated = np.flatnonzero(degrees == 0)
        flat_rels[offsets[isolated]] = self.self_relation
        flat_nbrs[offsets[isolated]] = isolated
        self._offsets = offsets
        self._flat_relations = flat_rels
        self._flat_neighbors = flat_nbrs

    def neighbors_of(self, entity: int) -> tuple[np.ndarray, np.ndarray]:
        """Full ``(relations, neighbors)`` arrays for ``entity``."""
        lo, hi = self._offsets[entity], self._offsets[entity + 1]
        return self._flat_relations[lo:hi], self._flat_neighbors[lo:hi]

    def sample(
        self,
        entities: np.ndarray,
        num_samples: int,
        seed: int | np.random.Generator | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fixed-size neighborhood per input entity.

        Returns ``(relations, neighbors)`` each of shape
        ``(len(entities), num_samples)``, sampled with replacement.  The
        whole batch is drawn with one RNG call (per-row bounds broadcast
        through ``Generator.integers``) and two flat-array gathers.
        """
        if num_samples < 1:
            raise GraphError("num_samples must be >= 1")
        rng = ensure_rng(seed)
        entities = np.asarray(entities, dtype=np.int64).ravel()
        tel = get_active()
        span = (
            tel.begin("kg/neighbor_sample", entities=int(entities.size),
                      num_samples=num_samples)
            if tel.enabled
            else None
        )
        starts = self._offsets[entities]
        counts = self._offsets[entities + 1] - starts
        draws = rng.integers(0, counts[:, None], size=(entities.size, num_samples))
        flat = starts[:, None] + draws
        if span is not None:
            tel.counter("kg.neighbor_samples").inc(int(entities.size) * num_samples)
            tel.end(span)
        return self._flat_relations[flat], self._flat_neighbors[flat]


def corrupt_batch(
    store: TripleStore,
    indices: np.ndarray,
    seed: int | np.random.Generator | None = None,
    corrupt_tail_prob: float = 0.5,
    max_tries: int = 50,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Negative ``(h, r, t)`` arrays for the facts at ``indices``.

    Filtered negative sampling, vectorized: every round draws corruption
    candidates for *all* still-colliding rows at once, filters them against
    the store's packed fact-key array via
    :meth:`~repro.kg.triples.TripleStore.contains_batch`, and keeps only the
    rows whose candidate is a true negative.  Rows still colliding after
    ``max_tries`` rounds fall back to the deterministic
    :meth:`~repro.kg.triples.TripleStore.corrupt_fallback`, which never
    returns an existing fact.
    """
    rng = ensure_rng(seed)
    idx = np.asarray(indices, dtype=np.int64).ravel()
    tel = get_active()
    span = (
        tel.begin("kg/corrupt_batch", batch=int(idx.size))
        if tel.enabled
        else None
    )
    heads = store.heads[idx].copy()
    rels = store.relations[idx].copy()
    tails = store.tails[idx].copy()
    pending = np.arange(idx.size, dtype=np.int64)
    rounds = 0
    for _ in range(max_tries):
        if pending.size == 0:
            break
        rounds += 1
        tail_side = rng.random(pending.size) < corrupt_tail_prob
        candidates = rng.integers(0, store.num_entities, size=pending.size)
        cand_h = np.where(tail_side, heads[pending], candidates)
        cand_t = np.where(tail_side, candidates, tails[pending])
        colliding = store.contains_batch(cand_h, rels[pending], cand_t)
        accepted = pending[~colliding]
        heads[accepted] = cand_h[~colliding]
        tails[accepted] = cand_t[~colliding]
        pending = pending[colliding]
    for row in pending:
        h, __, t = store.corrupt_fallback(
            int(store.heads[idx[row]]),
            int(rels[row]),
            int(store.tails[idx[row]]),
        )
        heads[row], tails[row] = h, t
    if span is not None:
        tel.counter("kg.corrupted_triples").inc(int(idx.size))
        if pending.size:
            tel.counter("kg.corrupt_fallbacks").inc(int(pending.size))
        tel.end(span, rounds=rounds, fallbacks=int(pending.size))
    return heads, rels, tails
