"""Triple storage for knowledge graphs.

A KG edge is a fact ``(head entity, relation, tail entity)`` (Section 3 of
the survey).  :class:`TripleStore` keeps all facts in three parallel integer
arrays with CSR-style adjacency indexes by head, tail, and relation — an
offset array plus a permutation of fact indices, built once via a stable
argsort — providing the O(1) neighborhood access that path enumeration,
ripple sets, and GNN sampling all build on.

Fact membership is answered from a *packed key* array: every fact is encoded
as the single int64 ``(h * num_relations + r) * num_entities + t``.  Because
the facts are stored in lexicographic order, the key array is sorted, so
:meth:`TripleStore.contains_batch` resolves a whole batch of membership
queries with one ``np.searchsorted`` instead of per-tuple hashing.  See
``docs/performance.md`` for the layout and the benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import GraphError
from repro.core.rng import ensure_rng

__all__ = ["TripleStore"]


def _csr_index(keys: np.ndarray, domain: int) -> tuple[np.ndarray, np.ndarray]:
    """CSR adjacency over ``keys``: ``(order, offsets)``.

    ``order[offsets[k] : offsets[k + 1]]`` lists the positions holding key
    ``k``, in ascending position order (stable sort).
    """
    order = np.argsort(keys, kind="stable").astype(np.int64, copy=False)
    counts = np.bincount(keys, minlength=domain)
    offsets = np.zeros(domain + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return order, offsets


class TripleStore:
    """Immutable set of ``(head, relation, tail)`` facts.

    Parameters
    ----------
    heads, relations, tails:
        Parallel 1-d integer arrays.  Duplicate facts are dropped.
    num_entities, num_relations:
        Sizes of the id spaces; ids must lie in range.
    """

    def __init__(
        self,
        heads: np.ndarray,
        relations: np.ndarray,
        tails: np.ndarray,
        num_entities: int,
        num_relations: int,
    ) -> None:
        heads = np.asarray(heads, dtype=np.int64)
        relations = np.asarray(relations, dtype=np.int64)
        tails = np.asarray(tails, dtype=np.int64)
        if not (heads.shape == relations.shape == tails.shape) or heads.ndim != 1:
            raise GraphError("heads/relations/tails must be parallel 1-d arrays")
        if num_entities <= 0 or num_relations <= 0:
            raise GraphError("num_entities and num_relations must be positive")
        if num_entities * num_relations * num_entities > np.iinfo(np.int64).max:
            raise GraphError("id space too large to pack fact keys into int64")
        for name, arr, bound in (
            ("entity", heads, num_entities),
            ("relation", relations, num_relations),
            ("entity", tails, num_entities),
        ):
            if arr.size and (arr.min() < 0 or arr.max() >= bound):
                raise GraphError(f"{name} id out of range")

        self.num_entities = int(num_entities)
        self.num_relations = int(num_relations)

        # Deduplicate facts while keeping a deterministic (sorted) order.
        # Packing before the unique keeps the sort single-key; unpacking the
        # sorted keys recovers the lexicographically ordered triple arrays.
        keys = (heads * self.num_relations + relations) * self.num_entities + tails
        keys = np.unique(keys)
        self._fact_keys = keys
        tails = keys % self.num_entities
        hr = keys // self.num_entities
        relations = hr % self.num_relations
        heads = hr // self.num_relations

        self.heads = heads
        self.relations = relations
        self.tails = tails

        self._head_order, self._head_offsets = _csr_index(heads, self.num_entities)
        self._tail_order, self._tail_offsets = _csr_index(tails, self.num_entities)
        self._rel_order, self._rel_offsets = _csr_index(relations, self.num_relations)
        self._undirected: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    @classmethod
    def from_triples(
        cls,
        triples: "np.ndarray | list[tuple[int, int, int]]",
        num_entities: int,
        num_relations: int,
    ) -> "TripleStore":
        """Build from an ``(n, 3)`` array or list of ``(h, r, t)`` tuples."""
        arr = np.asarray(triples, dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 3)
        if arr.ndim != 2 or arr.shape[1] != 3:
            raise GraphError("triples must have shape (n, 3)")
        return cls(arr[:, 0], arr[:, 1], arr[:, 2], num_entities, num_relations)

    # ------------------------------------------------------------------ #
    @property
    def num_triples(self) -> int:
        return int(self.heads.size)

    def __len__(self) -> int:
        return self.num_triples

    def __contains__(self, fact: tuple[int, int, int]) -> bool:
        h, r, t = (int(x) for x in fact)
        return bool(self.contains_batch([h], [r], [t])[0])

    def contains_batch(
        self,
        heads: np.ndarray,
        relations: np.ndarray,
        tails: np.ndarray,
    ) -> np.ndarray:
        """Boolean mask: which ``(h, r, t)`` triples are facts in the store.

        One ``np.searchsorted`` over the packed key array for the whole
        batch; out-of-range ids are reported as absent rather than raising.
        """
        h = np.asarray(heads, dtype=np.int64)
        r = np.asarray(relations, dtype=np.int64)
        t = np.asarray(tails, dtype=np.int64)
        valid = (
            (h >= 0)
            & (h < self.num_entities)
            & (r >= 0)
            & (r < self.num_relations)
            & (t >= 0)
            & (t < self.num_entities)
        )
        if self._fact_keys.size == 0:
            return np.zeros(valid.shape, dtype=bool)
        keys = (h * self.num_relations + r) * self.num_entities + t
        pos = np.searchsorted(self._fact_keys, keys)
        pos_clipped = np.minimum(pos, self._fact_keys.size - 1)
        return valid & (self._fact_keys[pos_clipped] == keys) & (
            pos < self._fact_keys.size
        )

    def triples(self) -> np.ndarray:
        """All facts as an ``(n, 3)`` array (copy)."""
        return np.stack([self.heads, self.relations, self.tails], axis=1)

    # ------------------------------------------------------------------ #
    # neighborhood access
    # ------------------------------------------------------------------ #
    def outgoing(self, entity: int) -> np.ndarray:
        """Indices of facts with ``head == entity``."""
        e = int(entity)
        if not 0 <= e < self.num_entities:
            return np.empty(0, dtype=np.int64)
        return self._head_order[self._head_offsets[e] : self._head_offsets[e + 1]]

    def incoming(self, entity: int) -> np.ndarray:
        """Indices of facts with ``tail == entity``."""
        e = int(entity)
        if not 0 <= e < self.num_entities:
            return np.empty(0, dtype=np.int64)
        return self._tail_order[self._tail_offsets[e] : self._tail_offsets[e + 1]]

    def with_relation(self, relation: int) -> np.ndarray:
        """Indices of facts using ``relation``."""
        r = int(relation)
        if not 0 <= r < self.num_relations:
            return np.empty(0, dtype=np.int64)
        return self._rel_order[self._rel_offsets[r] : self._rel_offsets[r + 1]]

    def undirected_adjacency(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flat undirected adjacency ``(offsets, relations, neighbors)``.

        ``relations[offsets[e] : offsets[e + 1]]`` / ``neighbors[...]`` list
        the ``(relation, neighbor)`` pairs of entity ``e``: outgoing edges
        first, then incoming, each in fact order (matching
        :meth:`neighbors`).  Built once on first use and cached.
        """
        if self._undirected is None:
            sources = np.concatenate([self.heads, self.tails])
            targets = np.concatenate([self.tails, self.heads])
            rels = np.concatenate([self.relations, self.relations])
            order, offsets = _csr_index(sources, self.num_entities)
            self._undirected = (offsets, rels[order], targets[order])
        return self._undirected

    def neighbors(
        self, entity: int, undirected: bool = True
    ) -> list[tuple[int, int]]:
        """``(relation, neighbor)`` pairs reachable from ``entity``.

        With ``undirected=True`` incoming edges are traversed too, which is
        how the surveyed propagation models treat the KG.
        """
        if undirected:
            offsets, rels, nbrs = self.undirected_adjacency()
            e = int(entity)
            lo, hi = offsets[e], offsets[e + 1]
            return list(zip(rels[lo:hi].tolist(), nbrs[lo:hi].tolist()))
        out = self.outgoing(entity)
        return list(zip(self.relations[out].tolist(), self.tails[out].tolist()))

    def neighbors_batch(
        self, entities: np.ndarray, undirected: bool = True
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched :meth:`neighbors`: flat ``(offsets, relations, neighbors)``.

        ``relations[offsets[i] : offsets[i + 1]]`` / ``neighbors[...]`` hold
        the pairs of ``entities[i]`` in the same order as :meth:`neighbors`.
        One gather for the whole batch, no per-entity Python work.
        """
        entities = np.asarray(entities, dtype=np.int64).ravel()
        if undirected:
            src_offsets, rels, nbrs = self.undirected_adjacency()
            starts = src_offsets[entities]
            counts = src_offsets[entities + 1] - starts
        else:
            starts = self._head_offsets[entities]
            counts = self._head_offsets[entities + 1] - starts
        offsets = np.zeros(entities.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        flat = (
            np.arange(offsets[-1], dtype=np.int64)
            - np.repeat(offsets[:-1], counts)
            + np.repeat(starts, counts)
        )
        if undirected:
            return offsets, rels[flat], nbrs[flat]
        sel = self._head_order[flat]
        return offsets, self.relations[sel], self.tails[sel]

    def degree(self, entity: int) -> int:
        """Total (in + out) degree of ``entity``."""
        return int(self.degree_batch(np.asarray([entity], dtype=np.int64))[0])

    def degree_batch(self, entities: np.ndarray) -> np.ndarray:
        """Total (in + out) degree for each entity in ``entities``."""
        e = np.asarray(entities, dtype=np.int64)
        out = self._head_offsets[e + 1] - self._head_offsets[e]
        inc = self._tail_offsets[e + 1] - self._tail_offsets[e]
        return out + inc

    # ------------------------------------------------------------------ #
    # negative sampling (KGE training)
    # ------------------------------------------------------------------ #
    def corrupt(
        self,
        index: int,
        seed: int | np.random.Generator | None = None,
        corrupt_tail_prob: float = 0.5,
        max_tries: int = 50,
    ) -> tuple[int, int, int]:
        """Corrupt fact ``index`` by replacing its head or tail.

        The replacement is resampled until the corrupted fact is *not* in the
        store (or ``max_tries`` is exhausted), the standard filtered negative
        sampling for translation models.  This scalar path is the reference
        implementation; training uses the batched
        :func:`repro.kg.sampling.corrupt_batch`.
        """
        rng = ensure_rng(seed)
        h = int(self.heads[index])
        r = int(self.relations[index])
        t = int(self.tails[index])
        for _ in range(max_tries):
            if rng.random() < corrupt_tail_prob:
                candidate = (h, r, int(rng.integers(0, self.num_entities)))
            else:
                candidate = (int(rng.integers(0, self.num_entities)), r, t)
            if candidate not in self:
                return candidate
        return self.corrupt_fallback(h, r, t)

    def corrupt_fallback(self, h: int, r: int, t: int) -> tuple[int, int, int]:
        """Deterministic corruption of ``(h, r, t)``: the first candidate
        tail (then head) whose triple is not a fact in the store.

        Used when random resampling exhausts ``max_tries``; unlike a blind
        ``(t + 1) % num_entities`` it can never return an existing fact.
        """
        # Tails for (h, r, *) occupy a contiguous key range; the first gap in
        # the present-tail sequence is the smallest free tail.
        base = (h * self.num_relations + r) * self.num_entities
        lo = np.searchsorted(self._fact_keys, base)
        hi = np.searchsorted(self._fact_keys, base + self.num_entities)
        present = self._fact_keys[lo:hi] - base
        gaps = np.flatnonzero(present != np.arange(present.size))
        if gaps.size:
            return (h, r, int(gaps[0]))
        if present.size < self.num_entities:
            return (h, r, int(present.size))
        heads_all = np.arange(self.num_entities, dtype=np.int64)
        free = np.flatnonzero(
            ~self.contains_batch(
                heads_all,
                np.full(self.num_entities, r, dtype=np.int64),
                np.full(self.num_entities, t, dtype=np.int64),
            )
        )
        if free.size:
            return (int(free[0]), r, t)
        raise GraphError(
            f"every head/tail corruption of ({h}, {r}, {t}) is itself a fact"
        )
