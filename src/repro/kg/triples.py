"""Triple storage for knowledge graphs.

A KG edge is a fact ``(head entity, relation, tail entity)`` (Section 3 of
the survey).  :class:`TripleStore` keeps all facts in three parallel integer
arrays with hash indexes by head, tail, and relation, providing the O(1)
neighborhood access that path enumeration, ripple sets, and GNN sampling
all build on.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import GraphError
from repro.core.rng import ensure_rng

__all__ = ["TripleStore"]


class TripleStore:
    """Immutable set of ``(head, relation, tail)`` facts.

    Parameters
    ----------
    heads, relations, tails:
        Parallel 1-d integer arrays.  Duplicate facts are dropped.
    num_entities, num_relations:
        Sizes of the id spaces; ids must lie in range.
    """

    def __init__(
        self,
        heads: np.ndarray,
        relations: np.ndarray,
        tails: np.ndarray,
        num_entities: int,
        num_relations: int,
    ) -> None:
        heads = np.asarray(heads, dtype=np.int64)
        relations = np.asarray(relations, dtype=np.int64)
        tails = np.asarray(tails, dtype=np.int64)
        if not (heads.shape == relations.shape == tails.shape) or heads.ndim != 1:
            raise GraphError("heads/relations/tails must be parallel 1-d arrays")
        if num_entities <= 0 or num_relations <= 0:
            raise GraphError("num_entities and num_relations must be positive")
        for name, arr, bound in (
            ("entity", heads, num_entities),
            ("relation", relations, num_relations),
            ("entity", tails, num_entities),
        ):
            if arr.size and (arr.min() < 0 or arr.max() >= bound):
                raise GraphError(f"{name} id out of range")

        # Deduplicate facts while keeping a deterministic (sorted) order.
        if heads.size:
            stacked = np.stack([heads, relations, tails], axis=1)
            stacked = np.unique(stacked, axis=0)
            heads, relations, tails = stacked[:, 0], stacked[:, 1], stacked[:, 2]

        self.heads = heads
        self.relations = relations
        self.tails = tails
        self.num_entities = int(num_entities)
        self.num_relations = int(num_relations)

        self._by_head = self._index(heads)
        self._by_tail = self._index(tails)
        self._by_relation = self._index(relations)
        self._fact_set = {
            (int(h), int(r), int(t)) for h, r, t in zip(heads, relations, tails)
        }

    @staticmethod
    def _index(keys: np.ndarray) -> dict[int, np.ndarray]:
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
        groups = np.split(order, boundaries)
        uniques = sorted_keys[np.concatenate([[0], boundaries])] if keys.size else []
        return {int(k): g for k, g in zip(uniques, groups)}

    # ------------------------------------------------------------------ #
    @classmethod
    def from_triples(
        cls,
        triples: "np.ndarray | list[tuple[int, int, int]]",
        num_entities: int,
        num_relations: int,
    ) -> "TripleStore":
        """Build from an ``(n, 3)`` array or list of ``(h, r, t)`` tuples."""
        arr = np.asarray(triples, dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 3)
        if arr.ndim != 2 or arr.shape[1] != 3:
            raise GraphError("triples must have shape (n, 3)")
        return cls(arr[:, 0], arr[:, 1], arr[:, 2], num_entities, num_relations)

    # ------------------------------------------------------------------ #
    @property
    def num_triples(self) -> int:
        return int(self.heads.size)

    def __len__(self) -> int:
        return self.num_triples

    def __contains__(self, fact: tuple[int, int, int]) -> bool:
        return tuple(int(x) for x in fact) in self._fact_set

    def triples(self) -> np.ndarray:
        """All facts as an ``(n, 3)`` array (copy)."""
        return np.stack([self.heads, self.relations, self.tails], axis=1)

    # ------------------------------------------------------------------ #
    # neighborhood access
    # ------------------------------------------------------------------ #
    def outgoing(self, entity: int) -> np.ndarray:
        """Indices of facts with ``head == entity``."""
        return self._by_head.get(int(entity), np.empty(0, dtype=np.int64))

    def incoming(self, entity: int) -> np.ndarray:
        """Indices of facts with ``tail == entity``."""
        return self._by_tail.get(int(entity), np.empty(0, dtype=np.int64))

    def with_relation(self, relation: int) -> np.ndarray:
        """Indices of facts using ``relation``."""
        return self._by_relation.get(int(relation), np.empty(0, dtype=np.int64))

    def neighbors(
        self, entity: int, undirected: bool = True
    ) -> list[tuple[int, int]]:
        """``(relation, neighbor)`` pairs reachable from ``entity``.

        With ``undirected=True`` incoming edges are traversed too, which is
        how the surveyed propagation models treat the KG.
        """
        pairs: list[tuple[int, int]] = []
        for idx in self.outgoing(entity):
            pairs.append((int(self.relations[idx]), int(self.tails[idx])))
        if undirected:
            for idx in self.incoming(entity):
                pairs.append((int(self.relations[idx]), int(self.heads[idx])))
        return pairs

    def degree(self, entity: int) -> int:
        """Total (in + out) degree of ``entity``."""
        return int(self.outgoing(entity).size + self.incoming(entity).size)

    # ------------------------------------------------------------------ #
    # negative sampling (KGE training)
    # ------------------------------------------------------------------ #
    def corrupt(
        self,
        index: int,
        seed: int | np.random.Generator | None = None,
        corrupt_tail_prob: float = 0.5,
        max_tries: int = 50,
    ) -> tuple[int, int, int]:
        """Corrupt fact ``index`` by replacing its head or tail.

        The replacement is resampled until the corrupted fact is *not* in the
        store (or ``max_tries`` is exhausted), the standard filtered negative
        sampling for translation models.
        """
        rng = ensure_rng(seed)
        h = int(self.heads[index])
        r = int(self.relations[index])
        t = int(self.tails[index])
        for _ in range(max_tries):
            if rng.random() < corrupt_tail_prob:
                candidate = (h, r, int(rng.integers(0, self.num_entities)))
            else:
                candidate = (int(rng.integers(0, self.num_entities)), r, t)
            if candidate not in self._fact_set:
                return candidate
        return (h, r, (t + 1) % self.num_entities)
