"""Random walks and skip-gram embeddings (DeepWalk/metapath2vec family).

HERec constrains walks to meta-paths before learning node embeddings with
skip-gram negative sampling; entity2rec and KTGAN use property-specific or
metapath2vec embeddings.  This module provides both pieces:

* :func:`metapath_walks` — walks that repeat a meta-path's relation pattern.
* :func:`uniform_walks` — plain uniform random walks.
* :func:`train_sgns` — skip-gram with negative sampling over walk corpora,
  implemented with hand-derived NumPy SGD.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import GraphError
from repro.core.rng import ensure_rng

from .graph import KnowledgeGraph
from .metapath import MetaPath

__all__ = ["uniform_walks", "metapath_walks", "train_sgns"]


def uniform_walks(
    kg: KnowledgeGraph,
    num_walks: int = 5,
    walk_length: int = 8,
    seed: int | np.random.Generator | None = None,
) -> list[list[int]]:
    """Uniform random walks from every entity (undirected traversal)."""
    rng = ensure_rng(seed)
    walks: list[list[int]] = []
    for start in range(kg.num_entities):
        for __ in range(num_walks):
            walk = [start]
            node = start
            for __step in range(walk_length - 1):
                nbrs = kg.neighbors(node, undirected=True)
                if not nbrs:
                    break
                __, node = nbrs[rng.integers(0, len(nbrs))]
                walk.append(node)
            if len(walk) > 1:
                walks.append(walk)
    return walks


def metapath_walks(
    kg: KnowledgeGraph,
    metapath: MetaPath,
    num_walks: int = 5,
    walk_length: int = 8,
    seed: int | np.random.Generator | None = None,
) -> list[list[int]]:
    """Walks following a (symmetric) meta-path's relation pattern cyclically.

    Starting from entities of the meta-path's first node type, each step
    follows the next relation in the pattern to a neighbor of the declared
    type, wrapping around when the pattern is exhausted (HERec's scheme).
    """
    if kg.entity_types is None:
        raise GraphError("metapath walks require a typed graph")
    if not metapath.is_symmetric:
        raise GraphError("metapath walks require a symmetric meta-path")
    rng = ensure_rng(seed)
    pattern = list(zip(metapath.relation_types, metapath.node_types[1:]))
    starts = np.flatnonzero(kg.entity_types == metapath.node_types[0])
    walks: list[list[int]] = []
    for start in starts:
        for __ in range(num_walks):
            walk = [int(start)]
            node = int(start)
            step = 0
            for __hop in range(walk_length - 1):
                want_rel, want_type = pattern[step % len(pattern)]
                candidates = [
                    nbr
                    for rel, nbr in kg.neighbors(node, undirected=True)
                    if rel == want_rel and kg.entity_types[nbr] == want_type
                ]
                if not candidates:
                    break
                node = int(candidates[rng.integers(0, len(candidates))])
                walk.append(node)
                step += 1
            if len(walk) > 1:
                walks.append(walk)
    return walks


def train_sgns(
    walks: list[list[int]],
    num_nodes: int,
    dim: int = 16,
    window: int = 2,
    num_negatives: int = 3,
    epochs: int = 2,
    lr: float = 0.025,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Skip-gram with negative sampling over a walk corpus.

    Returns the ``(num_nodes, dim)`` input-embedding matrix.  Negative
    targets are drawn from the corpus unigram distribution raised to 3/4,
    the word2vec heuristic.
    """
    if not walks:
        raise GraphError("empty walk corpus")
    rng = ensure_rng(seed)
    emb_in = rng.normal(0.0, 0.5 / np.sqrt(dim), (num_nodes, dim))
    emb_out = np.zeros((num_nodes, dim))

    counts = np.zeros(num_nodes)
    for walk in walks:
        for node in walk:
            counts[node] += 1
    noise = counts**0.75
    noise /= noise.sum()

    for __ in range(epochs):
        for walk in walks:
            for center_pos, center in enumerate(walk):
                lo = max(0, center_pos - window)
                hi = min(len(walk), center_pos + window + 1)
                for ctx_pos in range(lo, hi):
                    if ctx_pos == center_pos:
                        continue
                    context = walk[ctx_pos]
                    targets = [context] + list(
                        rng.choice(num_nodes, size=num_negatives, p=noise)
                    )
                    labels = [1.0] + [0.0] * num_negatives
                    v = emb_in[center]
                    grad_center = np.zeros(dim)
                    for target, label in zip(targets, labels):
                        w = emb_out[target]
                        score = 1.0 / (1.0 + np.exp(-v @ w))
                        err = score - label
                        grad_center += err * w
                        emb_out[target] -= lr * err * v
                    emb_in[center] -= lr * grad_center
    return emb_in
