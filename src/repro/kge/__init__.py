"""Knowledge graph embedding: translation-distance and semantic matching."""

from .base import KGEModel
from .semantic import ComplEx, DistMult, RotatE
from .translational import TransD, TransE, TransH, TransR

#: Name -> class map used by benches and by models that take a KGE choice.
KGE_MODELS: dict[str, type[KGEModel]] = {
    "TransE": TransE,
    "TransH": TransH,
    "TransR": TransR,
    "TransD": TransD,
    "DistMult": DistMult,
    "ComplEx": ComplEx,
    "RotatE": RotatE,
}

__all__ = [
    "KGEModel",
    "TransE",
    "TransH",
    "TransR",
    "TransD",
    "DistMult",
    "ComplEx",
    "RotatE",
    "KGE_MODELS",
]
