"""Shared training machinery for knowledge graph embedding models.

The survey (Section 4.1) divides KGE into *translation distance* models
(TransE/H/R/D) trained with a margin ranking loss over corrupted triples,
and *semantic matching* models (DistMult, ComplEx) trained with a logistic
loss.  :class:`KGEModel` implements both regimes; subclasses only define
embeddings and a differentiable triple score.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

import numpy as np

from repro.autograd import Adam, losses, nn, ops
from repro.autograd.sparse import SparseGrad
from repro.autograd.tensor import Tensor
from repro.core.exceptions import ConfigError, NotFittedError
from repro.core.rng import ensure_rng
from repro.kg.sampling import corrupt_batch
from repro.kg.triples import TripleStore
from repro.runtime.guards import grad_norm
from repro.store.base import DenseStore, EmbeddingStore
from repro.telemetry.base import activate, get_active

if TYPE_CHECKING:  # pragma: no cover - import is type-only to avoid a cycle
    from repro.runtime import TrainingRuntime
    from repro.telemetry import Telemetry

__all__ = ["KGEModel"]


class KGEModel(nn.Module, abc.ABC):
    """Base class for KGE models.

    Parameters
    ----------
    num_entities, num_relations:
        Id-space sizes of the graph to embed.
    dim:
        Embedding dimensionality ``d``.
    seed:
        Seed for parameter initialization and training randomness.
    store:
        :class:`~repro.store.base.EmbeddingStore` backing the entity and
        relation tables.  The default :class:`DenseStore` is a pure
        pass-through (training is bitwise identical to having no store);
        a train-mode :class:`~repro.store.mmap.MmapShardStore` makes the
        tables durable — it warm-starts them from disk at registration
        and receives per-step dirty-row marks so commits persist only
        touched shards.
    """

    #: "margin" (translation distance) or "logistic" (semantic matching).
    loss_type: str = "margin"
    #: Renormalize entity rows to unit norm after each step (TransE-style).
    normalize_entities: bool = False

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        dim: int = 16,
        seed=None,
        store: EmbeddingStore | None = None,
    ) -> None:
        if dim < 1:
            raise ConfigError("embedding dim must be >= 1")
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.dim = dim
        self._rng = ensure_rng(seed)
        self.entity = nn.Embedding(num_entities, dim, seed=self._rng)
        self.relation = nn.Embedding(num_relations, dim, seed=self._rng)
        self.store = store if store is not None else DenseStore()
        self.store.register("entity", self.entity.weight.data)
        self.store.register("relation", self.relation.weight.data)
        self._fitted = False
        self._build(self._rng)

    def _build(self, rng: np.random.Generator) -> None:
        """Hook for subclasses that need extra parameters."""

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def score(self, heads: np.ndarray, relations: np.ndarray, tails: np.ndarray) -> Tensor:
        """Differentiable plausibility of triples; higher = more plausible.

        Translation models return the *negated* (squared) distance so the
        same convention works for ranking and for the logistic loss.
        """

    # ------------------------------------------------------------------ #
    def score_triples(
        self, heads: np.ndarray, relations: np.ndarray, tails: np.ndarray
    ) -> np.ndarray:
        """NumPy plausibility scores (no gradient tracking)."""
        return self.score(
            np.asarray(heads, dtype=np.int64),
            np.asarray(relations, dtype=np.int64),
            np.asarray(tails, dtype=np.int64),
        ).numpy()

    def entity_embeddings(self) -> np.ndarray:
        """The learned entity matrix ``(num_entities, dim)`` (no copy)."""
        return self.entity.weight.data

    def relation_embeddings(self) -> np.ndarray:
        return self.relation.weight.data

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    # ------------------------------------------------------------------ #
    def fit(
        self,
        store: TripleStore,
        epochs: int = 30,
        batch_size: int = 256,
        lr: float = 0.02,
        margin: float = 1.0,
        weight_decay: float = 1e-5,
        seed=None,
        runtime: "TrainingRuntime | None" = None,
        max_grad_norm: float | None = None,
        skip_nonfinite: str = "off",
        dense_updates: bool = False,
        telemetry: "Telemetry | None" = None,
    ) -> list[float]:
        """Train on all facts in ``store``; returns per-epoch mean loss.

        ``runtime`` threads the resilience layer through the loop (see
        :mod:`repro.runtime` and ``docs/robustness.md``): fault injection
        fires before each optimizer step, the divergence detector observes
        every batch loss, and the checkpointer snapshots parameters +
        optimizer + RNG state at epoch boundaries.  When the checkpoint
        directory already holds a snapshot, training *resumes* from the
        epoch after it — replaying the exact RNG stream, so an interrupted
        run converges to bitwise-identical parameters.

        ``max_grad_norm`` / ``skip_nonfinite`` are forwarded to the
        optimizer (see :class:`repro.autograd.optim.Optimizer`).  By
        default embedding gradients stay row-sparse and the optimizer
        applies lazy row-wise updates, so a step costs O(batch * dim)
        regardless of the table sizes; pass ``dense_updates=True`` to
        densify every gradient and reproduce the historical dense
        training path bitwise.

        ``telemetry`` (directly or via ``runtime.telemetry``) records the
        training run: a ``fit`` span wrapping ``fit/epoch`` and
        ``fit/batch`` spans, per-batch loss and gradient-norm gauges, and
        — because the telemetry is *activated* for the duration of the
        call — nested spans from negative sampling and optimizer steps
        (see ``docs/observability.md``).  Telemetry only observes: with it
        on or off, the learned parameters and returned history are
        bitwise identical, and the disabled path costs one boolean check
        per batch.
        """
        if store.num_triples == 0:
            raise ConfigError("cannot fit a KGE model on an empty triple store")
        rng = ensure_rng(seed if seed is not None else self._rng)
        params = self.parameters()
        optimizer = Adam(
            params,
            lr=lr,
            weight_decay=weight_decay,
            max_grad_norm=max_grad_norm,
            skip_nonfinite=skip_nonfinite,
            dense_updates=dense_updates,
        )
        history: list[float] = []
        start_epoch = 0
        if runtime is not None:
            snapshot = runtime.resume(params, optimizer=optimizer, rng=rng)
            if snapshot is not None:
                start_epoch = snapshot.step + 1
                history = [float(v) for v in snapshot.extra.get("history", [])]
        tel = telemetry
        if tel is None and runtime is not None:
            tel = runtime.telemetry
        if tel is None:
            # Fall back to the active telemetry so a fit deep inside a
            # traced study/panel still contributes its spans.
            tel = get_active()
        enabled = tel.enabled
        n = store.num_triples
        batches_per_epoch = (n + batch_size - 1) // batch_size
        step = start_epoch * batches_per_epoch
        if enabled:
            previous_telemetry = activate(tel)
            fit_span = tel.begin(
                "fit", model=type(self).__name__, epochs=epochs,
                start_epoch=start_epoch, triples=n, batch_size=batch_size,
                dense_updates=dense_updates,
            )
            loss_gauge = tel.gauge("fit.loss", model=type(self).__name__)
            grad_gauge = tel.gauge("fit.grad_norm", model=type(self).__name__)
            batch_counter = tel.counter("fit.batches")
        try:
            for epoch in range(start_epoch, epochs):
                if enabled:
                    epoch_span = tel.begin("fit/epoch", epoch=epoch)
                perm = rng.permutation(n)
                total = 0.0
                for start in range(0, n, batch_size):
                    if enabled:
                        batch_span = tel.begin("fit/batch", step=step)
                    idx = perm[start : start + batch_size]
                    loss = self._batch_loss(store, idx, rng, margin)
                    optimizer.zero_grad()
                    loss.backward()
                    if runtime is not None:
                        runtime.before_step(step, params)
                    optimizer.step()
                    if self.store.track_dirty:
                        self._mark_store_dirty()
                    if self.normalize_entities:
                        self._renormalize()
                    loss_value = loss.item()
                    if runtime is not None:
                        runtime.observe_loss(loss_value)
                    total += loss_value * idx.size
                    step += 1
                    if enabled:
                        loss_gauge.set(loss_value)
                        grad_gauge.set(grad_norm(params))
                        batch_counter.inc()
                        tel.end(batch_span, loss=loss_value)
                history.append(total / n)
                if enabled:
                    tel.counter("fit.epochs").inc()
                    tel.end(epoch_span, mean_loss=history[-1])
                if runtime is not None:
                    runtime.maybe_checkpoint(
                        epoch, params, optimizer=optimizer, rng=rng,
                        extra={"history": history},
                    )
        finally:
            if enabled:
                tel.end(fit_span, epochs_run=len(history) - start_epoch)
                activate(previous_telemetry)
        self._fitted = True
        return history

    def _batch_loss(
        self,
        store: TripleStore,
        idx: np.ndarray,
        rng: np.random.Generator,
        margin: float,
    ) -> Tensor:
        pos_h, pos_r, pos_t = store.heads[idx], store.relations[idx], store.tails[idx]
        neg_h, neg_r, neg_t = corrupt_batch(store, idx, rng)
        pos = self.score(pos_h, pos_r, pos_t)
        neg = self.score(neg_h, neg_r, neg_t)
        if self.loss_type == "margin":
            # score = -distance, so the hinge is margin + d(pos) - d(neg)
            return losses.margin_ranking_loss(-pos, -neg, margin=margin)
        if self.loss_type == "logistic":
            return (ops.softplus(-pos) + ops.softplus(neg)).mean()
        raise ConfigError(f"unknown loss_type {self.loss_type!r}")

    def _mark_store_dirty(self) -> None:
        """Feed this step's touched rows to the store's dirty tracking.

        The sparse row gradients of PR 3 are exactly the dirty-tracking
        wire format: after ``optimizer.step()`` the raw gradient of each
        embedding table still lists every row the step updated.  A dense
        gradient (``dense_updates=True``, or a densifying op in the score
        function) falls back to marking the whole table.
        """
        for name, weight in (("entity", self.entity.weight),
                             ("relation", self.relation.weight)):
            g = weight.raw_grad
            if g is None:
                continue
            if isinstance(g, SparseGrad):
                self.store.mark_dirty(name, g.rows)
            else:
                self.store.mark_dirty(name)

    def _renormalize(self) -> None:
        w = self.entity.weight.data
        norms = np.linalg.norm(w, axis=1, keepdims=True)
        if self.store.track_dirty:
            # Rows at/below unit norm divide by 1.0 and keep their bits;
            # only rows actually shrunk need to reach the next commit.
            changed = np.nonzero(norms.ravel() > 1.0)[0]
            if changed.size:
                self.store.mark_dirty("entity", changed)
        np.divide(w, np.maximum(norms, 1.0), out=w)

    def require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")
