"""Shared training machinery for knowledge graph embedding models.

The survey (Section 4.1) divides KGE into *translation distance* models
(TransE/H/R/D) trained with a margin ranking loss over corrupted triples,
and *semantic matching* models (DistMult, ComplEx) trained with a logistic
loss.  :class:`KGEModel` implements both regimes; subclasses only define
embeddings and a differentiable triple score.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

import numpy as np

from repro.autograd import Adam, losses, nn, ops
from repro.autograd.tensor import Tensor
from repro.core.exceptions import ConfigError, NotFittedError
from repro.core.rng import ensure_rng
from repro.kg.sampling import corrupt_batch
from repro.kg.triples import TripleStore

if TYPE_CHECKING:  # pragma: no cover - import is type-only to avoid a cycle
    from repro.runtime import TrainingRuntime

__all__ = ["KGEModel"]


class KGEModel(nn.Module, abc.ABC):
    """Base class for KGE models.

    Parameters
    ----------
    num_entities, num_relations:
        Id-space sizes of the graph to embed.
    dim:
        Embedding dimensionality ``d``.
    seed:
        Seed for parameter initialization and training randomness.
    """

    #: "margin" (translation distance) or "logistic" (semantic matching).
    loss_type: str = "margin"
    #: Renormalize entity rows to unit norm after each step (TransE-style).
    normalize_entities: bool = False

    def __init__(self, num_entities: int, num_relations: int, dim: int = 16, seed=None) -> None:
        if dim < 1:
            raise ConfigError("embedding dim must be >= 1")
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.dim = dim
        self._rng = ensure_rng(seed)
        self.entity = nn.Embedding(num_entities, dim, seed=self._rng)
        self.relation = nn.Embedding(num_relations, dim, seed=self._rng)
        self._fitted = False
        self._build(self._rng)

    def _build(self, rng: np.random.Generator) -> None:
        """Hook for subclasses that need extra parameters."""

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def score(self, heads: np.ndarray, relations: np.ndarray, tails: np.ndarray) -> Tensor:
        """Differentiable plausibility of triples; higher = more plausible.

        Translation models return the *negated* (squared) distance so the
        same convention works for ranking and for the logistic loss.
        """

    # ------------------------------------------------------------------ #
    def score_triples(
        self, heads: np.ndarray, relations: np.ndarray, tails: np.ndarray
    ) -> np.ndarray:
        """NumPy plausibility scores (no gradient tracking)."""
        return self.score(
            np.asarray(heads, dtype=np.int64),
            np.asarray(relations, dtype=np.int64),
            np.asarray(tails, dtype=np.int64),
        ).numpy()

    def entity_embeddings(self) -> np.ndarray:
        """The learned entity matrix ``(num_entities, dim)`` (no copy)."""
        return self.entity.weight.data

    def relation_embeddings(self) -> np.ndarray:
        return self.relation.weight.data

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    # ------------------------------------------------------------------ #
    def fit(
        self,
        store: TripleStore,
        epochs: int = 30,
        batch_size: int = 256,
        lr: float = 0.02,
        margin: float = 1.0,
        weight_decay: float = 1e-5,
        seed=None,
        runtime: "TrainingRuntime | None" = None,
        max_grad_norm: float | None = None,
        skip_nonfinite: str = "off",
        dense_updates: bool = False,
    ) -> list[float]:
        """Train on all facts in ``store``; returns per-epoch mean loss.

        ``runtime`` threads the resilience layer through the loop (see
        :mod:`repro.runtime` and ``docs/robustness.md``): fault injection
        fires before each optimizer step, the divergence detector observes
        every batch loss, and the checkpointer snapshots parameters +
        optimizer + RNG state at epoch boundaries.  When the checkpoint
        directory already holds a snapshot, training *resumes* from the
        epoch after it — replaying the exact RNG stream, so an interrupted
        run converges to bitwise-identical parameters.

        ``max_grad_norm`` / ``skip_nonfinite`` are forwarded to the
        optimizer (see :class:`repro.autograd.optim.Optimizer`).  By
        default embedding gradients stay row-sparse and the optimizer
        applies lazy row-wise updates, so a step costs O(batch * dim)
        regardless of the table sizes; pass ``dense_updates=True`` to
        densify every gradient and reproduce the historical dense
        training path bitwise.
        """
        if store.num_triples == 0:
            raise ConfigError("cannot fit a KGE model on an empty triple store")
        rng = ensure_rng(seed if seed is not None else self._rng)
        params = self.parameters()
        optimizer = Adam(
            params,
            lr=lr,
            weight_decay=weight_decay,
            max_grad_norm=max_grad_norm,
            skip_nonfinite=skip_nonfinite,
            dense_updates=dense_updates,
        )
        history: list[float] = []
        start_epoch = 0
        if runtime is not None:
            snapshot = runtime.resume(params, optimizer=optimizer, rng=rng)
            if snapshot is not None:
                start_epoch = snapshot.step + 1
                history = [float(v) for v in snapshot.extra.get("history", [])]
        n = store.num_triples
        batches_per_epoch = (n + batch_size - 1) // batch_size
        step = start_epoch * batches_per_epoch
        for epoch in range(start_epoch, epochs):
            perm = rng.permutation(n)
            total = 0.0
            for start in range(0, n, batch_size):
                idx = perm[start : start + batch_size]
                loss = self._batch_loss(store, idx, rng, margin)
                optimizer.zero_grad()
                loss.backward()
                if runtime is not None:
                    runtime.before_step(step, params)
                optimizer.step()
                if self.normalize_entities:
                    self._renormalize()
                loss_value = loss.item()
                if runtime is not None:
                    runtime.observe_loss(loss_value)
                total += loss_value * idx.size
                step += 1
            history.append(total / n)
            if runtime is not None:
                runtime.maybe_checkpoint(
                    epoch, params, optimizer=optimizer, rng=rng,
                    extra={"history": history},
                )
        self._fitted = True
        return history

    def _batch_loss(
        self,
        store: TripleStore,
        idx: np.ndarray,
        rng: np.random.Generator,
        margin: float,
    ) -> Tensor:
        pos_h, pos_r, pos_t = store.heads[idx], store.relations[idx], store.tails[idx]
        neg_h, neg_r, neg_t = corrupt_batch(store, idx, rng)
        pos = self.score(pos_h, pos_r, pos_t)
        neg = self.score(neg_h, neg_r, neg_t)
        if self.loss_type == "margin":
            # score = -distance, so the hinge is margin + d(pos) - d(neg)
            return losses.margin_ranking_loss(-pos, -neg, margin=margin)
        if self.loss_type == "logistic":
            return (ops.softplus(-pos) + ops.softplus(neg)).mean()
        raise ConfigError(f"unknown loss_type {self.loss_type!r}")

    def _renormalize(self) -> None:
        w = self.entity.weight.data
        norms = np.linalg.norm(w, axis=1, keepdims=True)
        np.divide(w, np.maximum(norms, 1.0), out=w)

    def require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")
