"""Semantic-matching KGE models: DistMult and ComplEx.

These score triples by similarity in a latent space rather than by
translation distance.  DistMult is the model RCF uses to preserve
relational structure between items; ComplEx is included as the natural
extension handling asymmetric relations (a "future directions" item).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import nn
from repro.autograd.tensor import Tensor

from .base import KGEModel

__all__ = ["DistMult", "ComplEx", "RotatE"]


class DistMult(KGEModel):
    """DistMult: ``score = sum(h * r * t)`` (a diagonal bilinear form)."""

    loss_type = "logistic"
    normalize_entities = False

    def score(self, heads, relations, tails) -> Tensor:
        h = self.entity(heads)
        r = self.relation(relations)
        t = self.entity(tails)
        return (h * r * t).sum(axis=1)


class ComplEx(KGEModel):
    """ComplEx: Hermitian product ``Re(<h, r, conj(t)>)``.

    Embeddings are stored with real and imaginary halves concatenated in a
    single ``2 * dim``-wide table, so the base-class trainer applies
    unchanged.
    """

    loss_type = "logistic"
    normalize_entities = False

    def __init__(self, num_entities: int, num_relations: int, dim: int = 16, seed=None) -> None:
        self.half = dim
        super().__init__(num_entities, num_relations, dim * 2, seed=seed)

    def _split(self, x: Tensor) -> tuple[Tensor, Tensor]:
        return x[:, : self.half], x[:, self.half :]

    def score(self, heads, relations, tails) -> Tensor:
        h_re, h_im = self._split(self.entity(heads))
        r_re, r_im = self._split(self.relation(relations))
        t_re, t_im = self._split(self.entity(tails))
        real = (h_re * r_re * t_re).sum(axis=1)
        real = real + (h_im * r_re * t_im).sum(axis=1)
        real = real + (h_re * r_im * t_im).sum(axis=1)
        return real - (h_im * r_im * t_re).sum(axis=1)


class RotatE(KGEModel):
    """RotatE: relations as rotations in the complex plane (extension).

    ``t ~ h o r`` with ``|r_i| = 1``; the score is the negated squared
    modulus of ``h o r - t``.  Post-survey but the natural next point on
    the translation-family axis, included for the E5 comparison.  The unit
    modulus is enforced by construction: the relation table stores phase
    angles and the rotation is ``(cos theta, sin theta)``.
    """

    loss_type = "margin"
    normalize_entities = True

    def __init__(self, num_entities: int, num_relations: int, dim: int = 16, seed=None) -> None:
        self.half = dim
        super().__init__(num_entities, num_relations, dim * 2, seed=seed)

    def _build(self, rng) -> None:
        # Relation embeddings are phases; re-init to a sensible range.
        self.relation.weight.data[:] = rng.uniform(
            -np.pi, np.pi, size=self.relation.weight.shape
        )

    def _split(self, x: Tensor) -> tuple[Tensor, Tensor]:
        return x[:, : self.half], x[:, self.half :]

    def score(self, heads, relations, tails) -> Tensor:
        from repro.autograd import ops

        h_re, h_im = self._split(self.entity(heads))
        t_re, t_im = self._split(self.entity(tails))
        phase = self.relation(relations)[:, : self.half]
        # cos/sin through the engine: cos(x) = sin(x + pi/2) not available,
        # so build both from tanh-free primitives: use exp of imaginary
        # parts is unavailable too -> express via the available ops:
        # cos(x), sin(x) implemented with numpy in forward and exact
        # derivatives via the chain rule below.
        cos = _cosine(phase)
        sin = _sine(phase)
        rot_re = h_re * cos - h_im * sin
        rot_im = h_re * sin + h_im * cos
        d_re = rot_re - t_re
        d_im = rot_im - t_im
        return -((d_re * d_re).sum(axis=1) + (d_im * d_im).sum(axis=1))


def _cosine(x: Tensor) -> Tensor:
    out_data = np.cos(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(-grad * np.sin(x.data))

    return Tensor._make(out_data, (x,), backward)


def _sine(x: Tensor) -> Tensor:
    out_data = np.sin(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * np.cos(x.data))

    return Tensor._make(out_data, (x,), backward)
