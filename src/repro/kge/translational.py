"""Translation-distance KGE models: TransE, TransH, TransR, TransD.

All four model a fact ``(h, r, t)`` as a translation ``h + r ~ t`` in (a
projection of) the embedding space, differing only in how entities are
projected per relation:

* **TransE** — no projection; one space for everything.
* **TransH** — projection onto a relation-specific hyperplane.
* **TransR** — a full relation-specific linear map.
* **TransD** — a dynamic rank-one map built from entity and relation
  projection vectors.

Scores are negated squared L2 distances, so "higher is more plausible"
holds uniformly across the library.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import nn
from repro.autograd.tensor import Tensor

from .base import KGEModel

__all__ = ["TransE", "TransH", "TransR", "TransD"]


def _neg_sq_distance(delta: Tensor) -> Tensor:
    """``-(||delta||_2)^2`` row-wise for a (batch, dim) tensor."""
    return -(delta * delta).sum(axis=1)


class TransE(KGEModel):
    """TransE: ``score = -||h + r - t||^2`` with unit-norm entities."""

    loss_type = "margin"
    normalize_entities = True

    def score(self, heads, relations, tails) -> Tensor:
        h = self.entity(heads)
        r = self.relation(relations)
        t = self.entity(tails)
        return _neg_sq_distance(h + r - t)


class TransH(KGEModel):
    """TransH: translate on a relation-specific hyperplane.

    Each relation owns a (normalized) hyperplane normal ``w_r``; entities
    are projected as ``e - (w_r . e) w_r`` before the TransE score.
    """

    loss_type = "margin"
    normalize_entities = True

    def _build(self, rng) -> None:
        self.normal = nn.Embedding(self.num_relations, self.dim, seed=rng)

    def _project(self, e: Tensor, w: Tensor) -> Tensor:
        inner = (e * w).sum(axis=1, keepdims=True)
        return e - inner * w

    def score(self, heads, relations, tails) -> Tensor:
        h = self.entity(heads)
        r = self.relation(relations)
        t = self.entity(tails)
        w_raw = self.normal(relations)
        norm = ((w_raw * w_raw).sum(axis=1, keepdims=True) + 1e-12) ** 0.5
        w = w_raw / norm
        return _neg_sq_distance(self._project(h, w) + r - self._project(t, w))


class TransR(KGEModel):
    """TransR: a full projection matrix ``M_r`` per relation.

    Entities live in an entity space and are mapped to each relation's own
    space: ``score = -||h M_r + r - t M_r||^2``.  This is the KGE module
    used by CKE and for initialization by KGAT/AKUPM in the survey.
    """

    loss_type = "margin"
    normalize_entities = True

    def _build(self, rng) -> None:
        # One (dim x dim) map per relation, initialized near identity so
        # early training behaves like TransE.
        eye = np.eye(self.dim)
        noise = rng.normal(0.0, 0.05, size=(self.num_relations, self.dim, self.dim))
        self.projection = nn.Parameter(eye[None, :, :] + noise)

    def score(self, heads, relations, tails) -> Tensor:
        h = self.entity(heads)
        r = self.relation(relations)
        t = self.entity(tails)
        m = self.projection[np.asarray(relations, dtype=np.int64)]
        # Batched vector-matrix products via matmul broadcasting.
        h_proj = (h.reshape(h.shape[0], 1, self.dim) @ m).reshape(h.shape)
        t_proj = (t.reshape(t.shape[0], 1, self.dim) @ m).reshape(t.shape)
        return _neg_sq_distance(h_proj + r - t_proj)


class TransD(KGEModel):
    """TransD: dynamic rank-one projections from entity/relation vectors.

    With projection vectors ``h_p`` (per entity) and ``r_p`` (per relation),
    the head is mapped as ``h + (h_p . h) r_p`` (equal entity/relation dims),
    the efficient formulation of the original mapping matrix
    ``M = r_p h_p^T + I``.  Used by DKN for news entity embeddings.
    """

    loss_type = "margin"
    normalize_entities = True

    def _build(self, rng) -> None:
        self.entity_proj = nn.Embedding(self.num_entities, self.dim, seed=rng)
        self.relation_proj = nn.Embedding(self.num_relations, self.dim, seed=rng)

    def _map(self, e: Tensor, e_p: Tensor, r_p: Tensor) -> Tensor:
        inner = (e_p * e).sum(axis=1, keepdims=True)
        return e + inner * r_p

    def score(self, heads, relations, tails) -> Tensor:
        h = self.entity(heads)
        t = self.entity(tails)
        r = self.relation(relations)
        h_p = self.entity_proj(heads)
        t_p = self.entity_proj(tails)
        r_p = self.relation_proj(relations)
        return _neg_sq_distance(self._map(h, h_p, r_p) + r - self._map(t, t_p, r_p))
