"""Recommender models: baselines plus the survey's three KG-method families.

Importing this package registers every implementation in the model
registry, which is how Table 3 regeneration discovers what is implemented.
"""

from . import baselines, embedding_based, path_based, unified
from .common import GradientRecommender

__all__ = [
    "baselines",
    "embedding_based",
    "path_based",
    "unified",
    "GradientRecommender",
]
