"""Classic CF baselines: popularity, neighborhoods, latent factors, FM."""

from .bpr import BPRMF
from .fm import FactorizationMachine, FMCore
from .knn import ItemKNN, UserKNN
from .mf import NMF, FunkSVD, nmf_factorize
from .nonpersonalized import MostPopular, Random

__all__ = [
    "Random",
    "MostPopular",
    "ItemKNN",
    "UserKNN",
    "FunkSVD",
    "NMF",
    "nmf_factorize",
    "BPRMF",
    "FactorizationMachine",
    "FMCore",
]
