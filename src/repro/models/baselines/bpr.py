"""Bayesian Personalized Ranking matrix factorization (BPR-MF).

The canonical pairwise implicit-feedback baseline: maximize
``log sigma(x_ui - x_uj)`` over observed/unobserved item pairs.  Implemented
with hand-derived SGD updates (no autograd) since this model is on the hot
path of every comparative study.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigError, DataError
from repro.core.recommender import Recommender
from repro.core.registry import ModelCard, Usage, register_model
from repro.core.rng import ensure_rng

__all__ = ["BPRMF"]


@register_model(
    "BPR-MF", ModelCard("BPR-MF", "-", 0, Usage.BASELINE, frozenset({"MF"}))
)
class BPRMF(Recommender):
    """Pairwise-ranking matrix factorization with item biases."""

    def __init__(
        self,
        dim: int = 16,
        epochs: int = 40,
        lr: float = 0.05,
        reg: float = 0.01,
        seed: int | None = 0,
    ) -> None:
        super().__init__()
        if dim < 1:
            raise ConfigError("dim must be >= 1")
        self.dim = dim
        self.epochs = epochs
        self.lr = lr
        self.reg = reg
        self.seed = seed
        self.user_factors: np.ndarray | None = None
        self.item_factors: np.ndarray | None = None
        self.item_bias: np.ndarray | None = None

    def fit(self, dataset: Dataset) -> "BPRMF":
        rng = ensure_rng(self.seed)
        m, n = dataset.num_users, dataset.num_items
        matrix = dataset.interactions
        if matrix.nnz == 0:
            raise DataError("cannot fit BPR on empty interactions")
        self.user_factors = rng.normal(0.0, 0.1, (m, self.dim))
        self.item_factors = rng.normal(0.0, 0.1, (n, self.dim))
        self.item_bias = np.zeros(n)

        for __ in range(self.epochs):
            users, pos, neg = matrix.sample_bpr_triples(matrix.nnz, seed=rng)
            for u, i, j in zip(users, pos, neg):
                pu = self.user_factors[u]
                qi = self.item_factors[i]
                qj = self.item_factors[j]
                x = self.item_bias[i] - self.item_bias[j] + pu @ (qi - qj)
                # d/dx of -log sigmoid(x) is -(1 - sigmoid(x)).
                g = 1.0 / (1.0 + np.exp(x))
                self.user_factors[u] = pu + self.lr * (g * (qi - qj) - self.reg * pu)
                self.item_factors[i] = qi + self.lr * (g * pu - self.reg * qi)
                self.item_factors[j] = qj + self.lr * (-g * pu - self.reg * qj)
                self.item_bias[i] += self.lr * (g - self.reg * self.item_bias[i])
                self.item_bias[j] += self.lr * (-g - self.reg * self.item_bias[j])
        self._mark_fitted(dataset)
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        self.fitted_dataset
        return self.item_bias + self.item_factors @ self.user_factors[user_id]
