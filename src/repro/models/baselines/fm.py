"""Factorization machine over sparse (index, value) features.

FM is the fusion layer FMG applies across meta-graphs and the backbone of
DKFM; as a baseline it runs on user/item one-hots, optionally enriched with
the item's KG attribute entities (``use_kg_features=True``), which already
demonstrates the simplest form of KG-as-side-information.

The second-order term uses the standard O(kd) identity
``0.5 * ((sum_i v_i x_i)^2 - sum_i (v_i x_i)^2)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigError, DataError
from repro.core.recommender import Recommender
from repro.core.registry import ModelCard, Usage, register_model
from repro.core.rng import ensure_rng

__all__ = ["FMCore", "FactorizationMachine"]


class FMCore:
    """Reusable FM parameter block + SGD on (indices, values) examples."""

    def __init__(self, num_features: int, dim: int, seed=None) -> None:
        rng = ensure_rng(seed)
        self.bias = 0.0
        self.linear = np.zeros(num_features)
        self.factors = rng.normal(0.0, 0.05, (num_features, dim))

    def raw_score(self, indices: np.ndarray, values: np.ndarray) -> float:
        v = self.factors[indices] * values[:, None]
        summed = v.sum(axis=0)
        pairwise = 0.5 * float(summed @ summed - (v * v).sum())
        return self.bias + float(self.linear[indices] @ values) + pairwise

    def sgd_step(
        self,
        indices: np.ndarray,
        values: np.ndarray,
        label: float,
        lr: float,
        reg: float,
    ) -> float:
        """One logistic-loss SGD step; returns the example loss."""
        score = np.clip(self.raw_score(indices, values), -30.0, 30.0)
        prob = 1.0 / (1.0 + np.exp(-score))
        err = prob - label  # d loss / d score
        self.bias -= lr * err
        v = self.factors[indices]
        summed = (v * values[:, None]).sum(axis=0)
        grad_v = values[:, None] * (summed[None, :] - values[:, None] * v)
        # Clip the factor gradient so dense high-dimensional features
        # (FMG/DKFM) cannot blow the parameters up in one step.
        norm = np.linalg.norm(grad_v)
        if norm > 5.0:
            grad_v *= 5.0 / norm
        self.linear[indices] -= lr * (err * values + reg * self.linear[indices])
        self.factors[indices] -= lr * (err * grad_v + reg * v)
        return float(-label * np.log(max(prob, 1e-12)) - (1 - label) * np.log(max(1 - prob, 1e-12)))


@register_model(
    "FM", ModelCard("FM", "-", 0, Usage.BASELINE, frozenset({"MF"}))
)
class FactorizationMachine(Recommender):
    """FM recommender on one-hot user/item (+ optional KG attribute) features."""

    def __init__(
        self,
        dim: int = 8,
        epochs: int = 20,
        lr: float = 0.05,
        reg: float = 0.005,
        negatives_per_positive: int = 2,
        use_kg_features: bool = False,
        seed: int | None = 0,
    ) -> None:
        super().__init__()
        if dim < 1:
            raise ConfigError("dim must be >= 1")
        self.dim = dim
        self.epochs = epochs
        self.lr = lr
        self.reg = reg
        self.negatives_per_positive = negatives_per_positive
        self.use_kg_features = use_kg_features
        self.seed = seed
        self._core: FMCore | None = None
        self._item_features: list[np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    def _features(self, user: int, item: int) -> tuple[np.ndarray, np.ndarray]:
        dataset = self.fitted_dataset
        idx = [user, dataset.num_users + item]
        idx.extend(self._item_features[item])
        indices = np.asarray(idx, dtype=np.int64)
        return indices, np.ones(indices.size)

    def _build_item_features(self, dataset: Dataset) -> None:
        base = dataset.num_users + dataset.num_items
        features: list[np.ndarray] = []
        for item in range(dataset.num_items):
            if not self.use_kg_features or dataset.kg is None:
                features.append(np.empty(0, dtype=np.int64))
                continue
            entity = dataset.entity_of_item(item)
            attrs = [
                base + nbr
                for __, nbr in dataset.kg.neighbors(entity, undirected=False)
            ]
            features.append(np.asarray(attrs, dtype=np.int64))
        self._item_features = features

    # ------------------------------------------------------------------ #
    def fit(self, dataset: Dataset) -> "FactorizationMachine":
        if self.use_kg_features and dataset.kg is None:
            raise DataError("use_kg_features=True requires a dataset with a KG")
        self._mark_fitted(dataset)
        self._build_item_features(dataset)
        num_features = dataset.num_users + dataset.num_items
        if self.use_kg_features and dataset.kg is not None:
            num_features += dataset.kg.num_entities
        rng = ensure_rng(self.seed)
        self._core = FMCore(num_features, self.dim, seed=rng)

        pairs = dataset.interactions.pairs()
        if pairs.shape[0] == 0:
            raise DataError("cannot fit FM on empty interactions")
        n = dataset.num_items
        for __ in range(self.epochs):
            for idx in rng.permutation(pairs.shape[0]):
                u, v = int(pairs[idx, 0]), int(pairs[idx, 1])
                feats, vals = self._features(u, v)
                self._core.sgd_step(feats, vals, 1.0, self.lr, self.reg)
                for __neg in range(self.negatives_per_positive):
                    j = int(rng.integers(0, n))
                    feats, vals = self._features(u, j)
                    self._core.sgd_step(feats, vals, 0.0, self.lr, self.reg)
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        dataset = self.fitted_dataset
        scores = np.empty(dataset.num_items)
        for item in range(dataset.num_items):
            feats, vals = self._features(user_id, item)
            scores[item] = self._core.raw_score(feats, vals)
        return scores
