"""Memory-based collaborative filtering (Section 2.2).

* :class:`ItemKNN` — "recommend similar items for a user based on the
  user's purchase history": cosine similarity between item interaction
  columns, optionally truncated to the top-k neighbors per item.
* :class:`UserKNN` — "recommend unobserved items based on the interaction
  records of people similar to the specific user".
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigError
from repro.core.recommender import Recommender
from repro.core.registry import ModelCard, Usage, register_model

__all__ = ["ItemKNN", "UserKNN"]


def _cosine_similarity(matrix: sparse.csr_matrix, shrinkage: float) -> sparse.csr_matrix:
    """Column-cosine similarity with optional shrinkage, zero diagonal."""
    norms = np.sqrt(np.asarray(matrix.multiply(matrix).sum(axis=0)).ravel())
    inv = np.divide(1.0, norms, out=np.zeros_like(norms), where=norms > 0)
    normalized = matrix @ sparse.diags(inv)
    sim = (normalized.T @ normalized).tocsr()
    if shrinkage > 0:
        sim.data = sim.data / (1.0 + shrinkage / np.abs(sim.data))
    sim.setdiag(0.0)
    sim.eliminate_zeros()
    return sim


def _truncate_topk(sim: sparse.csr_matrix, k: int) -> sparse.csr_matrix:
    """Keep only each row's top-k strongest similarities."""
    sim = sim.tolil()
    for row in range(sim.shape[0]):
        data = np.asarray(sim.data[row])
        if data.size > k:
            keep = np.argpartition(-data, k - 1)[:k]
            cols = [sim.rows[row][i] for i in keep]
            vals = [sim.data[row][i] for i in keep]
            sim.rows[row] = cols
            sim.data[row] = vals
    return sim.tocsr()


@register_model(
    "ItemKNN", ModelCard("ItemKNN", "-", 0, Usage.BASELINE, frozenset())
)
class ItemKNN(Recommender):
    """Item-based neighborhood CF with cosine similarity."""

    def __init__(self, num_neighbors: int = 20, shrinkage: float = 0.0) -> None:
        super().__init__()
        if num_neighbors < 1:
            raise ConfigError("num_neighbors must be >= 1")
        self.num_neighbors = num_neighbors
        self.shrinkage = shrinkage
        self._similarity: sparse.csr_matrix | None = None
        self._train: sparse.csr_matrix | None = None

    def fit(self, dataset: Dataset) -> "ItemKNN":
        matrix = dataset.interactions.to_csr()
        sim = _cosine_similarity(matrix, self.shrinkage)
        self._similarity = _truncate_topk(sim, self.num_neighbors)
        self._train = matrix
        self._mark_fitted(dataset)
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        self.fitted_dataset
        row = self._train.getrow(user_id)
        return np.asarray((row @ self._similarity).todense()).ravel()


@register_model(
    "UserKNN", ModelCard("UserKNN", "-", 0, Usage.BASELINE, frozenset())
)
class UserKNN(Recommender):
    """User-based neighborhood CF with cosine similarity."""

    def __init__(self, num_neighbors: int = 20, shrinkage: float = 0.0) -> None:
        super().__init__()
        if num_neighbors < 1:
            raise ConfigError("num_neighbors must be >= 1")
        self.num_neighbors = num_neighbors
        self.shrinkage = shrinkage
        self._similarity: sparse.csr_matrix | None = None
        self._train: sparse.csr_matrix | None = None

    def fit(self, dataset: Dataset) -> "UserKNN":
        matrix = dataset.interactions.to_csr()
        sim = _cosine_similarity(matrix.T.tocsr(), self.shrinkage)
        self._similarity = _truncate_topk(sim, self.num_neighbors)
        self._train = matrix
        self._mark_fitted(dataset)
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        self.fitted_dataset
        weights = self._similarity.getrow(user_id)
        return np.asarray((weights @ self._train).todense()).ravel()
