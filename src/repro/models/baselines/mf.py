"""Latent factor models (model-based CF, Section 2.2).

* :class:`FunkSVD` — pointwise matrix factorization trained by SGD on
  observed positives and sampled negatives (implicit feedback variant of
  the classic rating model).
* :class:`NMF` — non-negative matrix factorization via multiplicative
  updates, the technique HeteRec applies per meta-path.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigError, DataError
from repro.core.recommender import Recommender
from repro.core.registry import ModelCard, Usage, register_model
from repro.core.rng import ensure_rng

__all__ = ["FunkSVD", "NMF", "nmf_factorize"]


@register_model(
    "FunkSVD", ModelCard("FunkSVD", "-", 0, Usage.BASELINE, frozenset({"MF"}))
)
class FunkSVD(Recommender):
    """SGD matrix factorization with biases, pointwise squared loss."""

    def __init__(
        self,
        dim: int = 16,
        epochs: int = 30,
        lr: float = 0.05,
        reg: float = 0.02,
        negatives_per_positive: int = 2,
        seed: int | None = 0,
    ) -> None:
        super().__init__()
        if dim < 1:
            raise ConfigError("dim must be >= 1")
        self.dim = dim
        self.epochs = epochs
        self.lr = lr
        self.reg = reg
        self.negatives_per_positive = negatives_per_positive
        self.seed = seed
        self.user_factors: np.ndarray | None = None
        self.item_factors: np.ndarray | None = None
        self.user_bias: np.ndarray | None = None
        self.item_bias: np.ndarray | None = None

    def fit(self, dataset: Dataset) -> "FunkSVD":
        rng = ensure_rng(self.seed)
        m, n = dataset.num_users, dataset.num_items
        self.user_factors = rng.normal(0.0, 0.1, (m, self.dim))
        self.item_factors = rng.normal(0.0, 0.1, (n, self.dim))
        self.user_bias = np.zeros(m)
        self.item_bias = np.zeros(n)

        pairs = dataset.interactions.pairs()
        if pairs.shape[0] == 0:
            raise DataError("cannot fit FunkSVD on empty interactions")
        for __ in range(self.epochs):
            users = pairs[:, 0]
            items = pairs[:, 1]
            labels = np.ones(pairs.shape[0])
            if self.negatives_per_positive > 0:
                k = self.negatives_per_positive
                neg_users = np.repeat(users, k)
                neg_items = rng.integers(0, n, size=neg_users.size)
                users = np.concatenate([users, neg_users])
                items = np.concatenate([items, neg_items])
                labels = np.concatenate([labels, np.zeros(neg_users.size)])
            order = rng.permutation(users.size)
            for idx in order:
                u, v, y = int(users[idx]), int(items[idx]), labels[idx]
                pu, qv = self.user_factors[u], self.item_factors[v]
                pred = self.user_bias[u] + self.item_bias[v] + pu @ qv
                err = y - pred
                self.user_bias[u] += self.lr * (err - self.reg * self.user_bias[u])
                self.item_bias[v] += self.lr * (err - self.reg * self.item_bias[v])
                pu_new = pu + self.lr * (err * qv - self.reg * pu)
                qv_new = qv + self.lr * (err * pu - self.reg * qv)
                self.user_factors[u] = pu_new
                self.item_factors[v] = qv_new
        self._mark_fitted(dataset)
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        self.fitted_dataset
        return (
            self.user_bias[user_id]
            + self.item_bias
            + self.item_factors @ self.user_factors[user_id]
        )


def nmf_factorize(
    matrix: np.ndarray,
    dim: int,
    iterations: int = 120,
    seed: int | np.random.Generator | None = 0,
    eps: float = 1e-9,
) -> tuple[np.ndarray, np.ndarray]:
    """Multiplicative-update NMF: ``matrix ~ W @ H`` with ``W, H >= 0``.

    Shared by the :class:`NMF` baseline and HeteRec's per-meta-path
    factorization of diffused preference matrices.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if (matrix < 0).any():
        raise DataError("NMF requires a non-negative matrix")
    rng = ensure_rng(seed)
    m, n = matrix.shape
    w = rng.random((m, dim)) + 0.01
    h = rng.random((dim, n)) + 0.01
    for __ in range(iterations):
        h *= (w.T @ matrix) / (w.T @ w @ h + eps)
        w *= (matrix @ h.T) / (w @ h @ h.T + eps)
    return w, h


@register_model("NMF", ModelCard("NMF", "-", 0, Usage.BASELINE, frozenset({"MF"})))
class NMF(Recommender):
    """Non-negative MF of the binary feedback matrix."""

    def __init__(self, dim: int = 16, iterations: int = 120, seed: int | None = 0) -> None:
        super().__init__()
        if dim < 1:
            raise ConfigError("dim must be >= 1")
        self.dim = dim
        self.iterations = iterations
        self.seed = seed
        self.user_factors: np.ndarray | None = None
        self.item_factors: np.ndarray | None = None

    def fit(self, dataset: Dataset) -> "NMF":
        dense = dataset.interactions.to_dense()
        w, h = nmf_factorize(dense, self.dim, self.iterations, self.seed)
        self.user_factors = w
        self.item_factors = h.T
        self._mark_fitted(dataset)
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        self.fitted_dataset
        return self.item_factors @ self.user_factors[user_id]
