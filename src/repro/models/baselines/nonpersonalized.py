"""Non-personalized baselines: random and popularity ranking.

These anchor every comparative study: a KG-aware method that cannot beat
``MostPopular`` on a dense dataset has learned nothing, and ``Random``
calibrates the floor of every metric.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.recommender import Recommender
from repro.core.registry import ModelCard, Usage, register_model
from repro.core.rng import ensure_rng

__all__ = ["Random", "MostPopular"]


@register_model(
    "Random", ModelCard("Random", "-", 0, Usage.BASELINE, frozenset())
)
class Random(Recommender):
    """Uniformly random scores (per-user deterministic given the seed)."""

    def __init__(self, seed: int | None = 0) -> None:
        super().__init__()
        self._seed = seed
        self._scores: np.ndarray | None = None

    def fit(self, dataset: Dataset) -> "Random":
        rng = ensure_rng(self._seed)
        self._scores = rng.random((dataset.num_users, dataset.num_items))
        self._mark_fitted(dataset)
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        self.fitted_dataset  # raises if unfitted
        return self._scores[user_id]


@register_model(
    "MostPopular", ModelCard("MostPopular", "-", 0, Usage.BASELINE, frozenset())
)
class MostPopular(Recommender):
    """Rank items by global training interaction count."""

    def __init__(self) -> None:
        super().__init__()
        self._popularity: np.ndarray | None = None

    def fit(self, dataset: Dataset) -> "MostPopular":
        self._popularity = dataset.interactions.item_degrees().astype(np.float64)
        self._mark_fitted(dataset)
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        self.fitted_dataset
        return self._popularity
