"""Shared training scaffold for gradient-trained recommenders.

Most surveyed models reduce to: build parameters from the dataset, score a
batch of (user, item) pairs differentiably, and optimize a pairwise BPR or
pointwise BCE objective over positives and sampled negatives (the survey's
Eq. 1/10 patterns).  :class:`GradientRecommender` implements that loop once;
concrete models override :meth:`_build` and :meth:`_score_batch` and, for
multi-task methods, :meth:`_extra_loss`.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.autograd import Adam, losses, nn
from repro.autograd.tensor import Tensor
from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigError, DataError
from repro.core.recommender import Recommender
from repro.core.rng import ensure_rng

__all__ = ["GradientRecommender"]


class GradientRecommender(Recommender, nn.Module, abc.ABC):
    """Base class: autograd parameters + BPR/BCE mini-batch training.

    Parameters
    ----------
    dim:
        Latent dimensionality.
    epochs, batch_size, lr, l2:
        Optimization hyper-parameters (Adam).
    num_negatives:
        Negatives sampled per positive (pointwise mode) or 1 (pairwise).
    loss:
        ``"bpr"`` (pairwise) or ``"bce"`` (pointwise log loss).
    seed:
        Seed controlling initialization and sampling.
    """

    def __init__(
        self,
        dim: int = 16,
        epochs: int = 30,
        batch_size: int = 128,
        lr: float = 0.02,
        l2: float = 1e-5,
        num_negatives: int = 1,
        loss: str = "bpr",
        seed: int | None = 0,
    ) -> None:
        Recommender.__init__(self)
        if dim < 1:
            raise ConfigError("dim must be >= 1")
        if loss not in ("bpr", "bce"):
            raise ConfigError("loss must be 'bpr' or 'bce'")
        self.dim = dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.l2 = l2
        self.num_negatives = max(1, num_negatives)
        self.loss = loss
        self.seed = seed
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------ #
    # hooks
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _build(self, dataset: Dataset, rng: np.random.Generator) -> None:
        """Create parameters and any precomputed structures."""

    @abc.abstractmethod
    def _score_batch(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        """Differentiable scores for parallel user/item id arrays."""

    def _extra_loss(
        self, rng: np.random.Generator, batch_size: int
    ) -> Tensor | None:
        """Optional auxiliary loss (multi-task KG terms); ``None`` to skip."""
        return None

    def _post_step(self) -> None:
        """Hook after each optimizer step (e.g. embedding renormalization)."""

    def _post_epoch(self, epoch: int, rng: np.random.Generator) -> None:
        """Hook after each epoch (e.g. ripple-set resampling)."""

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def fit(self, dataset: Dataset) -> "GradientRecommender":
        self._mark_fitted(dataset)
        rng = ensure_rng(self.seed)
        self._build(dataset, rng)
        optimizer = Adam(self.parameters(), lr=self.lr, weight_decay=self.l2)

        pairs = dataset.interactions.pairs()
        if pairs.shape[0] == 0:
            raise DataError("cannot train on empty interactions")
        n_items = dataset.num_items
        self.loss_history = []
        for epoch in range(self.epochs):
            perm = rng.permutation(pairs.shape[0])
            total = 0.0
            for start in range(0, perm.size, self.batch_size):
                idx = perm[start : start + self.batch_size]
                users = pairs[idx, 0]
                positives = pairs[idx, 1]
                loss = self._batch_loss(users, positives, n_items, rng)
                extra = self._extra_loss(rng, idx.size)
                if extra is not None:
                    loss = loss + extra
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                self._post_step()
                total += loss.item() * idx.size
            self.loss_history.append(total / pairs.shape[0])
            self._post_epoch(epoch, rng)
        return self

    def _batch_loss(
        self,
        users: np.ndarray,
        positives: np.ndarray,
        n_items: int,
        rng: np.random.Generator,
    ) -> Tensor:
        if self.loss == "bpr":
            negatives = rng.integers(0, n_items, size=users.size)
            pos_scores = self._score_batch(users, positives)
            neg_scores = self._score_batch(users, negatives)
            return losses.bpr_loss(pos_scores, neg_scores)
        # pointwise BCE: positives labeled 1, sampled negatives labeled 0
        neg_users = np.repeat(users, self.num_negatives)
        negatives = rng.integers(0, n_items, size=neg_users.size)
        all_users = np.concatenate([users, neg_users])
        all_items = np.concatenate([positives, negatives])
        labels = np.concatenate([np.ones(users.size), np.zeros(neg_users.size)])
        logits = self._score_batch(all_users, all_items)
        return losses.bce_with_logits(logits, labels)

    # ------------------------------------------------------------------ #
    def score_all(self, user_id: int) -> np.ndarray:
        dataset = self.fitted_dataset
        n = dataset.num_items
        items = np.arange(n, dtype=np.int64)
        users = np.full(n, user_id, dtype=np.int64)
        chunks: list[np.ndarray] = []
        step = 512
        for start in range(0, n, step):
            chunk = self._score_batch(users[start : start + step], items[start : start + step])
            chunks.append(np.atleast_1d(chunk.numpy()))
        return np.concatenate(chunks)
