"""Embedding-based methods (survey Section 4.1): KGE-enriched item/user
representations, user-item graph translation, and multi-task variants."""

from .bem import BEM
from .cfkg import CFKG
from .cke import CKE
from .dkfm import DKFM
from .ecfkg import ECFKG
from .entity2rec import Entity2Rec
from .dkn import DKN
from .ksr import KSR
from .ktgan import KTGAN
from .ktup import KTUP
from .mkr import MKR
from .rcf import RCF
from .sed import SED
from .shine import SHINE

__all__ = [
    "CKE",
    "BEM",
    "ECFKG",
    "Entity2Rec",
    "CFKG",
    "DKN",
    "KSR",
    "MKR",
    "KTUP",
    "RCF",
    "SHINE",
    "KTGAN",
    "DKFM",
    "SED",
]
