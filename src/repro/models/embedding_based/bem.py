"""BEM — Bayes EMbedding (Ye et al., CIKM 2019).

BEM maintains two item embeddings: one from the *knowledge-related* graph
(attributes: brand, category, ...) learned with TransE, and one from the
*behavior* graph (co-buy/co-click item-item edges) learned with a graph
model.  A Bayesian framework then refines the two mutually — each acts as
the prior for the other — and recommendations come from nearest neighbors
of the user's history in the refined behavior space.

Here the behavior embedding is an SVD of the shifted-PPMI co-interaction
matrix (the classical closed-form network embedding) and the Bayesian
refinement is the conjugate-Gaussian posterior mean: each embedding is
pulled toward a least-squares map of the other, with precision weights.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.recommender import Recommender
from repro.core.registry import register_model
from repro.core.rng import ensure_rng
from repro.kge import TransE

__all__ = ["BEM"]


@register_model("BEM")
class BEM(Recommender):
    """Mutual Bayesian refinement of knowledge and behavior embeddings."""

    requires_kg = True

    def __init__(
        self,
        dim: int = 16,
        kge_epochs: int = 20,
        refine_rounds: int = 3,
        knowledge_precision: float = 1.0,
        behavior_precision: float = 1.0,
        seed: int | None = 0,
    ) -> None:
        super().__init__()
        self.dim = dim
        self.kge_epochs = kge_epochs
        self.refine_rounds = refine_rounds
        self.knowledge_precision = knowledge_precision
        self.behavior_precision = behavior_precision
        self.seed = seed
        self.knowledge_emb: np.ndarray | None = None
        self.behavior_emb: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    @staticmethod
    def _ppmi_svd(co: np.ndarray, dim: int) -> np.ndarray:
        """Shifted-PPMI SVD embedding of a co-occurrence matrix."""
        total = co.sum()
        if total == 0:
            return np.zeros((co.shape[0], dim))
        row = co.sum(axis=1, keepdims=True)
        col = co.sum(axis=0, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            pmi = np.log((co * total) / np.maximum(row * col, 1e-12))
        ppmi = np.maximum(np.nan_to_num(pmi, neginf=0.0), 0.0)
        u, s, __ = np.linalg.svd(ppmi, full_matrices=False)
        k = min(dim, s.size)
        out = np.zeros((co.shape[0], dim))
        out[:, :k] = u[:, :k] * np.sqrt(s[:k])
        return out

    @staticmethod
    def _least_squares_map(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """W minimizing ||src W - dst||^2 (ridge-stabilized)."""
        d = src.shape[1]
        gram = src.T @ src + 1e-6 * np.eye(d)
        return np.linalg.solve(gram, src.T @ dst)

    def fit(self, dataset: Dataset) -> "BEM":
        self._mark_fitted(dataset)
        rng = ensure_rng(self.seed)
        kg = dataset.kg

        # Knowledge-related graph embedding (TransE), item rows.
        kge = TransE(kg.num_entities, kg.num_relations, dim=self.dim, seed=rng)
        kge.fit(kg.store, epochs=self.kge_epochs, seed=rng)
        knowledge = kge.entity_embeddings()[dataset.item_entities].copy()

        # Behavior graph embedding: co-interaction PPMI + SVD.
        dense = dataset.interactions.to_dense()
        co = dense.T @ dense
        np.fill_diagonal(co, 0.0)
        behavior = self._ppmi_svd(co, self.dim)

        # Mutual Bayesian refinement (conjugate-Gaussian posterior means).
        pk, pb = self.knowledge_precision, self.behavior_precision
        for __ in range(self.refine_rounds):
            w_bk = self._least_squares_map(behavior, knowledge)
            w_kb = self._least_squares_map(knowledge, behavior)
            knowledge = (pk * knowledge + pb * (behavior @ w_bk)) / (pk + pb)
            behavior = (pb * behavior + pk * (knowledge @ w_kb)) / (pk + pb)

        self.knowledge_emb = knowledge
        self.behavior_emb = behavior
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        dataset = self.fitted_dataset
        history = dataset.interactions.items_of(user_id)
        if history.size == 0:
            return np.zeros(dataset.num_items)
        emb = self.behavior_emb
        norms = np.linalg.norm(emb, axis=1)
        profile = emb[history].mean(axis=0)
        denom = np.maximum(norms * max(np.linalg.norm(profile), 1e-12), 1e-12)
        return (emb @ profile) / denom
