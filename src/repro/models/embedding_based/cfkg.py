"""CFKG — Learning over knowledge-base embeddings (Zhang et al., 2018).

Constructs a *user-item* knowledge graph in which user behavior is one more
relation type, learns translation embeddings over the joint graph, and ranks
candidate items by the metric ``d(u + r_buy, v)`` (survey Eq. 7) — no
separate CF objective at all.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.recommender import Explanation, Recommender
from repro.core.registry import register_model
from repro.kg.builders import ensure_user_item_graph
from repro.kge import KGE_MODELS

__all__ = ["CFKG"]


@register_model("CFKG")
class CFKG(Recommender):
    """TransE over the lifted user-item graph; score = -d(u + r_buy, v)."""

    requires_kg = True
    supports_explanations = True

    def __init__(
        self,
        dim: int = 16,
        kge: str = "TransE",
        epochs: int = 30,
        lr: float = 0.02,
        margin: float = 1.0,
        seed: int | None = 0,
    ) -> None:
        super().__init__()
        self.dim = dim
        self.kge_name = kge
        self.epochs = epochs
        self.lr = lr
        self.margin = margin
        self.seed = seed
        self._lifted: Dataset | None = None
        self._model = None

    def fit(self, dataset: Dataset) -> "CFKG":
        self._mark_fitted(dataset)
        lifted = ensure_user_item_graph(dataset, interact_label="buy")
        kg = lifted.kg
        model = KGE_MODELS[self.kge_name](
            kg.num_entities, kg.num_relations, dim=self.dim, seed=self.seed
        )
        model.fit(
            kg.store,
            epochs=self.epochs,
            lr=self.lr,
            margin=self.margin,
            seed=self.seed,
        )
        self._lifted = lifted
        self._model = model
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        dataset = self.fitted_dataset
        lifted = self._lifted
        emb = self._model.entity_embeddings()
        rel = self._model.relation_embeddings()
        buy = rel[lifted.extra["interact_relation"]]
        u = emb[lifted.user_entities[user_id]]
        items = emb[lifted.item_entities]
        delta = u[None, :] + buy[None, :] - items
        return -(delta**2).sum(axis=1)

    @property
    def explanation_dataset(self) -> Dataset:
        """Explanations traverse the lifted user-item graph."""
        return self._lifted

    def explain(self, user_id: int, item_id: int) -> list[Explanation]:
        """Nearest shared attribute: the strongest translation bridge."""
        dataset = self.fitted_dataset
        lifted = self._lifted
        kg = lifted.kg
        user_entity = int(lifted.user_entities[user_id])
        item_entity = int(lifted.item_entities[item_id])
        out: list[Explanation] = []
        history = dataset.interactions.items_of(user_id)
        history_entities = set(
            int(lifted.item_entities[v]) for v in history
        )
        for relation, attr in kg.neighbors(item_entity, undirected=True):
            for rel2, other in kg.neighbors(attr, undirected=True):
                if other in history_entities and other != item_entity:
                    out.append(
                        Explanation(
                            user_id=user_id,
                            item_id=item_id,
                            kind="shared-attribute",
                            score=float(self.score_all(user_id)[item_id]),
                            entities=(other, attr, item_entity),
                            relations=(rel2, relation),
                        )
                    )
                    if len(out) >= 3:
                        return out
        return out
