"""CKE — Collaborative Knowledge base Embedding (Zhang et al., KDD 2016).

Unifies structural, textual, and collaborative signals (survey Eq. 2-3):
the item latent is ``v_j = eta_j + x_j + z_j`` where ``eta_j`` is a trainable
CF offset, ``x_j`` the TransR embedding of the item's KG entity, and ``z_j``
an autoencoder code of the item's content features (when present).  The
preference score is the inner product ``u_i^T v_j`` trained with BPR.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import nn
from repro.autograd.tensor import Tensor
from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigError
from repro.core.registry import register_model
from repro.kge import KGE_MODELS

from ..common import GradientRecommender
from .content import train_autoencoder

__all__ = ["CKE"]


@register_model("CKE")
class CKE(GradientRecommender):
    """Collaborative knowledge base embedding with TransR structure.

    ``kge`` selects the structural-knowledge encoder (the paper uses
    TransR; any model in :data:`repro.kge.KGE_MODELS` may be substituted,
    enabling the KGE-choice ablation of Study E5).
    """

    requires_kg = True

    def __init__(
        self,
        dim: int = 16,
        kge: str = "TransR",
        kge_epochs: int = 15,
        ae_epochs: int = 30,
        finetune_structure: bool = False,
        **kwargs,
    ) -> None:
        super().__init__(dim=dim, loss="bpr", **kwargs)
        if kge not in KGE_MODELS:
            raise ConfigError(f"unknown KGE model {kge!r}; pick from {sorted(KGE_MODELS)}")
        self.kge_name = kge
        self.kge_epochs = kge_epochs
        self.ae_epochs = ae_epochs
        self.finetune_structure = finetune_structure

    def _build(self, dataset: Dataset, rng: np.random.Generator) -> None:
        kg = dataset.kg
        kge = KGE_MODELS[self.kge_name](
            kg.num_entities, kg.num_relations, dim=self.dim, seed=rng
        )
        kge.fit(kg.store, epochs=self.kge_epochs, seed=rng)
        structural = kge.entity_embeddings()[dataset.item_entities]
        if structural.shape[1] != self.dim:  # ComplEx doubles the width
            structural = structural[:, : self.dim]

        content = np.zeros((dataset.num_items, self.dim))
        if dataset.item_text is not None:
            content = train_autoencoder(
                dataset.item_text, self.dim, epochs=self.ae_epochs, seed=rng
            )

        if self.finetune_structure:
            self.structure = nn.Parameter(structural.copy())
        else:
            self.structure = Tensor(structural)
        self.content = Tensor(content)
        self.user = nn.Embedding(dataset.num_users, self.dim, seed=rng)
        self.offset = nn.Embedding(dataset.num_items, self.dim, seed=rng)

    def _score_batch(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        u = self.user(users)
        v = self.offset(items) + self.structure[items] + self.content[items]
        return (u * v).sum(axis=1)

    def item_representation(self, item_id: int) -> np.ndarray:
        """The fused item latent ``eta + x + z`` (Eq. 2), for inspection."""
        self.fitted_dataset
        return (
            self.offset.weight.data[item_id]
            + self.structure.data[item_id]
            + self.content.data[item_id]
        )
