"""Content encoders shared by embedding-based models.

CKE feeds textual/visual item knowledge through (stacked denoising)
autoencoders; DKN uses a Kim-CNN text channel.  :func:`train_autoencoder`
provides the former: a linear autoencoder trained with MSE whose code layer
becomes the item's content embedding.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Adam, losses, nn, ops
from repro.autograd.tensor import Tensor
from repro.core.exceptions import ConfigError
from repro.core.rng import ensure_rng

__all__ = ["train_autoencoder"]


def train_autoencoder(
    features: np.ndarray,
    code_dim: int,
    epochs: int = 40,
    lr: float = 0.01,
    noise_std: float = 0.05,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Encode feature rows with a denoising linear autoencoder.

    Returns the ``(n, code_dim)`` code matrix.  Inputs are corrupted with
    Gaussian noise during training (the "denoising" in SDAE) and the tanh
    code layer keeps the embedding bounded.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ConfigError("features must be a 2-d matrix")
    rng = ensure_rng(seed)
    n, t = features.shape
    encoder = nn.Linear(t, code_dim, seed=rng)
    decoder = nn.Linear(code_dim, t, seed=rng)
    params = encoder.parameters() + decoder.parameters()
    optimizer = Adam(params, lr=lr)
    for __ in range(epochs):
        noisy = features + rng.normal(0.0, noise_std, features.shape)
        code = ops.tanh(encoder(Tensor(noisy)))
        recon = decoder(code)
        loss = losses.mse_loss(recon, features)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return ops.tanh(encoder(Tensor(features))).numpy()
