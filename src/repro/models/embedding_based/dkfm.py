"""DKFM — Deep Knowledge Factorization Machines (Dadoun et al., WWW 2019).

DKFM enriches a factorization machine for next-trip/POI recommendation with
TransE embeddings of the destination learned over a city KG.  Here the FM
runs over user/item one-hots plus the item's KG entity embedding injected
as dense-valued features — the exact "KGE vector as FM features" recipe.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import DataError
from repro.core.recommender import Recommender
from repro.core.registry import register_model
from repro.core.rng import ensure_rng
from repro.kge import TransE

from ..baselines.fm import FMCore

__all__ = ["DKFM"]


@register_model("DKFM")
class DKFM(Recommender):
    """FM over ids + TransE destination embeddings as dense features."""

    requires_kg = True

    def __init__(
        self,
        dim: int = 8,
        kge_dim: int = 16,
        epochs: int = 15,
        lr: float = 0.05,
        reg: float = 0.005,
        negatives_per_positive: int = 2,
        kge_epochs: int = 15,
        seed: int | None = 0,
    ) -> None:
        super().__init__()
        self.dim = dim
        self.kge_dim = kge_dim
        self.epochs = epochs
        self.lr = lr
        self.reg = reg
        self.negatives_per_positive = negatives_per_positive
        self.kge_epochs = kge_epochs
        self.seed = seed
        self._core: FMCore | None = None
        self._item_dense: np.ndarray | None = None

    def _features(self, user: int, item: int) -> tuple[np.ndarray, np.ndarray]:
        dataset = self.fitted_dataset
        m, n = dataset.num_users, dataset.num_items
        dense = self._item_dense[item]
        indices = np.concatenate(
            [
                np.asarray([user, m + item], dtype=np.int64),
                np.arange(m + n, m + n + self.kge_dim, dtype=np.int64),
            ]
        )
        values = np.concatenate([np.ones(2), dense])
        return indices, values

    def fit(self, dataset: Dataset) -> "DKFM":
        if dataset.kg is None:
            raise DataError("DKFM requires a dataset with a knowledge graph")
        self._mark_fitted(dataset)
        rng = ensure_rng(self.seed)
        kg = dataset.kg
        kge = TransE(kg.num_entities, kg.num_relations, dim=self.kge_dim, seed=rng)
        kge.fit(kg.store, epochs=self.kge_epochs, seed=rng)
        self._item_dense = kge.entity_embeddings()[dataset.item_entities]

        num_features = dataset.num_users + dataset.num_items + self.kge_dim
        self._core = FMCore(num_features, self.dim, seed=rng)
        pairs = dataset.interactions.pairs()
        if pairs.shape[0] == 0:
            raise DataError("cannot fit DKFM on empty interactions")
        for __ in range(self.epochs):
            for idx in rng.permutation(pairs.shape[0]):
                u, v = int(pairs[idx, 0]), int(pairs[idx, 1])
                feats, vals = self._features(u, v)
                self._core.sgd_step(feats, vals, 1.0, self.lr, self.reg)
                for __neg in range(self.negatives_per_positive):
                    j = int(rng.integers(0, dataset.num_items))
                    feats, vals = self._features(u, j)
                    self._core.sgd_step(feats, vals, 0.0, self.lr, self.reg)
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        dataset = self.fitted_dataset
        scores = np.empty(dataset.num_items)
        for item in range(dataset.num_items):
            feats, vals = self._features(user_id, item)
            scores[item] = self._core.raw_score(feats, vals)
        return scores
