"""DKN — Deep Knowledge-aware Network for news recommendation
(Wang et al., WWW 2018).

Each news item is encoded by a two-channel Kim CNN: a *word* channel over
its content features and a *knowledge* channel over TransD embeddings of
the entities it mentions.  The user representation is an attention-weighted
sum of clicked-news vectors with the candidate news as query (survey
Eq. 4-5), and the click probability comes from a DNN on ``u (+) v``.

The synthetic news generator provides ``item_text`` (treated as a token
sequence) and ``mentions`` facts in the KG; datasets without content
features fall back to a learned pseudo-text embedding.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import nn, ops
from repro.autograd.tensor import Tensor
from repro.core.dataset import Dataset
from repro.core.registry import register_model
from repro.core.rng import ensure_rng
from repro.kge import TransD

from ..common import GradientRecommender

__all__ = ["DKN", "BatchedKimCNN"]


class BatchedKimCNN(nn.Module):
    """Kim-CNN text encoder vectorized over a batch of sequences.

    Input ``(N, seq_len, in_dim)``; output ``(N, filters)`` after a valid
    convolution, ReLU, and max-over-time pooling.
    """

    def __init__(self, in_dim: int, filters: int, kernel_size: int, seed=None) -> None:
        rng = ensure_rng(seed)
        limit = np.sqrt(6.0 / (kernel_size * in_dim + filters))
        self.kernel_size = kernel_size
        self.weight = nn.Parameter(
            rng.uniform(-limit, limit, (kernel_size * in_dim, filters))
        )
        self.bias = nn.Parameter(np.zeros(filters))

    def __call__(self, x: Tensor) -> Tensor:
        n, seq_len, in_dim = x.shape
        k = self.kernel_size
        windows = [
            x[:, i : i + k, :].reshape(n, 1, k * in_dim)
            for i in range(seq_len - k + 1)
        ]
        unfolded = ops.concat(windows, axis=1)  # (N, P, k*in_dim)
        conv = ops.relu(unfolded @ self.weight + self.bias)  # (N, P, F)
        return conv.max(axis=1)  # (N, F)


@register_model("DKN")
class DKN(GradientRecommender):
    """Two-channel KCNN item encoder + candidate-attentive user encoder."""

    requires_kg = True

    def __init__(
        self,
        dim: int = 16,
        filters: int = 8,
        kernel_size: int = 2,
        word_dim: int = 4,
        max_entities: int = 4,
        max_history: int = 8,
        kge_epochs: int = 15,
        use_word_channel: bool = True,
        use_entity_channel: bool = True,
        **kwargs,
    ) -> None:
        kwargs.setdefault("loss", "bce")
        kwargs.setdefault("batch_size", 64)
        super().__init__(dim=dim, **kwargs)
        if not (use_word_channel or use_entity_channel):
            from repro.core.exceptions import ConfigError

            raise ConfigError("DKN needs at least one channel enabled")
        self.filters = filters
        self.kernel_size = kernel_size
        self.word_dim = word_dim
        self.max_entities = max_entities
        self.max_history = max_history
        self.kge_epochs = kge_epochs
        self.use_word_channel = use_word_channel
        self.use_entity_channel = use_entity_channel

    # ------------------------------------------------------------------ #
    def _build(self, dataset: Dataset, rng: np.random.Generator) -> None:
        kg = dataset.kg
        n = dataset.num_items

        # Knowledge channel: TransD entity embeddings of mentioned entities.
        kge = TransD(kg.num_entities, kg.num_relations, dim=self.dim, seed=rng)
        kge.fit(kg.store, epochs=self.kge_epochs, seed=rng)
        entity_emb = kge.entity_embeddings()
        self._entity_seq = np.zeros((n, self.max_entities, self.dim))
        for item in range(n):
            entity = dataset.entity_of_item(item)
            nbrs = [e for __, e in kg.neighbors(entity, undirected=False)]
            nbrs = nbrs[: self.max_entities] or [entity]
            for pos, e in enumerate(nbrs):
                self._entity_seq[item, pos] = entity_emb[e]

        # Word channel: reshape content features into a token sequence.
        if dataset.item_text is not None:
            text = dataset.item_text
            usable = (text.shape[1] // self.word_dim) * self.word_dim
            self._word_seq = text[:, :usable].reshape(n, -1, self.word_dim)
        else:
            self._word_seq = rng.normal(0.0, 0.1, (n, 4, self.word_dim))

        self.word_cnn = BatchedKimCNN(
            self.word_dim, self.filters, self.kernel_size, seed=rng
        )
        self.entity_cnn = BatchedKimCNN(
            self.dim, self.filters, self.kernel_size, seed=rng
        )
        item_dim = self.filters * (
            int(self.use_word_channel) + int(self.use_entity_channel)
        )
        self.attention = nn.MLP([2 * item_dim, 8, 1], seed=rng)
        self.scorer = nn.MLP([2 * item_dim, 16, 1], seed=rng)

        # Clicked-news history per user (capped, sampled deterministically).
        self._history = np.zeros((dataset.num_users, self.max_history), dtype=np.int64)
        self._history_mask = np.zeros((dataset.num_users, self.max_history))
        for user in range(dataset.num_users):
            items = dataset.interactions.items_of(user)
            if items.size > self.max_history:
                items = rng.choice(items, size=self.max_history, replace=False)
            self._history[user, : items.size] = items
            self._history_mask[user, : items.size] = 1.0

    def _encode_items(self, items: np.ndarray) -> Tensor:
        channels: list[Tensor] = []
        if self.use_word_channel:
            channels.append(self.word_cnn(Tensor(self._word_seq[items])))
        if self.use_entity_channel:
            channels.append(self.entity_cnn(Tensor(self._entity_seq[items])))
        return channels[0] if len(channels) == 1 else ops.concat(channels, axis=1)

    def _score_batch(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        batch = users.size
        candidate = self._encode_items(items)  # (B, D)
        hist_items = self._history[users]  # (B, H)
        flat = self._encode_items(hist_items.ravel())
        item_dim = candidate.shape[1]
        history = flat.reshape(batch, self.max_history, item_dim)
        mask = Tensor(self._history_mask[users])  # (B, H)

        # Candidate-aware attention over clicked news (Eq. 4).
        tiled = ops.concat(
            [
                history,
                candidate.reshape(batch, 1, item_dim)
                * Tensor(np.ones((batch, self.max_history, 1))),
            ],
            axis=2,
        )
        logits = self.attention(tiled).reshape(batch, self.max_history)
        logits = logits + (mask - 1.0) * 1e9
        weights = ops.softmax(logits, axis=1) * mask
        user_vec = (weights.reshape(batch, self.max_history, 1) * history).sum(axis=1)

        return self.scorer(ops.concat([user_vec, candidate], axis=1)).reshape(batch)
