"""ECFKG — explainable CF over heterogeneous knowledge-base embeddings
(Ai et al., Algorithms 2018).

The same user-item knowledge-graph translation idea as CFKG (the papers
share authors), with the distinguishing contribution being *explanation by
soft matching*: after learning the embeddings, candidate explanation paths
between the user and the recommended item are scored by how consistently
each hop's translation holds (``head + relation ~ tail``), and the most
consistent path is returned as the reason.
"""

from __future__ import annotations

import numpy as np

from repro.core.recommender import Explanation
from repro.core.registry import register_model
from repro.kg.metapath import enumerate_paths

from .cfkg import CFKG

__all__ = ["ECFKG"]


@register_model("ECFKG")
class ECFKG(CFKG):
    """CFKG + soft-matching path explanations in embedding space."""

    supports_explanations = True

    def _hop_consistency(self, head: int, relation: int, tail: int) -> float:
        """exp(-||h + r - t||^2): translation consistency of one hop."""
        emb = self._model.entity_embeddings()
        rel = self._model.relation_embeddings()
        delta = emb[head] + rel[relation] - emb[tail]
        return float(np.exp(-(delta**2).sum()))

    def explain(self, user_id: int, item_id: int) -> list[Explanation]:
        """Soft matching: score each path by the product of hop consistency.

        Hops traversed against the fact direction use the inverse check
        (``t + r ~ h`` fails symmetrically, so the forward form is scored).
        """
        lifted = self._lifted
        kg = lifted.kg
        source = int(lifted.user_entities[user_id])
        target = int(lifted.item_entities[item_id])
        candidates = enumerate_paths(kg, source, target, max_length=3, max_paths=10)
        scored: list[tuple[float, object]] = []
        for path in candidates:
            if path.length < 2:
                continue  # skip the trivial direct interact edge
            consistency = 1.0
            for h, r, t in zip(path.entities[:-1], path.relations, path.entities[1:]):
                if kg.has_fact(h, r, t):
                    consistency *= self._hop_consistency(h, r, t)
                else:  # traversed backward
                    consistency *= self._hop_consistency(t, r, h)
            scored.append((consistency, path))
        scored.sort(key=lambda pair: -pair[0])
        return [
            Explanation(
                user_id=user_id,
                item_id=item_id,
                kind="soft-matching",
                score=score,
                entities=path.entities,
                relations=path.relations,
            )
            for score, path in scored[:3]
        ]
