"""entity2rec — property-specific KG embeddings for top-N recommendation
(Palumbo et al., RecSys 2017).

entity2rec splits the KG into *property-specific* subgraphs (one per
relation, plus the collaborative "feedback" property), learns node2vec
embeddings on each, derives per-property user-item relatedness scores, and
combines them with a learning-to-rank stage.  Here: walks + skip-gram stand
in for node2vec (p=q=1), and the rank combiner is a pairwise logistic
weighting (the paper's LambdaMart simplified to its linear core).
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.recommender import Recommender
from repro.core.registry import register_model
from repro.core.rng import ensure_rng
from repro.kg.builders import ensure_user_item_graph
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleStore
from repro.kg.walks import train_sgns, uniform_walks

__all__ = ["Entity2Rec"]


@register_model("entity2rec")
class Entity2Rec(Recommender):
    """Property-specific relatedness features combined by pairwise ranking."""

    requires_kg = True

    def __init__(
        self,
        dim: int = 16,
        num_walks: int = 4,
        walk_length: int = 8,
        sgns_epochs: int = 2,
        rank_epochs: int = 20,
        rank_lr: float = 0.2,
        seed: int | None = 0,
    ) -> None:
        super().__init__()
        self.dim = dim
        self.num_walks = num_walks
        self.walk_length = walk_length
        self.sgns_epochs = sgns_epochs
        self.rank_epochs = rank_epochs
        self.rank_lr = rank_lr
        self.seed = seed
        self.property_weights: np.ndarray | None = None
        self._features: list[np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    @staticmethod
    def _property_subgraph(kg: KnowledgeGraph, relation: int) -> KnowledgeGraph:
        idx = kg.store.with_relation(relation)
        triples = np.stack(
            [kg.store.heads[idx], kg.store.relations[idx], kg.store.tails[idx]],
            axis=1,
        )
        store = TripleStore.from_triples(triples, kg.num_entities, kg.num_relations)
        return KnowledgeGraph(store)

    @staticmethod
    def _cosine_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        na = np.linalg.norm(a, axis=-1, keepdims=True)
        nb = np.linalg.norm(b, axis=-1, keepdims=True)
        denom = np.maximum(na * nb.T if b.ndim == 2 else na * nb, 1e-12)
        return (a @ b.T if b.ndim == 2 else a @ b) / denom.squeeze()

    def fit(self, dataset: Dataset) -> "Entity2Rec":
        self._mark_fitted(dataset)
        rng = ensure_rng(self.seed)
        lifted = ensure_user_item_graph(dataset)
        kg = lifted.kg
        n = dataset.num_items
        m = dataset.num_users
        item_entities = lifted.item_entities
        user_entities = lifted.user_entities

        # One relatedness matrix (m, n) per property.
        self._features = []
        for relation in range(kg.num_relations):
            sub = self._property_subgraph(kg, relation)
            walks = uniform_walks(
                sub, num_walks=self.num_walks, walk_length=self.walk_length, seed=rng
            )
            if not walks:
                continue
            emb = train_sgns(
                walks, kg.num_entities, dim=self.dim, epochs=self.sgns_epochs, seed=rng
            )
            item_emb = emb[item_entities]  # (n, d)
            if relation == lifted.extra["interact_relation"]:
                # Feedback property: user node vs item node directly.
                user_emb = emb[user_entities]
                scores = self._cosine_rows(user_emb, item_emb)
            else:
                # Content property: mean similarity to the user's history.
                sim = self._cosine_rows(item_emb, item_emb)  # (n, n)
                scores = np.zeros((m, n))
                for user in range(m):
                    history = dataset.interactions.items_of(user)
                    if history.size:
                        scores[user] = sim[history].mean(axis=0)
            self._features.append(scores)

        # Pairwise logistic combination of property scores.
        stacked = np.stack(self._features, axis=0)  # (P, m, n)
        weights = np.full(stacked.shape[0], 1.0 / stacked.shape[0])
        pairs = dataset.interactions.pairs()
        for __ in range(self.rank_epochs):
            idx = rng.integers(0, pairs.shape[0], size=min(600, pairs.shape[0]))
            for row in idx:
                u, i = int(pairs[row, 0]), int(pairs[row, 1])
                j = int(rng.integers(0, n))
                x = stacked[:, u, i] - stacked[:, u, j]
                g = 1.0 / (1.0 + np.exp(weights @ x))
                weights += self.rank_lr * g * x / idx.size * 50
        self.property_weights = weights
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        self.fitted_dataset
        stacked = np.stack([f[user_id] for f in self._features], axis=0)
        return self.property_weights @ stacked
