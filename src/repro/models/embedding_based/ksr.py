"""KSR — Knowledge-enhanced Sequential Recommendation
(Huang et al., SIGIR 2018).

A GRU models the user's interaction-level sequential preference while a
key-value memory network (keys: KG relations; values: user-specific
attribute memories built from TransE entity embeddings) models
attribute-level preference.  The user state is ``u_t = h_t (+) m_t`` and
the item is ``v_j = q_j (+) e_j`` (survey Section 4.1).

The synthetic datasets carry no timestamps, so the item-id order of each
user's history serves as the pseudo-sequence (documented substitution).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import nn, ops
from repro.autograd.tensor import Tensor
from repro.core.dataset import Dataset
from repro.core.registry import register_model
from repro.kge import TransE

from ..common import GradientRecommender

__all__ = ["KSR"]


@register_model("KSR")
class KSR(GradientRecommender):
    """GRU + key-value memory network over KG attributes."""

    requires_kg = True

    def __init__(
        self,
        dim: int = 16,
        max_sequence: int = 8,
        kge_epochs: int = 15,
        **kwargs,
    ) -> None:
        kwargs.setdefault("batch_size", 64)
        super().__init__(dim=dim, loss="bpr", **kwargs)
        self.max_sequence = max_sequence
        self.kge_epochs = kge_epochs

    def _build(self, dataset: Dataset, rng: np.random.Generator) -> None:
        kg = dataset.kg
        kge = TransE(kg.num_entities, kg.num_relations, dim=self.dim, seed=rng)
        kge.fit(kg.store, epochs=self.kge_epochs, seed=rng)
        entity_emb = kge.entity_embeddings()
        self._item_entity_emb = entity_emb[dataset.item_entities]  # (n, d)

        # Per-user attribute memory: for each relation, the mean TransE
        # embedding of attribute entities reachable from history items.
        num_rel = kg.num_relations
        self._memory = np.zeros((dataset.num_users, num_rel, self.dim))
        for user in range(dataset.num_users):
            sums = np.zeros((num_rel, self.dim))
            counts = np.zeros(num_rel)
            for item in dataset.interactions.items_of(user):
                entity = dataset.entity_of_item(int(item))
                for rel, nbr in kg.neighbors(entity, undirected=False):
                    sums[rel] += entity_emb[nbr]
                    counts[rel] += 1
            nonzero = counts > 0
            sums[nonzero] /= counts[nonzero, None]
            self._memory[user] = sums

        self.item = nn.Embedding(dataset.num_items, self.dim, seed=rng)
        self.gru = nn.GRUCell(self.dim, self.dim, seed=rng)
        self.keys = nn.Embedding(num_rel, self.dim, seed=rng)
        # Projections mapping u = h (+) m and v = q (+) e to a shared space.
        self.user_proj = nn.Linear(2 * self.dim, self.dim, seed=rng)
        self.item_proj = nn.Linear(2 * self.dim, self.dim, seed=rng)

        self._sequence = np.zeros((dataset.num_users, self.max_sequence), dtype=np.int64)
        self._seq_mask = np.zeros((dataset.num_users, self.max_sequence))
        for user in range(dataset.num_users):
            items = dataset.interactions.items_of(user)[-self.max_sequence :]
            self._sequence[user, : items.size] = items
            self._seq_mask[user, : items.size] = 1.0

    def _user_state(self, users: np.ndarray) -> Tensor:
        batch = users.size
        seq = self._sequence[users]  # (B, L)
        mask = self._seq_mask[users]  # (B, L)
        h = self.gru.initial_state(batch)
        for step in range(self.max_sequence):
            x = self.item(seq[:, step])
            h_next = self.gru(x, h)
            gate = Tensor(mask[:, step : step + 1])
            h = h_next * gate + h * (1.0 - gate)

        # Memory read: attention of h over relation keys (Eq. KV-MN read).
        keys = self.keys.weight  # (R, d)
        logits = h @ keys.T  # (B, R)
        z = ops.softmax(logits, axis=1)
        memory = Tensor(self._memory[users])  # (B, R, d)
        m = (z.reshape(batch, keys.shape[0], 1) * memory).sum(axis=1)
        return self.user_proj(ops.concat([h, m], axis=1))

    def _score_batch(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        u = self._user_state(users)
        q = self.item(items)
        e = Tensor(self._item_entity_emb[items])
        v = self.item_proj(ops.concat([q, e], axis=1))
        return (u * v).sum(axis=1)
