"""KTGAN — knowledge-enhanced GAN recommendation (Yang et al., ICDM 2018).

Phase 1 builds initial representations: a knowledge embedding of each item
from the KG (TransE stand-in for Metapath2Vec) concatenated with a tag
embedding (autoencoder over attribute multi-hots, the Word2Vec stand-in);
users start from the mean of their favored items.  Phase 2 refines them
adversarially (survey Eq. 8): a generator samples relevant items per user
from its softmax score, a discriminator learns to separate true pairs from
generated ones, and the generator is updated with policy gradients
(IRGAN-style REINFORCE).  Final ranking uses the generator's scores.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.recommender import Recommender
from repro.core.registry import register_model
from repro.core.rng import ensure_rng
from repro.kge import TransE

from .content import train_autoencoder

__all__ = ["KTGAN"]


@register_model("KTGAN")
class KTGAN(Recommender):
    """Adversarially refined knowledge + tag embeddings (NumPy IRGAN)."""

    requires_kg = True

    def __init__(
        self,
        dim: int = 16,
        epochs: int = 25,
        g_steps: int = 1,
        d_steps: int = 1,
        lr: float = 0.05,
        temperature: float = 1.0,
        kge_epochs: int = 15,
        seed: int | None = 0,
    ) -> None:
        super().__init__()
        self.dim = dim
        self.epochs = epochs
        self.g_steps = g_steps
        self.d_steps = d_steps
        self.lr = lr
        self.temperature = temperature
        self.kge_epochs = kge_epochs
        self.seed = seed
        self.g_user: np.ndarray | None = None
        self.g_item: np.ndarray | None = None
        self.d_user: np.ndarray | None = None
        self.d_item: np.ndarray | None = None
        self.d_bias: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    def _initial_embeddings(
        self, dataset: Dataset, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        kg = dataset.kg
        kge = TransE(kg.num_entities, kg.num_relations, dim=self.dim // 2, seed=rng)
        kge.fit(kg.store, epochs=self.kge_epochs, seed=rng)
        knowledge = kge.entity_embeddings()[dataset.item_entities]

        tags = np.zeros((dataset.num_items, kg.num_entities))
        for item in range(dataset.num_items):
            entity = dataset.entity_of_item(item)
            for __, nbr in kg.neighbors(entity, undirected=False):
                tags[item, nbr] = 1.0
        tag_emb = train_autoencoder(tags, self.dim - self.dim // 2, seed=rng)

        items = np.concatenate([knowledge, tag_emb], axis=1)  # v_k (+) v_t
        users = np.zeros((dataset.num_users, self.dim))
        for user in range(dataset.num_users):
            history = dataset.interactions.items_of(user)
            if history.size:
                users[user] = items[history].mean(axis=0)
            else:
                users[user] = rng.normal(0.0, 0.1, self.dim)
        return users, items

    def _g_probs(self, user: int) -> np.ndarray:
        logits = (self.g_item @ self.g_user[user]) / self.temperature
        logits -= logits.max()
        p = np.exp(logits)
        return p / p.sum()

    # ------------------------------------------------------------------ #
    def fit(self, dataset: Dataset) -> "KTGAN":
        self._mark_fitted(dataset)
        rng = ensure_rng(self.seed)
        users0, items0 = self._initial_embeddings(dataset, rng)
        self.g_user, self.g_item = users0.copy(), items0.copy()
        self.d_user, self.d_item = users0.copy(), items0.copy()
        self.d_bias = np.zeros(dataset.num_items)

        active = [
            u
            for u in range(dataset.num_users)
            if dataset.interactions.items_of(u).size > 0
        ]
        for __ in range(self.epochs):
            # --- discriminator: true pairs vs generator samples ---------- #
            for __d in range(self.d_steps):
                for user in active:
                    positives = dataset.interactions.items_of(user)
                    pos = int(positives[rng.integers(0, positives.size)])
                    fake = int(rng.choice(dataset.num_items, p=self._g_probs(user)))
                    for item, label in ((pos, 1.0), (fake, 0.0)):
                        score = self.d_user[user] @ self.d_item[item] + self.d_bias[item]
                        prob = 1.0 / (1.0 + np.exp(-score))
                        err = prob - label
                        gu = err * self.d_item[item]
                        gi = err * self.d_user[user]
                        self.d_user[user] -= self.lr * (gu + 0.01 * self.d_user[user])
                        self.d_item[item] -= self.lr * (gi + 0.01 * self.d_item[item])
                        self.d_bias[item] -= self.lr * err
            # --- generator: REINFORCE with discriminator reward ---------- #
            for __g in range(self.g_steps):
                for user in active:
                    probs = self._g_probs(user)
                    sampled = rng.choice(dataset.num_items, size=4, p=probs)
                    for item in sampled:
                        score = self.d_user[user] @ self.d_item[item] + self.d_bias[item]
                        reward = np.log1p(np.exp(min(score, 30.0)))
                        # grad log p_theta(v|u) wrt g_user = (v - E[v]) / T
                        expected = probs @ self.g_item
                        gu = (self.g_item[item] - expected) / self.temperature
                        gi = (1.0 - probs[item]) * self.g_user[user] / self.temperature
                        self.g_user[user] += self.lr * reward * gu
                        self.g_item[item] += self.lr * reward * gi
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        self.fitted_dataset
        return self.g_item @ self.g_user[user_id]
