"""KTUP — joint recommendation and KG completion (Cao et al., WWW 2019).

Two coupled translation tasks (survey Eq. 9-11): the TUP recommendation
module translates a user to an item through an induced *preference* vector
``p`` (``u + p ~ v``), while a TransH module completes the KG.  Items are
aligned with entities by sharing the entity embedding plus an item-specific
offset, the bridge through which knowledge transfers.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import losses, nn, ops
from repro.autograd.tensor import Tensor
from repro.core.dataset import Dataset
from repro.core.registry import register_model
from repro.kg.sampling import corrupt_batch

from ..common import GradientRecommender

__all__ = ["KTUP"]


@register_model("KTUP")
class KTUP(GradientRecommender):
    """Translation-based user preference with joint TransH KG completion."""

    requires_kg = True

    def __init__(
        self,
        dim: int = 16,
        num_preferences: int = 4,
        kg_weight: float = 0.5,
        kg_batch: int = 64,
        margin: float = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(dim=dim, loss="bpr", **kwargs)
        self.num_preferences = max(1, num_preferences)
        self.kg_weight = kg_weight
        self.kg_batch = kg_batch
        self.margin = margin

    def _build(self, dataset: Dataset, rng: np.random.Generator) -> None:
        kg = dataset.kg
        self.user = nn.Embedding(dataset.num_users, self.dim, seed=rng)
        self.item_offset = nn.Embedding(dataset.num_items, self.dim, seed=rng)
        self.entity = nn.Embedding(kg.num_entities, self.dim, seed=rng)
        self.relation = nn.Embedding(kg.num_relations, self.dim, seed=rng)
        self.relation_normal = nn.Embedding(kg.num_relations, self.dim, seed=rng)
        self.preference = nn.Embedding(self.num_preferences, self.dim, seed=rng)
        self._item_entities = dataset.item_entities

    # ------------------------------------------------------------------ #
    def _item_latent(self, items: np.ndarray) -> Tensor:
        """Item = aligned entity embedding + item offset (KTUP's bridge)."""
        return self.entity(self._item_entities[items]) + self.item_offset(items)

    def _induced_preference(self, u: Tensor, v: Tensor) -> Tensor:
        """Soft attention over the preference set given the (u, v) pair.

        Preference k is favored when ``u + p_k - v`` is small; the induced
        vector is the softmax-weighted combination (soft version of TUP's
        straight-through selection).
        """
        batch = u.shape[0]
        p = self.preference.weight  # (P, d)
        diff = (
            u.reshape(batch, 1, self.dim)
            + p.reshape(1, self.num_preferences, self.dim)
            - v.reshape(batch, 1, self.dim)
        )
        logits = -(diff * diff).sum(axis=2)  # (B, P)
        weights = ops.softmax(logits, axis=1)
        return weights @ p  # (B, d)

    def _score_batch(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        u = self.user(users)
        v = self._item_latent(items)
        p = self._induced_preference(u, v)
        # TransH-style projection onto the preference hyperplane.
        norm = p / (((p * p).sum(axis=1, keepdims=True) + 1e-12) ** 0.5)
        u_proj = u - (u * norm).sum(axis=1, keepdims=True) * norm
        v_proj = v - (v * norm).sum(axis=1, keepdims=True) * norm
        delta = u_proj + p - v_proj
        return -(delta * delta).sum(axis=1)

    # ------------------------------------------------------------------ #
    def _transh_score(self, heads, relations, tails) -> Tensor:
        h = self.entity(heads)
        t = self.entity(tails)
        r = self.relation(relations)
        w_raw = self.relation_normal(relations)
        w = w_raw / (((w_raw * w_raw).sum(axis=1, keepdims=True) + 1e-12) ** 0.5)
        h_p = h - (h * w).sum(axis=1, keepdims=True) * w
        t_p = t - (t * w).sum(axis=1, keepdims=True) * w
        delta = h_p + r - t_p
        return -(delta * delta).sum(axis=1)

    def _extra_loss(self, rng: np.random.Generator, batch_size: int) -> Tensor | None:
        if self.kg_weight <= 0:
            return None
        kg = self.fitted_dataset.kg
        idx = rng.integers(0, kg.num_triples, size=min(self.kg_batch, kg.num_triples))
        nh, nr, nt = corrupt_batch(kg.store, idx, rng)
        pos = self._transh_score(
            kg.store.heads[idx], kg.store.relations[idx], kg.store.tails[idx]
        )
        neg = self._transh_score(nh, nr, nt)
        hinge = losses.margin_ranking_loss(-pos, -neg, margin=self.margin)
        return hinge * self.kg_weight
