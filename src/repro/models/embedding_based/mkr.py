"""MKR — Multi-task feature learning for KG-enhanced recommendation
(Wang et al., WWW 2019).

Two modules trained jointly (survey Eq. 9): a recommendation module
(user/item embeddings + MLPs) and a KGE module (entity/relation embeddings
+ tail prediction), bridged by *cross & compress units* that model the
element-wise interactions between an item's CF vector and its KG entity
vector and re-compress them to the latent dimension.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import losses, nn, ops
from repro.autograd.tensor import Tensor
from repro.core.dataset import Dataset
from repro.core.registry import register_model

from ..common import GradientRecommender

__all__ = ["MKR", "CrossCompress"]


class CrossCompress(nn.Module):
    """One cross & compress unit.

    For item vector ``v`` and entity vector ``e`` (both ``(B, d)``), forms
    the cross matrix ``C = v e^T`` and compresses it back:
    ``v' = C w_vv + C^T w_ev + b_v`` and ``e' = C w_ve + C^T w_ee + b_e``.
    """

    def __init__(self, dim: int, seed=None) -> None:
        from repro.core.rng import ensure_rng

        rng = ensure_rng(seed)
        scale = 1.0 / np.sqrt(dim)
        self.w_vv = nn.Parameter(rng.normal(0.0, scale, dim))
        self.w_ev = nn.Parameter(rng.normal(0.0, scale, dim))
        self.w_ve = nn.Parameter(rng.normal(0.0, scale, dim))
        self.w_ee = nn.Parameter(rng.normal(0.0, scale, dim))
        self.b_v = nn.Parameter(np.zeros(dim))
        self.b_e = nn.Parameter(np.zeros(dim))

    def __call__(self, v: Tensor, e: Tensor) -> tuple[Tensor, Tensor]:
        batch, dim = v.shape
        cross = v.reshape(batch, dim, 1) * e.reshape(batch, 1, dim)
        cross_t = cross.transpose(0, 2, 1)
        v_next = cross @ self.w_vv + cross_t @ self.w_ev + self.b_v
        e_next = cross @ self.w_ve + cross_t @ self.w_ee + self.b_e
        return v_next, e_next


@register_model("MKR")
class MKR(GradientRecommender):
    """Multi-task recommendation + KGE with cross & compress units."""

    requires_kg = True

    def __init__(
        self,
        dim: int = 16,
        num_layers: int = 1,
        kg_weight: float = 0.5,
        kg_batch: int = 64,
        **kwargs,
    ) -> None:
        kwargs.setdefault("loss", "bce")
        super().__init__(dim=dim, **kwargs)
        self.num_layers = max(1, num_layers)
        self.kg_weight = kg_weight
        self.kg_batch = kg_batch

    def _build(self, dataset: Dataset, rng: np.random.Generator) -> None:
        kg = dataset.kg
        self.user = nn.Embedding(dataset.num_users, self.dim, seed=rng)
        self.item = nn.Embedding(dataset.num_items, self.dim, seed=rng)
        self.entity = nn.Embedding(kg.num_entities, self.dim, seed=rng)
        self.relation = nn.Embedding(kg.num_relations, self.dim, seed=rng)
        self.cross = [CrossCompress(self.dim, seed=rng) for __ in range(self.num_layers)]
        self.user_mlp = nn.MLP([self.dim, self.dim], seed=rng)
        self.tail_mlp = nn.MLP([2 * self.dim, self.dim], seed=rng)
        self._item_entities = dataset.item_entities
        # Entities that are items (for the KGE-side cross&compress).
        self._entity_to_item = np.full(kg.num_entities, -1, dtype=np.int64)
        for item, entity in enumerate(dataset.item_entities):
            if entity >= 0:
                self._entity_to_item[entity] = item

    def _item_latent(self, items: np.ndarray) -> Tensor:
        v = self.item(items)
        e = self.entity(self._item_entities[items])
        for unit in self.cross:
            v, e = unit(v, e)
        return v

    def _score_batch(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        u = self.user_mlp(self.user(users))
        v = self._item_latent(items)
        return (u * v).sum(axis=1)

    def _extra_loss(self, rng: np.random.Generator, batch_size: int) -> Tensor | None:
        if self.kg_weight <= 0:
            return None
        kg = self.fitted_dataset.kg
        idx = rng.integers(0, kg.num_triples, size=min(self.kg_batch, kg.num_triples))
        heads = kg.store.heads[idx]
        rels = kg.store.relations[idx]
        tails = kg.store.tails[idx]
        neg_tails = rng.integers(0, kg.num_entities, size=idx.size)

        h = self.entity(heads)
        # Heads that are items get the cross&compress treatment (shared
        # latent), mirroring MKR's bridged item/entity features.
        item_ids = self._entity_to_item[heads]
        aligned = item_ids >= 0
        if aligned.any():
            v = self.item(np.where(aligned, item_ids, 0))
            e = h
            for unit in self.cross:
                v, e = unit(v, e)
            gate = Tensor(aligned.astype(np.float64).reshape(-1, 1))
            h = e * gate + h * (1.0 - gate)
        r = self.relation(rels)
        predicted_tail = self.tail_mlp(ops.concat([h, r], axis=1))
        pos = (predicted_tail * self.entity(tails)).sum(axis=1)
        neg = (predicted_tail * self.entity(neg_tails)).sum(axis=1)
        labels = np.concatenate([np.ones(idx.size), np.zeros(idx.size)])
        logits = ops.concat([pos, neg], axis=0)
        return losses.bce_with_logits(logits, labels) * self.kg_weight
