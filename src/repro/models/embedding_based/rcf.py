"""RCF — Relational Collaborative Filtering (Xin et al., SIGIR 2019).

Items are described hierarchically by *relation types* and *relation
values* (the attribute entities).  RCF models user preference at both
levels with two attention stages — type-level attention over relations and
value-level attention over each relation's attribute entities — and
jointly trains a DistMult term that preserves the relational structure of
the item graph.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import losses, nn, ops
from repro.autograd.tensor import Tensor
from repro.core.dataset import Dataset
from repro.core.registry import register_model

from ..common import GradientRecommender

__all__ = ["RCF"]


@register_model("RCF")
class RCF(GradientRecommender):
    """Two-level relational attention CF with a DistMult auxiliary task."""

    requires_kg = True

    def __init__(
        self,
        dim: int = 16,
        max_values: int = 4,
        kg_weight: float = 0.3,
        kg_batch: int = 64,
        **kwargs,
    ) -> None:
        super().__init__(dim=dim, loss="bpr", **kwargs)
        self.max_values = max_values
        self.kg_weight = kg_weight
        self.kg_batch = kg_batch

    def _build(self, dataset: Dataset, rng: np.random.Generator) -> None:
        kg = dataset.kg
        self.user = nn.Embedding(dataset.num_users, self.dim, seed=rng)
        self.item = nn.Embedding(dataset.num_items, self.dim, seed=rng)
        self.entity = nn.Embedding(kg.num_entities, self.dim, seed=rng)
        self.rel_type = nn.Embedding(kg.num_relations, self.dim, seed=rng)

        # Pad each item's attributes to (num_relations, max_values) with a
        # mask, so attention runs fully vectorized over the batch.
        n, num_rel, width = dataset.num_items, kg.num_relations, self.max_values
        self._attr_idx = np.zeros((n, num_rel, width), dtype=np.int64)
        self._attr_mask = np.zeros((n, num_rel, width))
        for item in range(n):
            entity = dataset.entity_of_item(item)
            by_rel: dict[int, list[int]] = {}
            for rel, nbr in kg.neighbors(entity, undirected=False):
                by_rel.setdefault(rel, []).append(nbr)
            for rel, values in by_rel.items():
                values = values[:width]
                self._attr_idx[item, rel, : len(values)] = values
                self._attr_mask[item, rel, : len(values)] = 1.0

    def _score_batch(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        batch = users.size
        u = self.user(users)  # (B, d)
        v = self.item(items)  # (B, d)
        rel = self.rel_type.weight  # (R, d)
        num_rel = rel.shape[0]

        attrs = self.entity(self._attr_idx[items])  # (B, R, A, d)
        mask = Tensor(self._attr_mask[items])  # (B, R, A)

        # Value-level attention: query is u modulated by the relation type.
        query = u.reshape(batch, 1, self.dim) * rel.reshape(1, num_rel, self.dim)
        value_logits = (query.reshape(batch, num_rel, 1, self.dim) * attrs).sum(axis=3)
        value_logits = value_logits + (mask - 1.0) * 1e9
        beta = ops.softmax(value_logits, axis=2)  # (B, R, A)
        beta = beta * mask  # fully-masked rows contribute nothing
        values = (beta.reshape(batch, num_rel, self.max_values, 1) * attrs).sum(axis=2)

        # Type-level attention over relations the item actually has.
        has_rel = Tensor((self._attr_mask[items].sum(axis=2) > 0).astype(np.float64))
        type_logits = (u.reshape(batch, 1, self.dim) * rel.reshape(1, num_rel, self.dim)).sum(axis=2)
        type_logits = type_logits + (has_rel - 1.0) * 1e9
        alpha = ops.softmax(type_logits, axis=1) * has_rel  # (B, R)
        context = (alpha.reshape(batch, num_rel, 1) * values).sum(axis=1)  # (B, d)

        return (u * (v + context)).sum(axis=1)

    def _extra_loss(self, rng: np.random.Generator, batch_size: int) -> Tensor | None:
        if self.kg_weight <= 0:
            return None
        kg = self.fitted_dataset.kg
        idx = rng.integers(0, kg.num_triples, size=min(self.kg_batch, kg.num_triples))
        heads = kg.store.heads[idx]
        rels = kg.store.relations[idx]
        tails = kg.store.tails[idx]
        neg_tails = rng.integers(0, kg.num_entities, size=idx.size)
        pos = (self.entity(heads) * self.rel_type(rels) * self.entity(tails)).sum(axis=1)
        neg = (self.entity(heads) * self.rel_type(rels) * self.entity(neg_tails)).sum(axis=1)
        loss = (ops.softplus(-pos) + ops.softplus(neg)).mean()
        return loss * self.kg_weight
