"""SED — content-based news recommendation via Shortest Entity Distance
(Joseph & Jiang, WWW 2019).

A training-free KG method: the score of a candidate item is the (negated)
average shortest-path distance in the KG between the candidate's entity and
the entities of the user's clicked items.  Serves both as a surveyed method
and as a pure-connectivity ablation for the learned models.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import DataError
from repro.core.recommender import Recommender
from repro.core.registry import register_model

__all__ = ["SED"]


@register_model("SED")
class SED(Recommender):
    """Rank by mean shortest entity distance to the user's history."""

    requires_kg = True

    def __init__(self, max_distance: int = 6) -> None:
        super().__init__()
        self.max_distance = max_distance
        self._distances: np.ndarray | None = None

    def fit(self, dataset: Dataset) -> "SED":
        if dataset.kg is None:
            raise DataError("SED requires a dataset with a knowledge graph")
        self._mark_fitted(dataset)
        kg = dataset.kg
        n = dataset.num_items
        entity_of = dataset.item_entities
        item_of_entity = {int(e): i for i, e in enumerate(entity_of)}

        # One BFS per item entity over the undirected KG, recording distances
        # to every other item entity (capped at max_distance).
        self._distances = np.full((n, n), float(self.max_distance))
        np.fill_diagonal(self._distances, 0.0)
        adjacency: list[list[int]] = [[] for __ in range(kg.num_entities)]
        for h, __, t in kg.triples():
            adjacency[int(h)].append(int(t))
            adjacency[int(t)].append(int(h))
        for item in range(n):
            start = int(entity_of[item])
            seen = {start: 0}
            queue = deque([start])
            while queue:
                node = queue.popleft()
                depth = seen[node]
                if depth >= self.max_distance:
                    continue
                for nbr in adjacency[node]:
                    if nbr not in seen:
                        seen[nbr] = depth + 1
                        queue.append(nbr)
                        other = item_of_entity.get(nbr)
                        if other is not None:
                            self._distances[item, other] = depth + 1
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        dataset = self.fitted_dataset
        history = dataset.interactions.items_of(user_id)
        if history.size == 0:
            return np.zeros(dataset.num_items)
        return -self._distances[history].mean(axis=0)
