"""SHINE — Signed Heterogeneous Information Network Embedding
(Wang et al., WSDM 2018).

SHINE frames celebrity recommendation as link prediction between users and
targets, embedding three networks with autoencoders: the sentiment network
(user feedback rows), the social network, and the profile network.  Here
the sentiment channel encodes interaction rows/columns, the social channel
encodes user-user co-interaction adjacency (the synthetic stand-in for a
follower graph), and the profile channel encodes KG attribute multi-hots.
Encodings are fused by trainable projections and scored with a DNN.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import nn, ops
from repro.autograd.tensor import Tensor
from repro.core.dataset import Dataset
from repro.core.registry import register_model

from ..common import GradientRecommender
from .content import train_autoencoder

__all__ = ["SHINE"]


@register_model("SHINE")
class SHINE(GradientRecommender):
    """Autoencoder embeddings of sentiment/social/profile networks + DNN."""

    requires_kg = True

    def __init__(self, dim: int = 16, ae_epochs: int = 30, **kwargs) -> None:
        kwargs.setdefault("loss", "bce")
        super().__init__(dim=dim, **kwargs)
        self.ae_epochs = ae_epochs

    def _build(self, dataset: Dataset, rng: np.random.Generator) -> None:
        kg = dataset.kg
        dense = dataset.interactions.to_dense()

        # Sentiment channel: user rows and item columns of the feedback matrix.
        user_sentiment = train_autoencoder(dense, self.dim, self.ae_epochs, seed=rng)
        item_sentiment = train_autoencoder(dense.T, self.dim, self.ae_epochs, seed=rng)

        # Social channel: user-user co-interaction counts (row-normalized).
        social = dense @ dense.T
        np.fill_diagonal(social, 0.0)
        norms = social.sum(axis=1, keepdims=True)
        social = np.divide(social, np.maximum(norms, 1.0))
        user_social = train_autoencoder(social, self.dim, self.ae_epochs, seed=rng)

        # Profile channel: item attribute multi-hot from the KG.
        profile = np.zeros((dataset.num_items, kg.num_entities))
        for item in range(dataset.num_items):
            entity = dataset.entity_of_item(item)
            for __, nbr in kg.neighbors(entity, undirected=False):
                profile[item, nbr] = 1.0
        item_profile = train_autoencoder(profile, self.dim, self.ae_epochs, seed=rng)

        self._user_feats = np.concatenate([user_sentiment, user_social], axis=1)
        self._item_feats = np.concatenate([item_sentiment, item_profile], axis=1)
        self.user_proj = nn.Linear(2 * self.dim, self.dim, seed=rng)
        self.item_proj = nn.Linear(2 * self.dim, self.dim, seed=rng)
        self.scorer = nn.MLP([2 * self.dim, 16, 1], seed=rng)

    def _score_batch(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        u = ops.tanh(self.user_proj(Tensor(self._user_feats[users])))
        v = ops.tanh(self.item_proj(Tensor(self._item_feats[items])))
        return self.scorer(ops.concat([u, v], axis=1)).reshape(users.size)
