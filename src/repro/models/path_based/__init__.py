"""Path-based methods (survey Section 4.2): meta-path regularization and
diffusion, meta-graphs, explicit path encoding, rules, and RL reasoning."""

from .fmg import FMG
from .herec import HERec
from .hete import HeteCF, HeteMF
from .heterec import HeteRec, HeteRecP, kmeans
from .kprn import EIUM, KPRN
from .mcrec import MCRec
from .pgpr import Ekar, PGPR
from .proppr import ProPPR
from .rkge import RKGE
from .rulerec import RuleRec
from .semrec import SemRec

__all__ = [
    "HeteMF",
    "HeteCF",
    "HeteRec",
    "HeteRecP",
    "kmeans",
    "SemRec",
    "ProPPR",
    "FMG",
    "MCRec",
    "RKGE",
    "HERec",
    "KPRN",
    "EIUM",
    "RuleRec",
    "PGPR",
    "Ekar",
]
