"""Shared machinery for path-based (HIN) recommenders.

All path-based models work on the lifted user-item graph.  This module
standardizes: lifting, automatic selection of symmetric item-item and
user-user meta-paths from the network schema (the step the traditional
methods delegate to domain experts), and extraction of item/user similarity
blocks from entity-indexed PathSim matrices.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import GraphError
from repro.kg.builders import ensure_user_item_graph
from repro.kg.hin import NetworkSchema
from repro.kg.metapath import MetaPath, pathcount_similarity, pathsim_matrix

__all__ = [
    "lift",
    "item_metapaths",
    "user_metapaths",
    "user_item_metapaths",
    "item_similarity",
    "user_similarity",
    "sample_similar_pairs",
]

#: By generator convention, items are entity type 0 in every scenario.
ITEM_TYPE = 0


def lift(dataset: Dataset) -> Dataset:
    """Lift to a user-item graph (no-op if already lifted)."""
    return ensure_user_item_graph(dataset)


def _user_type(lifted: Dataset) -> int:
    kg = lifted.kg
    return kg.type_of(int(lifted.user_entities[0]))


def item_metapaths(lifted: Dataset, max_paths: int = 4) -> list[MetaPath]:
    """Symmetric item-item meta-paths (item -attr-> x -attr-> item)."""
    schema = NetworkSchema(lifted.kg)
    user_type = _user_type(lifted)
    paths = schema.enumerate_metapaths(ITEM_TYPE, ITEM_TYPE, max_length=2)
    # Drop paths through the user type: those encode CF, not KG structure.
    kept = [
        p
        for p in paths
        if p.length == 2 and user_type not in p.node_types[1:-1]
    ]
    return kept[:max_paths]


def user_metapaths(lifted: Dataset, max_paths: int = 3) -> list[MetaPath]:
    """Symmetric user-user meta-paths (U-I-U and U-I-attr-I-U styles)."""
    schema = NetworkSchema(lifted.kg)
    user_type = _user_type(lifted)
    short = schema.enumerate_metapaths(user_type, user_type, max_length=2)
    long = schema.enumerate_metapaths(user_type, user_type, max_length=4)
    paths = [p for p in short if p.length == 2]
    paths += [p for p in long if p.length == 4][: max_paths - len(paths)]
    return paths[:max_paths]


def user_item_metapaths(lifted: Dataset, max_paths: int = 4) -> list[MetaPath]:
    """User-to-item meta-paths of length 3 (U-I-x-I patterns)."""
    schema = NetworkSchema(lifted.kg)
    user_type = _user_type(lifted)
    paths = schema.enumerate_metapaths(user_type, ITEM_TYPE, max_length=3)
    return [p for p in paths if p.length == 3][:max_paths]


def item_similarity(
    lifted: Dataset, metapath: MetaPath, kind: str = "pathsim"
) -> np.ndarray:
    """Dense ``(n_items, n_items)`` similarity block for an item meta-path.

    Item entities occupy ids ``0..n_items-1`` by generator convention, so
    the block is the leading square of the entity-indexed matrix.
    """
    n = lifted.num_items
    if not np.array_equal(lifted.item_entities, np.arange(n)):
        raise GraphError("item similarity assumes items are entities 0..n-1")
    if kind == "pathsim":
        full = pathsim_matrix(lifted.kg, metapath)
    elif kind == "pathcount":
        full = pathcount_similarity(lifted.kg, metapath)
    else:
        raise GraphError("kind must be 'pathsim' or 'pathcount'")
    return np.asarray(full[:n, :n].todense(), dtype=np.float64)


def user_similarity(lifted: Dataset, metapath: MetaPath) -> np.ndarray:
    """Dense ``(m, m)`` PathSim block for a user meta-path."""
    users = lifted.user_entities
    full = pathsim_matrix(lifted.kg, metapath)
    return np.asarray(full[users][:, users].todense(), dtype=np.float64)


def sample_similar_pairs(
    similarity: np.ndarray,
    size: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample ``(i, j, s_ij)`` among pairs with positive similarity."""
    rows, cols = np.nonzero(similarity)
    off_diag = rows != cols
    rows, cols = rows[off_diag], cols[off_diag]
    if rows.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0)
    idx = rng.integers(0, rows.size, size=min(size, rows.size))
    return rows[idx], cols[idx], similarity[rows[idx], cols[idx]]
