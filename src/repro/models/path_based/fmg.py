"""FMG — Meta-Graph Based Recommendation Fusion (Zhao et al., KDD 2017).

FMG replaces meta-paths with *meta-graphs* (richer AND-combined structures,
survey Section 3), computes a diffused preference matrix per meta-graph,
factorizes each with MF, and fuses all per-structure latent features with a
factorization machine that models their pairwise interactions.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.recommender import Recommender
from repro.core.registry import register_model
from repro.core.rng import ensure_rng
from repro.kg.metapath import MetaGraph, metagraph_adjacency

from ..baselines.fm import FMCore
from ..baselines.mf import nmf_factorize
from . import common

__all__ = ["FMG"]


@register_model("FMG")
class FMG(Recommender):
    """Meta-graph latent features fused by a factorization machine."""

    requires_kg = True

    def __init__(
        self,
        dim: int = 8,
        fm_dim: int = 8,
        num_structures: int = 4,
        epochs: int = 12,
        lr: float = 0.05,
        reg: float = 0.005,
        negatives_per_positive: int = 2,
        seed: int | None = 0,
    ) -> None:
        super().__init__()
        self.dim = dim
        self.fm_dim = fm_dim
        self.num_structures = num_structures
        self.epochs = epochs
        self.lr = lr
        self.reg = reg
        self.negatives_per_positive = negatives_per_positive
        self.seed = seed
        self._core: FMCore | None = None
        self._user_feats: np.ndarray | None = None
        self._item_feats: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    def _structures(self, lifted: Dataset) -> list:
        """Meta-paths plus pairwise AND meta-graphs over them."""
        paths = common.item_metapaths(lifted, max_paths=self.num_structures)
        structures: list = list(paths)
        for a in range(len(paths)):
            for b in range(a + 1, len(paths)):
                structures.append(
                    MetaGraph(paths=(paths[a], paths[b]), combine="hadamard")
                )
        return structures[: self.num_structures + 2]

    def fit(self, dataset: Dataset) -> "FMG":
        self._mark_fitted(dataset)
        rng = ensure_rng(self.seed)
        lifted = common.lift(dataset)
        dense = dataset.interactions.to_dense()
        n = dataset.num_items

        user_blocks: list[np.ndarray] = []
        item_blocks: list[np.ndarray] = []
        for structure in self._structures(lifted):
            if isinstance(structure, MetaGraph):
                sim = np.asarray(
                    metagraph_adjacency(lifted.kg, structure)[:n, :n].todense()
                )
                sums = sim.sum(axis=1, keepdims=True)
                sim = np.divide(sim, sums, out=np.zeros_like(sim), where=sums > 0)
            else:
                sim = common.item_similarity(lifted, structure, kind="pathcount")
            diffused = dense @ sim
            w, h = nmf_factorize(diffused, self.dim, iterations=60, seed=rng)
            user_blocks.append(w)
            item_blocks.append(h.T)
        def standardize(block: np.ndarray) -> np.ndarray:
            mean = block.mean(axis=0, keepdims=True)
            std = block.std(axis=0, keepdims=True)
            return (block - mean) / np.maximum(std, 1e-6)

        self._user_feats = standardize(np.concatenate(user_blocks, axis=1))
        self._item_feats = standardize(np.concatenate(item_blocks, axis=1))

        fu = self._user_feats.shape[1]
        fi = self._item_feats.shape[1]
        self._core = FMCore(fu + fi, self.fm_dim, seed=rng)
        pairs = dataset.interactions.pairs()
        feature_idx = np.arange(fu + fi, dtype=np.int64)
        for __ in range(self.epochs):
            for row in rng.permutation(pairs.shape[0]):
                u, v = int(pairs[row, 0]), int(pairs[row, 1])
                values = np.concatenate([self._user_feats[u], self._item_feats[v]])
                self._core.sgd_step(feature_idx, values, 1.0, self.lr, self.reg)
                for __neg in range(self.negatives_per_positive):
                    j = int(rng.integers(0, n))
                    values = np.concatenate([self._user_feats[u], self._item_feats[j]])
                    self._core.sgd_step(feature_idx, values, 0.0, self.lr, self.reg)
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        dataset = self.fitted_dataset
        fu = self._user_feats.shape[1]
        fi = self._item_feats.shape[1]
        feature_idx = np.arange(fu + fi, dtype=np.int64)
        scores = np.empty(dataset.num_items)
        for item in range(dataset.num_items):
            values = np.concatenate([self._user_feats[user_id], self._item_feats[item]])
            scores[item] = self._core.raw_score(feature_idx, values)
        return scores
