"""HERec — heterogeneous information network embedding for recommendation
(Shi et al., TKDE 2019).

HERec runs meta-path-constrained random walks over the HIN, learns node
embeddings per meta-path with skip-gram, fuses the per-path embeddings,
and plugs the fused user/item vectors into an extended MF scorer.  Fusion
here is a learned linear map per side trained jointly with the MF offsets
under BPR (the paper's "personalized non-linear fusion" simplified to its
linear form, noted in DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import nn
from repro.autograd.tensor import Tensor
from repro.core.dataset import Dataset
from repro.core.registry import register_model
from repro.kg.walks import metapath_walks, train_sgns

from ..common import GradientRecommender
from . import common

__all__ = ["HERec"]


@register_model("HERec")
class HERec(GradientRecommender):
    """Meta-path skip-gram embeddings fused into an MF ranker."""

    requires_kg = True

    def __init__(
        self,
        dim: int = 16,
        num_metapaths: int = 3,
        num_walks: int = 4,
        walk_length: int = 8,
        sgns_epochs: int = 2,
        **kwargs,
    ) -> None:
        super().__init__(dim=dim, loss="bpr", **kwargs)
        self.num_metapaths = num_metapaths
        self.num_walks = num_walks
        self.walk_length = walk_length
        self.sgns_epochs = sgns_epochs

    def _build(self, dataset: Dataset, rng: np.random.Generator) -> None:
        lifted = common.lift(dataset)
        kg = lifted.kg
        item_paths = common.item_metapaths(lifted, max_paths=self.num_metapaths)
        user_paths = common.user_metapaths(lifted, max_paths=self.num_metapaths)

        item_blocks: list[np.ndarray] = []
        for path in item_paths:
            walks = metapath_walks(
                kg, path, self.num_walks, self.walk_length, seed=rng
            )
            if not walks:
                continue
            emb = train_sgns(
                walks, kg.num_entities, dim=self.dim, epochs=self.sgns_epochs, seed=rng
            )
            item_blocks.append(emb[lifted.item_entities])
        user_blocks: list[np.ndarray] = []
        for path in user_paths:
            walks = metapath_walks(
                kg, path, self.num_walks, self.walk_length, seed=rng
            )
            if not walks:
                continue
            emb = train_sgns(
                walks, kg.num_entities, dim=self.dim, epochs=self.sgns_epochs, seed=rng
            )
            user_blocks.append(emb[lifted.user_entities])

        if not item_blocks:
            item_blocks = [rng.normal(0.0, 0.1, (dataset.num_items, self.dim))]
        if not user_blocks:
            user_blocks = [rng.normal(0.0, 0.1, (dataset.num_users, self.dim))]
        self._item_embed = np.concatenate(item_blocks, axis=1)
        self._user_embed = np.concatenate(user_blocks, axis=1)

        self.item_fuse = nn.Linear(self._item_embed.shape[1], self.dim, seed=rng)
        self.user_fuse = nn.Linear(self._user_embed.shape[1], self.dim, seed=rng)
        self.user_offset = nn.Embedding(dataset.num_users, self.dim, seed=rng)
        self.item_offset = nn.Embedding(dataset.num_items, self.dim, seed=rng)

    def _score_batch(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        u = self.user_offset(users) + self.user_fuse(Tensor(self._user_embed[users]))
        v = self.item_offset(items) + self.item_fuse(Tensor(self._item_embed[items]))
        return (u * v).sum(axis=1)
