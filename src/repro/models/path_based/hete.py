"""Hete-MF (Yu et al., IJCAI-HINA 2013) and Hete-CF (Luo et al., ICDM 2014).

Both regularize matrix factorization with meta-path similarities (survey
Eq. 13-15):

* Hete-MF adds the *item-item* term: items with high PathSim under any
  selected meta-path are pulled together in latent space.
* Hete-CF adds all three terms — user-user, item-item, and user-item —
  which is why it outperforms Hete-MF in the original comparison.

Meta-paths are auto-enumerated from the network schema; per-path weights
are uniform (the papers learn them, a small simplification recorded in
DESIGN.md's substitution table).
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.registry import register_model
from repro.core.rng import ensure_rng

from ..baselines.mf import FunkSVD
from . import common

__all__ = ["HeteMF", "HeteCF"]


@register_model("Hete-MF")
class HeteMF(FunkSVD):
    """MF + item-item meta-path similarity regularization."""

    requires_kg = True

    def __init__(
        self,
        dim: int = 16,
        reg_weight: float = 0.5,
        num_metapaths: int = 4,
        pairs_per_epoch: int = 2000,
        **kwargs,
    ) -> None:
        super().__init__(dim=dim, **kwargs)
        self.reg_weight = reg_weight
        self.num_metapaths = num_metapaths
        self.pairs_per_epoch = pairs_per_epoch

    def _similarities(self, dataset: Dataset) -> list[np.ndarray]:
        lifted = common.lift(dataset)
        paths = common.item_metapaths(lifted, max_paths=self.num_metapaths)
        return [common.item_similarity(lifted, p) for p in paths]

    def fit(self, dataset: Dataset) -> "HeteMF":
        super().fit(dataset)  # base MF pass
        rng = ensure_rng(self.seed)
        sims = self._similarities(dataset)
        if not sims:
            return self
        weight = self.reg_weight / len(sims)
        # Graph-regularization pass: pull similar items together, then let a
        # few refit epochs re-balance the reconstruction term.
        for __ in range(self.epochs):
            for sim in sims:
                rows, cols, values = common.sample_similar_pairs(
                    sim, self.pairs_per_epoch, rng
                )
                for i, j, s in zip(rows, cols, values):
                    diff = self.item_factors[i] - self.item_factors[j]
                    self.item_factors[i] -= self.lr * weight * s * diff
                    self.item_factors[j] += self.lr * weight * s * diff
        return self


@register_model("Hete-CF")
class HeteCF(HeteMF):
    """MF + user-user, item-item, and user-item similarity terms."""

    def fit(self, dataset: Dataset) -> "HeteCF":
        super().fit(dataset)  # MF + item-item term
        rng = ensure_rng(self.seed)
        lifted = common.lift(dataset)
        user_paths = common.user_metapaths(lifted)
        ui_paths = common.user_item_metapaths(lifted)
        weight = self.reg_weight / max(1, len(user_paths))

        for __ in range(self.epochs):
            # User-user regularization (Eq. 13).
            for path in user_paths:
                sim = common.user_similarity(lifted, path)
                rows, cols, values = common.sample_similar_pairs(
                    sim, self.pairs_per_epoch, rng
                )
                for i, j, s in zip(rows, cols, values):
                    diff = self.user_factors[i] - self.user_factors[j]
                    self.user_factors[i] -= self.lr * weight * s * diff
                    self.user_factors[j] += self.lr * weight * s * diff
            # User-item similarity matching (Eq. 15).
            for path in ui_paths:
                from repro.kg.metapath import pathcount_similarity

                full = pathcount_similarity(lifted.kg, path)
                block = np.asarray(
                    full[lifted.user_entities][:, lifted.item_entities].todense()
                )
                rows, cols, values = common.sample_similar_pairs(
                    block, self.pairs_per_epoch, rng
                )
                for u, v, s in zip(rows, cols, values):
                    pred = self.user_factors[u] @ self.item_factors[v]
                    err = s - pred
                    pu = self.user_factors[u].copy()
                    self.user_factors[u] += self.lr * weight * err * self.item_factors[v]
                    self.item_factors[v] += self.lr * weight * err * pu
        return self
