"""HeteRec (Yu et al., RecSys 2013) and HeteRec-p (WSDM 2014).

HeteRec enriches the feedback matrix by *diffusing* it along meta-path
similarities (``R~^l = R S^l``, survey Eq. 16), factorizes each diffused
matrix with NMF, and learns per-path weights ``theta_l`` to combine the
per-path preference scores (Eq. 17) with a pairwise ranking objective.

HeteRec-p personalizes the weights: users are clustered on their feedback
rows (k-means) and each cluster gets its own theta, combined with soft
cosine cluster membership (Eq. 18).
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigError
from repro.core.recommender import Recommender
from repro.core.registry import register_model
from repro.core.rng import ensure_rng

from ..baselines.mf import nmf_factorize
from . import common

__all__ = ["HeteRec", "HeteRecP", "kmeans"]


def kmeans(
    points: np.ndarray,
    k: int,
    iterations: int = 25,
    seed: int | np.random.Generator | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Plain k-means; returns ``(assignments, centroids)``."""
    rng = ensure_rng(seed)
    n = points.shape[0]
    if k > n:
        raise ConfigError("k cannot exceed the number of points")
    centroids = points[rng.choice(n, size=k, replace=False)].copy()
    assignments = np.zeros(n, dtype=np.int64)
    for __ in range(iterations):
        dists = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        new_assignments = dists.argmin(axis=1)
        if np.array_equal(new_assignments, assignments):
            break
        assignments = new_assignments
        for c in range(k):
            members = points[assignments == c]
            if members.shape[0]:
                centroids[c] = members.mean(axis=0)
    return assignments, centroids


@register_model("HeteRec")
class HeteRec(Recommender):
    """Meta-path diffusion + per-path NMF + learned global path weights."""

    requires_kg = True

    def __init__(
        self,
        dim: int = 12,
        num_metapaths: int = 4,
        theta_epochs: int = 30,
        theta_lr: float = 0.1,
        nmf_iterations: int = 80,
        seed: int | None = 0,
    ) -> None:
        super().__init__()
        self.dim = dim
        self.num_metapaths = num_metapaths
        self.theta_epochs = theta_epochs
        self.theta_lr = theta_lr
        self.nmf_iterations = nmf_iterations
        self.seed = seed
        self.theta: np.ndarray | None = None
        self._path_scores: list[np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    def _diffused_factors(self, dataset: Dataset, rng) -> list[np.ndarray]:
        """Per-path score matrices u_l . v_l from NMF of ``R S^l``."""
        lifted = common.lift(dataset)
        paths = common.item_metapaths(lifted, max_paths=self.num_metapaths)
        dense = dataset.interactions.to_dense()
        score_matrices: list[np.ndarray] = [dense.copy()]
        for path in paths:
            sim = common.item_similarity(lifted, path, kind="pathcount")
            diffused = dense @ sim
            w, h = nmf_factorize(diffused, self.dim, self.nmf_iterations, seed=rng)
            score_matrices.append(w @ h)
        # Path 0 is the raw feedback matrix itself (the "direct" channel);
        # factorize it too for a smoothed version.
        w, h = nmf_factorize(dense, self.dim, self.nmf_iterations, seed=rng)
        score_matrices[0] = w @ h
        return score_matrices

    def _learn_theta(
        self, dataset: Dataset, rng, per_user: np.ndarray | None = None
    ) -> np.ndarray:
        """Bayesian-ranking regression of path weights on training pairs."""
        features = np.stack(self._path_scores, axis=0)  # (L, m, n)
        num_paths = features.shape[0]
        theta = np.full(num_paths, 1.0 / num_paths)
        pairs = dataset.interactions.pairs()
        for __ in range(self.theta_epochs):
            idx = rng.integers(0, pairs.shape[0], size=min(1000, pairs.shape[0] * 2))
            for row in idx:
                u, i = int(pairs[row, 0]), int(pairs[row, 1])
                j = int(rng.integers(0, dataset.num_items))
                x = features[:, u, i] - features[:, u, j]
                margin = theta @ x
                g = 1.0 / (1.0 + np.exp(margin))
                theta += self.theta_lr * g * x / idx.size * 50
        return theta

    def fit(self, dataset: Dataset) -> "HeteRec":
        self._mark_fitted(dataset)
        rng = ensure_rng(self.seed)
        self._path_scores = self._diffused_factors(dataset, rng)
        self.theta = self._learn_theta(dataset, rng)
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        self.fitted_dataset
        stacked = np.stack([s[user_id] for s in self._path_scores], axis=0)
        return self.theta @ stacked


@register_model("HeteRec_p")
class HeteRecP(HeteRec):
    """HeteRec with per-cluster personalized path weights (Eq. 18)."""

    def __init__(self, num_clusters: int = 4, **kwargs) -> None:
        super().__init__(**kwargs)
        self.num_clusters = num_clusters
        self._centroids: np.ndarray | None = None
        self._cluster_theta: np.ndarray | None = None

    def fit(self, dataset: Dataset) -> "HeteRecP":
        self._mark_fitted(dataset)
        rng = ensure_rng(self.seed)
        self._path_scores = self._diffused_factors(dataset, rng)

        rows = dataset.interactions.to_dense()
        k = min(self.num_clusters, dataset.num_users)
        assignments, self._centroids = kmeans(rows, k, seed=rng)

        features = np.stack(self._path_scores, axis=0)
        num_paths = features.shape[0]
        self._cluster_theta = np.full((k, num_paths), 1.0 / num_paths)
        pairs = dataset.interactions.pairs()
        for cluster in range(k):
            members = set(np.flatnonzero(assignments == cluster).tolist())
            cluster_pairs = pairs[[int(p[0]) in members for p in pairs]]
            if cluster_pairs.shape[0] == 0:
                continue
            theta = self._cluster_theta[cluster]
            for __ in range(self.theta_epochs):
                idx = rng.integers(0, cluster_pairs.shape[0], size=min(400, cluster_pairs.shape[0]))
                for row in idx:
                    u, i = int(cluster_pairs[row, 0]), int(cluster_pairs[row, 1])
                    j = int(rng.integers(0, dataset.num_items))
                    x = features[:, u, i] - features[:, u, j]
                    g = 1.0 / (1.0 + np.exp(theta @ x))
                    theta += self.theta_lr * g * x / idx.size * 50
            self._cluster_theta[cluster] = theta
        self._user_rows = rows
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        self.fitted_dataset
        row = self._user_rows[user_id]
        norms = np.linalg.norm(self._centroids, axis=1) * max(np.linalg.norm(row), 1e-9)
        sims = np.divide(
            self._centroids @ row, norms, out=np.zeros(len(norms)), where=norms > 0
        )
        sims = np.maximum(sims, 0.0)
        if sims.sum() == 0:
            sims = np.ones_like(sims)
        sims /= sims.sum()
        theta = sims @ self._cluster_theta  # soft cluster mixture (Eq. 18)
        stacked = np.stack([s[user_id] for s in self._path_scores], axis=0)
        return theta @ stacked
