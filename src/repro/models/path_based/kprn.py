"""KPRN — Knowledge-aware Path Recurrent Network (Wang et al., AAAI 2019)
and EIUM (Huang et al., MM 2019), its sequential multi-modal relative.

KPRN composes each user-item path from *entity and relation* embeddings,
encodes it with an LSTM, scores every path with fully-connected layers,
and merges the per-path scores with a weighted (log-sum-exp) pooling layer
so salient paths dominate — the source of its path-level explanations.

EIUM follows the same path-encoding recipe (Eq. 19-20) but pools paths
with attention into an interaction embedding and adds a multi-modal
structural constraint (Eq. 21-22) tying entity features to the KG's
translation structure; both aspects are implemented here, with the content
modality standing on the item text features when available.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import losses, nn, ops
from repro.autograd.tensor import Tensor
from repro.core.dataset import Dataset
from repro.core.recommender import Explanation
from repro.core.registry import register_model
from repro.kg.sampling import corrupt_batch

from ..common import GradientRecommender
from . import common
from .pathsampling import PathBank

__all__ = ["KPRN", "EIUM"]


@register_model("KPRN")
class KPRN(GradientRecommender):
    """LSTM path encoder with log-sum-exp pooling over path scores."""

    requires_kg = True
    supports_explanations = True

    def __init__(
        self,
        dim: int = 16,
        max_path_length: int = 3,
        max_paths: int = 3,
        pool_temperature: float = 1.0,
        **kwargs,
    ) -> None:
        kwargs.setdefault("epochs", 6)
        kwargs.setdefault("batch_size", 64)
        super().__init__(dim=dim, loss="bpr", **kwargs)
        self.max_path_length = max_path_length
        self.max_paths = max_paths
        self.pool_temperature = pool_temperature

    def _build(self, dataset: Dataset, rng: np.random.Generator) -> None:
        self._lifted = common.lift(dataset)
        kg = self._lifted.kg
        self.entity = nn.Embedding(kg.num_entities, self.dim, seed=rng)
        # +1 relation id for the "end of path" padding step.
        self.relation = nn.Embedding(kg.num_relations + 1, self.dim, seed=rng)
        self.lstm = nn.LSTMCell(2 * self.dim, self.dim, seed=rng)
        self.scorer = nn.MLP([self.dim, 8, 1], seed=rng)
        self._pad_relation = kg.num_relations
        self._bank = PathBank(
            self._lifted,
            max_length=self.max_path_length,
            max_paths_per_item=self.max_paths,
            seed=rng,
        )

    @property
    def explanation_dataset(self) -> Dataset:
        return self._lifted

    # ------------------------------------------------------------------ #
    def _path_scores(
        self, users: np.ndarray, items: np.ndarray
    ) -> tuple[Tensor, np.ndarray, list[tuple[int, int]]]:
        """LSTM-encode all batch paths; returns (scores, assignment, meta)."""
        seqs: list[tuple[int, list[int], list[int]]] = []
        for row, (u, v) in enumerate(zip(users, items)):
            for path in self._bank.paths(int(u), int(v)):
                # Step t consumes entity_t and the relation leading out of
                # it (padding relation on the final entity).
                rels = list(path.relations) + [self._pad_relation]
                seqs.append((row, list(path.entities), rels))
        if not seqs:
            return Tensor(np.zeros(0)), np.zeros((users.size, 0)), []

        max_len = max(len(ents) for __, ents, __r in seqs)
        num_paths = len(seqs)
        ent_idx = np.zeros((num_paths, max_len), dtype=np.int64)
        rel_idx = np.full((num_paths, max_len), self._pad_relation, dtype=np.int64)
        mask = np.zeros((num_paths, max_len))
        assign = np.zeros((users.size, num_paths))
        meta: list[tuple[int, int]] = []
        for p, (row, ents, rels) in enumerate(seqs):
            ent_idx[p, : len(ents)] = ents
            rel_idx[p, : len(rels)] = rels
            mask[p, : len(ents)] = 1.0
            assign[row, p] = 1.0
            meta.append((row, p))

        h, c = self.lstm.initial_state(num_paths)
        for step in range(max_len):
            x = ops.concat(
                [self.entity(ent_idx[:, step]), self.relation(rel_idx[:, step])],
                axis=1,
            )
            h_next, c_next = self.lstm(x, (h, c))
            gate = Tensor(mask[:, step : step + 1])
            h = h_next * gate + h * (1.0 - gate)
            c = c_next * gate + c * (1.0 - gate)
        scores = self.scorer(h).reshape(num_paths)
        return scores, assign, meta

    def _pool(self, scores: Tensor, assign: np.ndarray) -> Tensor:
        """Weighted pooling: gamma * log sum exp(s / gamma) per pair."""
        batch = assign.shape[0]
        if assign.shape[1] == 0:
            return Tensor(np.zeros(batch))
        gamma = self.pool_temperature
        exp_scores = ops.exp(scores * (1.0 / gamma))
        sums = Tensor(assign) @ exp_scores  # (B,)
        # Pairs without paths: sum is 0 -> clamp before log.
        safe = sums + 1e-12
        return ops.log(safe) * gamma

    def _score_batch(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        scores, assign, __ = self._path_scores(users, items)
        return self._pool(scores, assign)

    # ------------------------------------------------------------------ #
    def explain(self, user_id: int, item_id: int) -> list[Explanation]:
        paths = self._bank.paths(user_id, item_id)
        if not paths:
            return []
        users = np.full(len(paths), user_id)
        items = np.full(len(paths), item_id)
        scores, __, __m = self._path_scores(users[:1], items[:1])
        per_path = scores.numpy()
        out = []
        for p, path in enumerate(paths[: per_path.size]):
            out.append(
                Explanation(
                    user_id=user_id,
                    item_id=item_id,
                    kind="kprn-path",
                    score=float(per_path[p]),
                    entities=path.entities,
                    relations=path.relations,
                )
            )
        return sorted(out, key=lambda e: -e.score)


@register_model("EIUM")
class EIUM(KPRN):
    """Attention path pooling + multi-modal structural constraint."""

    def __init__(self, constraint_weight: float = 0.3, kg_batch: int = 64, **kwargs) -> None:
        super().__init__(**kwargs)
        self.constraint_weight = constraint_weight
        self.kg_batch = kg_batch

    def _pool(self, scores: Tensor, assign: np.ndarray) -> Tensor:
        """Attention pooling: softmax over each pair's path scores."""
        batch = assign.shape[0]
        if assign.shape[1] == 0:
            return Tensor(np.zeros(batch))
        neg_inf = (assign - 1.0) * 1e9
        logits = scores.reshape(1, -1) + Tensor(neg_inf)
        att = ops.softmax(logits, axis=1) * Tensor(assign)
        return (att * scores.reshape(1, -1)).sum(axis=1)

    def _extra_loss(self, rng: np.random.Generator, batch_size: int) -> Tensor | None:
        """Structural constraint (Eq. 21-22): h + r ~ t on KG facts."""
        if self.constraint_weight <= 0:
            return None
        kg = self._lifted.kg
        idx = rng.integers(0, kg.num_triples, size=min(self.kg_batch, kg.num_triples))
        nh, nr, nt = corrupt_batch(kg.store, idx, rng)

        def neg_dist(heads, rels, tails):
            delta = self.entity(heads) + self.relation(rels) - self.entity(tails)
            return -(delta * delta).sum(axis=1)

        pos = neg_dist(kg.store.heads[idx], kg.store.relations[idx], kg.store.tails[idx])
        neg = neg_dist(nh, nr, nt)
        hinge = losses.margin_ranking_loss(-pos, -neg, margin=1.0)
        return hinge * self.constraint_weight
