"""MCRec — meta-path based context with co-attention (Hu et al., KDD 2018).

MCRec treats the paths connecting a user-item pair as *interaction context*:
path instances are encoded with a CNN, pooled, and fused with the user and
item embeddings through a co-attention mechanism; the final MLP consumes
``u (+) h (+) v`` (survey Eq. 19-20).

Instance sampling uses the shared :class:`PathBank`; attention runs over
path instances directly (the published model's two-stage instance->meta-path
pooling collapsed into one stage — recorded in DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import nn, ops
from repro.autograd.tensor import Tensor
from repro.core.dataset import Dataset
from repro.core.recommender import Explanation
from repro.core.registry import register_model

from ..common import GradientRecommender
from ..embedding_based.dkn import BatchedKimCNN
from . import common
from .pathsampling import PathBank

__all__ = ["MCRec"]


@register_model("MCRec")
class MCRec(GradientRecommender):
    """CNN path-context encoding with co-attentive fusion."""

    requires_kg = True
    supports_explanations = True

    def __init__(
        self,
        dim: int = 16,
        max_path_length: int = 3,
        max_paths: int = 4,
        **kwargs,
    ) -> None:
        kwargs.setdefault("epochs", 6)
        kwargs.setdefault("batch_size", 64)
        super().__init__(dim=dim, loss="bpr", **kwargs)
        self.max_path_length = max_path_length
        self.max_paths = max_paths

    def _build(self, dataset: Dataset, rng: np.random.Generator) -> None:
        self._lifted = common.lift(dataset)
        kg = self._lifted.kg
        self.entity = nn.Embedding(kg.num_entities, self.dim, seed=rng)
        self.user = nn.Embedding(dataset.num_users, self.dim, seed=rng)
        self.item = nn.Embedding(dataset.num_items, self.dim, seed=rng)
        self.cnn = BatchedKimCNN(self.dim, self.dim, kernel_size=2, seed=rng)
        self.att = nn.MLP([3 * self.dim, 8, 1], seed=rng)
        self.scorer = nn.MLP([3 * self.dim, 16, 1], seed=rng)
        self._bank = PathBank(
            self._lifted,
            max_length=self.max_path_length,
            max_paths_per_item=self.max_paths,
            seed=rng,
        )

    @property
    def explanation_dataset(self) -> Dataset:
        return self._lifted

    def _score_batch(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        batch = users.size
        u = self.user(users)
        v = self.item(items)

        seqs: list[tuple[int, list[int]]] = []
        for row, (uu, vv) in enumerate(zip(users, items)):
            for path in self._bank.paths(int(uu), int(vv)):
                seqs.append((row, list(path.entities)))
        if seqs:
            seq_len = self.max_path_length + 1
            num_paths = len(seqs)
            ent_idx = np.zeros((num_paths, seq_len), dtype=np.int64)
            assign = np.zeros((batch, num_paths))
            for p, (row, ents) in enumerate(seqs):
                # Pad short paths by repeating the final entity.
                padded = ents + [ents[-1]] * (seq_len - len(ents))
                ent_idx[p] = padded[:seq_len]
                assign[row, p] = 1.0
            encoded = self.cnn(self.entity(ent_idx))  # (P, d)

            # Co-attention: path weight depends on (u, v, path) jointly.
            pair_rows = np.asarray([row for row, __ in seqs], dtype=np.int64)
            att_in = ops.concat(
                [encoded, u[pair_rows], v[pair_rows]], axis=1
            )
            logits = self.att(att_in).reshape(num_paths)
            # Per-pair masked softmax via the assignment matrix.
            neg_inf = (assign - 1.0) * 1e9
            per_pair = logits.reshape(1, num_paths) + Tensor(neg_inf)
            weights = ops.softmax(per_pair, axis=1) * Tensor(assign)  # (B, P)
            h = weights @ encoded  # (B, d)
        else:
            h = Tensor(np.zeros((batch, self.dim)))

        return self.scorer(ops.concat([u, h, v], axis=1)).reshape(batch)

    def explain(self, user_id: int, item_id: int) -> list[Explanation]:
        paths = self._bank.paths(user_id, item_id)
        score = float(self.predict(np.asarray([user_id]), np.asarray([item_id]))[0])
        return [
            Explanation(
                user_id=user_id,
                item_id=item_id,
                kind="mcrec-path",
                score=score,
                entities=p.entities,
                relations=p.relations,
            )
            for p in paths[:3]
        ]
