"""Path extraction from a user to candidate items (RKGE/KPRN/EIUM/MCRec).

One randomized bounded DFS from the user's entity collects up to K paths to
*every* item simultaneously, so both training (specific pairs) and full
ranking (all items) reuse a single per-user traversal.
"""

from __future__ import annotations

import numpy as np

from repro.core.rng import ensure_rng
from repro.kg.graph import KnowledgeGraph
from repro.kg.metapath import Path

__all__ = ["paths_to_targets", "PathBank"]


def paths_to_targets(
    kg: KnowledgeGraph,
    source: int,
    targets: dict[int, int],
    max_length: int = 3,
    max_paths_per_target: int = 3,
    max_expansions: int = 8000,
    min_length: int = 2,
    seed: int | np.random.Generator | None = None,
) -> dict[int, list[Path]]:
    """Collect paths from ``source`` to each target entity.

    ``targets`` maps entity id -> anything (only keys are used).  Traversal
    is undirected, simple (no entity revisits within a path), randomized in
    neighbor order, and stops after ``max_expansions`` node expansions.

    ``min_length=2`` (default) drops the trivial direct user->item edge:
    recording it would leak the training label into the path features —
    the model would learn "has an interact edge" instead of path semantics
    and collapse on held-out items (the standard KPRN/RKGE preprocessing).
    """
    rng = ensure_rng(seed)
    found: dict[int, list[Path]] = {t: [] for t in targets}
    stack: list[tuple[int, tuple[int, ...], tuple[int, ...]]] = [
        (source, (source,), ())
    ]
    expansions = 0
    while stack and expansions < max_expansions:
        node, ent_path, rel_path = stack.pop()
        expansions += 1
        if len(rel_path) >= max_length:
            continue
        neighbors = kg.neighbors(node, undirected=True)
        order = rng.permutation(len(neighbors))
        for pos in order:
            relation, neighbor = neighbors[pos]
            if neighbor in ent_path:
                continue
            new_ents = ent_path + (neighbor,)
            new_rels = rel_path + (relation,)
            bucket = found.get(neighbor)
            if (
                bucket is not None
                and len(bucket) < max_paths_per_target
                and len(new_rels) >= min_length
            ):
                bucket.append(Path(new_ents, new_rels))
            stack.append((neighbor, new_ents, new_rels))
    return found


class PathBank:
    """Per-user cache of user-to-item paths on a lifted dataset."""

    def __init__(
        self,
        lifted,
        max_length: int = 3,
        max_paths_per_item: int = 3,
        max_expansions: int = 8000,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.lifted = lifted
        self.max_length = max_length
        self.max_paths_per_item = max_paths_per_item
        self.max_expansions = max_expansions
        self._rng = ensure_rng(seed)
        self._cache: dict[int, dict[int, list[Path]]] = {}
        self._targets = {int(e): i for i, e in enumerate(lifted.item_entities)}

    def paths(self, user_id: int, item_id: int) -> list[Path]:
        """Paths user -> item (entity-level), cached per user."""
        by_entity = self._user_paths(user_id)
        entity = int(self.lifted.item_entities[item_id])
        return by_entity.get(entity, [])

    def _user_paths(self, user_id: int) -> dict[int, list[Path]]:
        if user_id not in self._cache:
            source = int(self.lifted.user_entities[user_id])
            self._cache[user_id] = paths_to_targets(
                self.lifted.kg,
                source,
                self._targets,
                max_length=self.max_length,
                max_paths_per_target=self.max_paths_per_item,
                max_expansions=self.max_expansions,
                seed=self._rng,
            )
        return self._cache[user_id]
