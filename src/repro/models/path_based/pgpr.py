"""PGPR — Policy-Guided Path Reasoning (Xian et al., SIGIR 2019) and Ekar
(Song et al., 2019), both reinforcement-learning path reasoners.

Recommendation is cast as a Markov decision process on the user-item KG:
an agent starts at the user, walks up to T steps, and earns a terminal
reward when it lands on a relevant item.  Training uses REINFORCE over a
policy network scoring candidate edges; inference runs beam search from
each user, so every recommended item arrives with the reasoning path that
produced it — the survey's flagship explainable method.

Ekar shares the MDP formulation but softens the reward (it rewards any
item by predicted preference rather than only history hits); here it is a
subclass flipping that reward definition.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Adam, nn, ops
from repro.autograd.tensor import Tensor
from repro.core.dataset import Dataset
from repro.core.recommender import Explanation, Recommender
from repro.core.registry import register_model
from repro.core.rng import ensure_rng
from repro.kge import TransE

from . import common

__all__ = ["PGPR", "Ekar"]


@register_model("PGPR")
class PGPR(Recommender):
    """REINFORCE-trained path reasoning with beam-search inference."""

    requires_kg = True
    supports_explanations = True

    def __init__(
        self,
        dim: int = 16,
        horizon: int = 3,
        episodes_per_user: int = 4,
        epochs: int = 8,
        max_actions: int = 15,
        beam_width: int = 8,
        lr: float = 0.01,
        kge_epochs: int = 12,
        seed: int | None = 0,
    ) -> None:
        super().__init__()
        self.dim = dim
        self.horizon = horizon
        self.episodes_per_user = episodes_per_user
        self.epochs = epochs
        self.max_actions = max_actions
        self.beam_width = beam_width
        self.lr = lr
        self.kge_epochs = kge_epochs
        self.seed = seed
        self._paths: dict[int, dict[int, tuple[float, tuple, tuple]]] = {}

    # ------------------------------------------------------------------ #
    def _candidate_actions(self, entity: int, visited: set[int], rng) -> list[tuple[int, int]]:
        actions = [
            (r, t)
            for r, t in self._lifted.kg.neighbors(entity, undirected=True)
            if t not in visited
        ]
        if len(actions) > self.max_actions:
            idx = rng.choice(len(actions), size=self.max_actions, replace=False)
            actions = [actions[i] for i in idx]
        return actions

    def _action_logits(self, user_vec: np.ndarray, entity: int, actions) -> Tensor:
        ent = self._embeddings[entity]
        feats = np.stack(
            [
                np.concatenate(
                    [user_vec, ent, self._rel_emb[r], self._embeddings[t]]
                )
                for r, t in actions
            ]
        )
        return self.policy(Tensor(feats)).reshape(len(actions))

    def _terminal_reward(self, user_id: int, entity: int) -> float:
        item = self._entity_item.get(entity)
        if item is None:
            return 0.0
        history = self._history[user_id]
        if item in history:
            return 1.0
        # Soft reward: TransE affinity of the user to the reached item.
        u = self._embeddings[int(self._lifted.user_entities[user_id])]
        affinity = -((u + self._buy - self._embeddings[entity]) ** 2).sum()
        return float(1.0 / (1.0 + np.exp(-affinity)))

    # ------------------------------------------------------------------ #
    def fit(self, dataset: Dataset) -> "PGPR":
        self._mark_fitted(dataset)
        rng = ensure_rng(self.seed)
        lifted = common.lift(dataset)
        self._lifted = lifted
        kg = lifted.kg

        kge = TransE(kg.num_entities, kg.num_relations, dim=self.dim, seed=rng)
        kge.fit(kg.store, epochs=self.kge_epochs, seed=rng)
        self._embeddings = kge.entity_embeddings().copy()
        self._rel_emb = kge.relation_embeddings().copy()
        self._buy = self._rel_emb[lifted.extra["interact_relation"]]
        self._entity_item = {
            int(e): i for i, e in enumerate(lifted.item_entities)
        }
        self._history = [
            set(dataset.interactions.items_of(u).tolist())
            for u in range(dataset.num_users)
        ]

        self.policy = nn.MLP([4 * self.dim, 32, 1], seed=rng)
        optimizer = Adam(self.policy.parameters(), lr=self.lr)
        baseline = 0.0

        for __ in range(self.epochs):
            users = rng.permutation(dataset.num_users)
            for user in users:
                user_vec = self._embeddings[int(lifted.user_entities[user])]
                log_probs: list[Tensor] = []
                advantages: list[float] = []
                for __ep in range(self.episodes_per_user):
                    entity = int(lifted.user_entities[user])
                    visited = {entity}
                    episode_logps: list[Tensor] = []
                    for __step in range(self.horizon):
                        actions = self._candidate_actions(entity, visited, rng)
                        if not actions:
                            break
                        logits = self._action_logits(user_vec, entity, actions)
                        probs = ops.softmax(logits, axis=0)
                        choice = int(
                            rng.choice(len(actions), p=probs.numpy() / probs.numpy().sum())
                        )
                        episode_logps.append(ops.log(probs[choice] + 1e-12))
                        __, entity = actions[choice]
                        visited.add(entity)
                    reward = self._terminal_reward(int(user), entity)
                    baseline = 0.95 * baseline + 0.05 * reward
                    for lp in episode_logps:
                        log_probs.append(lp)
                        advantages.append(reward - baseline)
                if not log_probs:
                    continue
                stacked = ops.stack(log_probs, axis=0).reshape(len(log_probs))
                loss = -(stacked * Tensor(np.asarray(advantages))).mean()
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()

        self._paths = {}
        return self

    # ------------------------------------------------------------------ #
    def _beam_search(self, user_id: int) -> dict[int, tuple[float, tuple, tuple]]:
        """Best path (log-prob + reward) to each reachable item."""
        lifted = self._lifted
        rng = ensure_rng(self.seed)
        user_vec = self._embeddings[int(lifted.user_entities[user_id])]
        start = int(lifted.user_entities[user_id])
        beams: list[tuple[float, int, tuple, tuple]] = [(0.0, start, (start,), ())]
        best: dict[int, tuple[float, tuple, tuple]] = {}
        for __ in range(self.horizon):
            candidates: list[tuple[float, int, tuple, tuple]] = []
            for logp, entity, ents, rels in beams:
                actions = self._candidate_actions(entity, set(ents), rng)
                if not actions:
                    continue
                logits = self._action_logits(user_vec, entity, actions).numpy()
                shifted = logits - logits.max()
                probs = np.exp(shifted) / np.exp(shifted).sum()
                for (r, t), p in zip(actions, probs):
                    candidates.append(
                        (logp + np.log(p + 1e-12), t, ents + (t,), rels + (r,))
                    )
            candidates.sort(key=lambda c: -c[0])
            beams = candidates[: self.beam_width]
            for logp, entity, ents, rels in beams:
                item = self._entity_item.get(entity)
                if item is None or item in self._history[user_id]:
                    continue
                reward = self._terminal_reward(user_id, entity)
                score = logp + reward
                if item not in best or score > best[item][0]:
                    best[item] = (score, ents, rels)
        return best

    def _user_paths(self, user_id: int) -> dict[int, tuple[float, tuple, tuple]]:
        if user_id not in self._paths:
            self._paths[user_id] = self._beam_search(user_id)
        return self._paths[user_id]

    def score_all(self, user_id: int) -> np.ndarray:
        dataset = self.fitted_dataset
        lifted = self._lifted
        # Base affinity so unreached items still rank sensibly...
        u = self._embeddings[int(lifted.user_entities[user_id])]
        items = self._embeddings[lifted.item_entities]
        delta = u[None, :] + self._buy[None, :] - items
        scores = 0.01 * (-(delta**2).sum(axis=1))
        # ...and a dominant bonus for items the policy actually reached.
        for item, (path_score, __, __r) in self._user_paths(user_id).items():
            scores[item] += 10.0 + path_score
        return scores

    @property
    def explanation_dataset(self) -> Dataset:
        return self._lifted

    def explain(self, user_id: int, item_id: int) -> list[Explanation]:
        found = self._user_paths(user_id).get(item_id)
        if found is None:
            return []
        score, ents, rels = found
        return [
            Explanation(
                user_id=user_id,
                item_id=item_id,
                kind="pgpr-path",
                score=float(score),
                entities=ents,
                relations=rels,
            )
        ]


@register_model("Ekar")
class Ekar(PGPR):
    """RL path reasoning with a purely preference-shaped terminal reward."""

    def _terminal_reward(self, user_id: int, entity: int) -> float:
        item = self._entity_item.get(entity)
        if item is None:
            return 0.0
        u = self._embeddings[int(self._lifted.user_entities[user_id])]
        affinity = -((u + self._buy - self._embeddings[entity]) ** 2).sum()
        return float(1.0 / (1.0 + np.exp(-affinity)))
