"""ProPPR-style recommendation (Catherine & Cohen, RecSys 2016).

The original system expresses recommendation as probabilistic logic rules
solved by ProPPR's personalized-PageRank proof engine.  The faithful
computational core — a random walk with restart from the user over the
user-item knowledge graph, with per-relation transition weights — is what
this class implements: items are ranked by their stationary visiting
probability.  Relation weights are learned by coordinate ascent on training
ranking accuracy (the parameter-learning role of ProPPR's SGD).
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.recommender import Recommender
from repro.core.registry import register_model
from repro.core.rng import ensure_rng

from . import common

__all__ = ["ProPPR"]


@register_model("ProPPR")
class ProPPR(Recommender):
    """Personalized PageRank with learned per-relation edge weights."""

    requires_kg = True

    def __init__(
        self,
        restart: float = 0.2,
        iterations: int = 20,
        weight_rounds: int = 2,
        weight_candidates: tuple[float, ...] = (0.5, 1.0, 2.0),
        seed: int | None = 0,
    ) -> None:
        super().__init__()
        self.restart = restart
        self.iterations = iterations
        self.weight_rounds = weight_rounds
        self.weight_candidates = weight_candidates
        self.seed = seed
        self.relation_weights: np.ndarray | None = None
        self._transition: np.ndarray | None = None
        self._lifted: Dataset | None = None

    # ------------------------------------------------------------------ #
    def _build_transition(self, weights: np.ndarray) -> np.ndarray:
        kg = self._lifted.kg
        n = kg.num_entities
        mat = np.zeros((n, n))
        for relation in range(kg.num_relations):
            idx = kg.store.with_relation(relation)
            heads = kg.store.heads[idx]
            tails = kg.store.tails[idx]
            w = weights[relation]
            np.add.at(mat, (heads, tails), w)
            np.add.at(mat, (tails, heads), w)
        sums = mat.sum(axis=1, keepdims=True)
        return np.divide(mat, sums, out=np.zeros_like(mat), where=sums > 0)

    def _pagerank(self, user_id: int) -> np.ndarray:
        lifted = self._lifted
        n = lifted.kg.num_entities
        restart_vec = np.zeros(n)
        restart_vec[int(lifted.user_entities[user_id])] = 1.0
        p = restart_vec.copy()
        for __ in range(self.iterations):
            p = (1.0 - self.restart) * (self._transition.T @ p) + self.restart * restart_vec
        return p

    def _training_quality(self, dataset: Dataset, rng) -> float:
        """Mean rank quality of training items under current weights."""
        hits = 0.0
        users = rng.choice(dataset.num_users, size=min(20, dataset.num_users), replace=False)
        for user in users:
            positives = dataset.interactions.items_of(int(user))
            if positives.size == 0:
                continue
            scores = self._pagerank(int(user))[self._lifted.item_entities]
            order = np.argsort(-scores)
            ranks = np.empty_like(order)
            ranks[order] = np.arange(order.size)
            hits += 1.0 - ranks[positives].mean() / order.size
        return hits

    def fit(self, dataset: Dataset) -> "ProPPR":
        self._mark_fitted(dataset)
        rng = ensure_rng(self.seed)
        self._lifted = common.lift(dataset)
        num_rel = self._lifted.kg.num_relations
        weights = np.ones(num_rel)
        self._transition = self._build_transition(weights)

        # Coordinate ascent over per-relation weights.
        for __ in range(self.weight_rounds):
            for relation in range(num_rel):
                best_w, best_q = weights[relation], -np.inf
                for candidate in self.weight_candidates:
                    weights[relation] = candidate
                    self._transition = self._build_transition(weights)
                    quality = self._training_quality(dataset, rng)
                    if quality > best_q:
                        best_q, best_w = quality, candidate
                weights[relation] = best_w
        self.relation_weights = weights
        self._transition = self._build_transition(weights)
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        self.fitted_dataset
        return self._pagerank(user_id)[self._lifted.item_entities]
