"""RKGE — Recurrent Knowledge Graph Embedding (Sun et al., RecSys 2018).

RKGE mines the semantic paths between a user and a candidate item
automatically (no hand-picked meta-paths), encodes each path's entity
sequence with a recurrent network, average-pools the final hidden states
(survey Eq. 19), and maps the pooled relation representation to a
preference score with a fully-connected layer (Eq. 20 with
``y = f(h)``).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import nn, ops
from repro.autograd.tensor import Tensor
from repro.core.dataset import Dataset
from repro.core.recommender import Explanation
from repro.core.registry import register_model

from ..common import GradientRecommender
from . import common
from .pathsampling import PathBank

__all__ = ["RKGE"]


@register_model("RKGE")
class RKGE(GradientRecommender):
    """GRU encoding of auto-mined user-item paths, average-pooled."""

    requires_kg = True
    supports_explanations = True

    def __init__(
        self,
        dim: int = 16,
        max_path_length: int = 3,
        max_paths: int = 3,
        **kwargs,
    ) -> None:
        kwargs.setdefault("epochs", 6)
        kwargs.setdefault("batch_size", 64)
        super().__init__(dim=dim, loss="bpr", **kwargs)
        self.max_path_length = max_path_length
        self.max_paths = max_paths

    def _build(self, dataset: Dataset, rng: np.random.Generator) -> None:
        self._lifted = common.lift(dataset)
        kg = self._lifted.kg
        self.entity = nn.Embedding(kg.num_entities, self.dim, seed=rng)
        self.gru = nn.GRUCell(self.dim, self.dim, seed=rng)
        self.scorer = nn.MLP([self.dim, 8, 1], seed=rng)
        self._bank = PathBank(
            self._lifted,
            max_length=self.max_path_length,
            max_paths_per_item=self.max_paths,
            seed=rng,
        )

    @property
    def explanation_dataset(self) -> Dataset:
        return self._lifted

    # ------------------------------------------------------------------ #
    def _encode_paths(
        self, users: np.ndarray, items: np.ndarray
    ) -> Tensor:
        """Pooled path representation h for each (user, item) pair.

        All paths across the batch are padded to a common length and
        encoded by one vectorized GRU run; each pair then average-pools its
        own paths via an assignment matrix.  Pairs without any path pool to
        the zero vector.
        """
        batch = users.size
        seqs: list[tuple[int, list[int]]] = []  # (pair_row, entity sequence)
        for row, (u, v) in enumerate(zip(users, items)):
            for path in self._bank.paths(int(u), int(v)):
                seqs.append((row, list(path.entities)))
        if not seqs:
            return Tensor(np.zeros((batch, self.dim)))

        max_len = max(len(s) for __, s in seqs)
        num_paths = len(seqs)
        ent_idx = np.zeros((num_paths, max_len), dtype=np.int64)
        mask = np.zeros((num_paths, max_len))
        assign = np.zeros((batch, num_paths))
        for p, (row, seq) in enumerate(seqs):
            ent_idx[p, : len(seq)] = seq
            mask[p, : len(seq)] = 1.0
            assign[row, p] = 1.0
        counts = assign.sum(axis=1, keepdims=True)
        assign = np.divide(assign, counts, out=np.zeros_like(assign), where=counts > 0)

        h = self.gru.initial_state(num_paths)
        for step in range(max_len):
            x = self.entity(ent_idx[:, step])
            h_next = self.gru(x, h)
            gate = Tensor(mask[:, step : step + 1])
            h = h_next * gate + h * (1.0 - gate)
        return Tensor(assign) @ h  # (B, d) average pool per pair

    def _score_batch(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        pooled = self._encode_paths(users, items)
        return self.scorer(pooled).reshape(users.size)

    # ------------------------------------------------------------------ #
    def explain(self, user_id: int, item_id: int) -> list[Explanation]:
        paths = self._bank.paths(user_id, item_id)
        score = float(self.predict(np.asarray([user_id]), np.asarray([item_id]))[0])
        return [
            Explanation(
                user_id=user_id,
                item_id=item_id,
                kind="rkge-path",
                score=score,
                entities=p.entities,
                relations=p.relations,
            )
            for p in paths[:3]
        ]
