"""RuleRec — jointly learning explainable rules for recommendation
(Ma et al., WWW 2019).

RuleRec mines item-item association *rules* — meta-paths in an external KG
— and learns a weight per rule from item co-interaction evidence, freeing
the practitioner from hand-tuning meta-path sets.  The item recommendation
module combines a matrix-factorization score with the rule-derived affinity
between the candidate and the user's history.  Because rules and weights
are explicit, each recommendation carries a rule-level explanation.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.recommender import Explanation, Recommender
from repro.core.registry import register_model
from repro.core.rng import ensure_rng
from repro.kg.metapath import MetaPath

from ..baselines.bpr import BPRMF
from . import common

__all__ = ["RuleRec"]


@register_model("RuleRec")
class RuleRec(Recommender):
    """MF + learned item-item KG rules; explanations cite the rule."""

    requires_kg = True
    supports_explanations = True

    def __init__(
        self,
        dim: int = 16,
        num_rules: int = 5,
        rule_epochs: int = 40,
        rule_lr: float = 0.2,
        rule_weight: float = 1.0,
        mf_epochs: int = 30,
        seed: int | None = 0,
    ) -> None:
        super().__init__()
        self.dim = dim
        self.num_rules = num_rules
        self.rule_epochs = rule_epochs
        self.rule_lr = rule_lr
        self.rule_weight = rule_weight
        self.mf_epochs = mf_epochs
        self.seed = seed
        self.rules: list[MetaPath] = []
        self.rule_weights: np.ndarray | None = None
        self._rule_sims: list[np.ndarray] | None = None
        self._mf: BPRMF | None = None

    # ------------------------------------------------------------------ #
    def _learn_rule_weights(
        self, dataset: Dataset, rng: np.random.Generator
    ) -> np.ndarray:
        """Logistic regression: does a rule predict item association?

        Positives are *strongly* co-interacted item pairs (co-count in the
        top quartile of nonzero co-counts); negatives are pairs never
        co-interacted.  Dense feedback makes "any co-interaction" nearly
        universal, so the contrast must come from the strong/never split.
        """
        dense = dataset.interactions.to_dense()
        co = dense.T @ dense
        np.fill_diagonal(co, -1.0)
        nonzero = co[co > 0]
        if nonzero.size == 0:
            return np.full(len(self._rule_sims), 1.0 / max(1, len(self._rule_sims)))
        threshold = np.quantile(nonzero, 0.75)
        pos_pairs = np.argwhere(co >= threshold)
        neg_pairs = np.argwhere(co == 0)
        if pos_pairs.shape[0] == 0 or neg_pairs.shape[0] == 0:
            return np.full(len(self._rule_sims), 1.0 / max(1, len(self._rule_sims)))

        weights = np.zeros(len(self._rule_sims))
        bias = 0.0
        for __ in range(self.rule_epochs):
            idx = rng.integers(0, pos_pairs.shape[0], size=min(500, pos_pairs.shape[0]))
            for row in idx:
                i, j = int(pos_pairs[row, 0]), int(pos_pairs[row, 1])
                neg_row = neg_pairs[int(rng.integers(0, neg_pairs.shape[0]))]
                for item_pair, label in (
                    ((i, j), 1.0),
                    ((int(neg_row[0]), int(neg_row[1])), 0.0),
                ):
                    x = np.asarray([s[item_pair] for s in self._rule_sims])
                    p = 1.0 / (1.0 + np.exp(-(weights @ x + bias)))
                    err = p - label
                    weights -= self.rule_lr * err * x
                    bias -= self.rule_lr * err
        return np.maximum(weights, 0.0)

    def fit(self, dataset: Dataset) -> "RuleRec":
        self._mark_fitted(dataset)
        rng = ensure_rng(self.seed)
        lifted = common.lift(dataset)
        self.rules = common.item_metapaths(lifted, max_paths=self.num_rules)
        self._rule_sims = [
            common.item_similarity(lifted, rule, kind="pathsim") for rule in self.rules
        ]
        self.rule_weights = self._learn_rule_weights(dataset, rng)

        self._mf = BPRMF(dim=self.dim, epochs=self.mf_epochs, seed=self.seed)
        self._mf.fit(dataset)
        return self

    # ------------------------------------------------------------------ #
    def _rule_affinity(self, user_id: int) -> np.ndarray:
        """Rule-weighted affinity of all items to the user's history."""
        dataset = self.fitted_dataset
        history = dataset.interactions.items_of(user_id)
        if history.size == 0:
            return np.zeros(dataset.num_items)
        total = np.zeros(dataset.num_items)
        for weight, sim in zip(self.rule_weights, self._rule_sims):
            total += weight * sim[history].mean(axis=0)
        return total

    def score_all(self, user_id: int) -> np.ndarray:
        self.fitted_dataset
        mf_scores = self._mf.score_all(user_id)
        return mf_scores + self.rule_weight * self._rule_affinity(user_id)

    def explain(self, user_id: int, item_id: int) -> list[Explanation]:
        """Cite the strongest (rule, history item) pair for the candidate."""
        dataset = self.fitted_dataset
        history = dataset.interactions.items_of(user_id)
        best: tuple[float, int, int] | None = None
        for rule_id, (weight, sim) in enumerate(zip(self.rule_weights, self._rule_sims)):
            for hist_item in history:
                strength = weight * sim[int(hist_item), item_id]
                if strength > 0 and (best is None or strength > best[0]):
                    best = (strength, rule_id, int(hist_item))
        if best is None:
            return []
        strength, rule_id, hist_item = best
        rule = self.rules[rule_id]
        kg = dataset.kg
        # Ground the rule into a concrete path hist_item -attr-> x -attr-> item.
        from repro.kg.metapath import enumerate_paths

        src = int(dataset.item_entities[hist_item])
        dst = int(dataset.item_entities[item_id])
        grounded = enumerate_paths(kg, src, dst, max_length=rule.length, max_paths=1)
        entities = grounded[0].entities if grounded else ()
        relations = grounded[0].relations if grounded else ()
        return [
            Explanation(
                user_id=user_id,
                item_id=item_id,
                kind="rule",
                score=strength,
                entities=entities,
                relations=relations,
                detail=f"rule {rule.describe(kg)} (weight {self.rule_weights[rule_id]:.3f})",
            )
        ]
