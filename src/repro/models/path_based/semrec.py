"""SemRec — semantic path based personalized recommendation
(Shi et al., CIKM 2015).

SemRec works on a *weighted* HIN: interaction links carry rating values, so
meta-path similarity distinguishes users who rate the same items the same
way (both loved vs. both hated), capturing positive *and* negative
preference patterns.  Prediction is neighborhood-style per meta-path —
similar users' feedback, weighted by path similarity — combined with
learned per-path weights.

With implicit feedback the weight channel degenerates to 1s; explicit
datasets (``InteractionMatrix.has_ratings``) use the rating values.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.recommender import Recommender
from repro.core.registry import register_model
from repro.core.rng import ensure_rng

from . import common

__all__ = ["SemRec"]


@register_model("SemRec")
class SemRec(Recommender):
    """Weighted meta-path user-similarity neighborhood model."""

    requires_kg = True

    def __init__(
        self,
        num_metapaths: int = 3,
        weight_epochs: int = 30,
        weight_lr: float = 0.1,
        seed: int | None = 0,
    ) -> None:
        super().__init__()
        self.num_metapaths = num_metapaths
        self.weight_epochs = weight_epochs
        self.weight_lr = weight_lr
        self.seed = seed
        self.path_weights: np.ndarray | None = None
        self._predictions: list[np.ndarray] | None = None

    def fit(self, dataset: Dataset) -> "SemRec":
        self._mark_fitted(dataset)
        rng = ensure_rng(self.seed)
        lifted = common.lift(dataset)
        paths = common.user_metapaths(lifted, max_paths=self.num_metapaths)

        # Weighted feedback: ratings if available, else binary.
        feedback = dataset.interactions.to_dense()

        self._predictions = []
        for path in paths:
            sim = common.user_similarity(lifted, path)
            np.fill_diagonal(sim, 0.0)
            norm = sim.sum(axis=1, keepdims=True)
            normalized = np.divide(sim, norm, out=np.zeros_like(sim), where=norm > 0)
            self._predictions.append(normalized @ feedback)
        if not self._predictions:
            self._predictions = [feedback]

        # Learn per-path weights with pairwise ranking on training data.
        features = np.stack(self._predictions, axis=0)  # (L, m, n)
        num_paths = features.shape[0]
        weights = np.full(num_paths, 1.0 / num_paths)
        pairs = dataset.interactions.pairs()
        for __ in range(self.weight_epochs):
            idx = rng.integers(0, pairs.shape[0], size=min(800, pairs.shape[0]))
            for row in idx:
                u, i = int(pairs[row, 0]), int(pairs[row, 1])
                j = int(rng.integers(0, dataset.num_items))
                x = features[:, u, i] - features[:, u, j]
                g = 1.0 / (1.0 + np.exp(weights @ x))
                weights += self.weight_lr * g * x / idx.size * 50
        self.path_weights = weights
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        self.fitted_dataset
        stacked = np.stack([p[user_id] for p in self._predictions], axis=0)
        return self.path_weights @ stacked
