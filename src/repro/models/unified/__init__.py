"""Unified methods (survey Section 4.3): embedding propagation combining
semantic representations with connectivity."""

from .akge import AKGE
from .akupm import AKUPM, RCoLM
from .intentgc import IntentGC
from .kgat import KGAT
from .kgcn import AGGREGATORS, KGCN, KGCNLS
from .kni import KNI
from .ripplenet import RippleNet, RippleNetAgg

__all__ = [
    "RippleNet",
    "AKGE",
    "RippleNetAgg",
    "KGCN",
    "KGCNLS",
    "AGGREGATORS",
    "KGAT",
    "AKUPM",
    "RCoLM",
    "KNI",
    "IntentGC",
]
