"""AKGE — Attentive Knowledge Graph Embedding (Sha, Sun & Zhang, 2019).

AKGE argues that propagating over the *whole* KG dilutes the signal:
instead it extracts, per (user, item) pair, a distance-aware **subgraph**
— the entities on the shortest paths connecting the pair — pre-trains
entity embeddings with TransR, and runs an attention-based GNN over that
subgraph only.  The refined user and item node states feed the predictor.

Subgraphs come from the shared :class:`PathBank` (paths up to 3 hops on
the lifted user-item graph); the attentive GNN is two rounds of softmax-
attention message passing within each pair's subgraph.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import nn, ops
from repro.autograd.tensor import Tensor
from repro.core.dataset import Dataset
from repro.core.registry import register_model
from repro.kge import TransR

from ..common import GradientRecommender
from ..path_based import common as path_common
from ..path_based.pathsampling import PathBank

__all__ = ["AKGE"]


@register_model("AKGE")
class AKGE(GradientRecommender):
    """Subgraph-attentive GNN over pair-specific distance subgraphs."""

    requires_kg = True

    def __init__(
        self,
        dim: int = 16,
        gnn_layers: int = 2,
        max_paths: int = 4,
        pretrain_epochs: int = 8,
        **kwargs,
    ) -> None:
        kwargs.setdefault("epochs", 4)
        kwargs.setdefault("batch_size", 48)
        super().__init__(dim=dim, loss="bpr", **kwargs)
        self.gnn_layers = gnn_layers
        self.max_paths = max_paths
        self.pretrain_epochs = pretrain_epochs

    def _build(self, dataset: Dataset, rng: np.random.Generator) -> None:
        self._lifted = path_common.lift(dataset)
        kg = self._lifted.kg
        self.entity = nn.Embedding(kg.num_entities, self.dim, seed=rng)
        if self.pretrain_epochs > 0:
            kge = TransR(kg.num_entities, kg.num_relations, dim=self.dim, seed=rng)
            kge.fit(kg.store, epochs=self.pretrain_epochs, seed=rng)
            self.entity.weight.data[:] = kge.entity_embeddings()
        self.message = [nn.Linear(self.dim, self.dim, seed=rng) for __ in range(self.gnn_layers)]
        self.scorer = nn.MLP([2 * self.dim, 16, 1], seed=rng)
        self._bank = PathBank(
            self._lifted, max_length=3, max_paths_per_item=self.max_paths, seed=rng
        )
        # Per-pair subgraph cache: (nodes, adjacency mask, user_pos, item_pos).
        self._subgraphs: dict[tuple[int, int], tuple] = {}

    def _subgraph(self, user: int, item: int):
        key = (user, item)
        if key in self._subgraphs:
            return self._subgraphs[key]
        paths = self._bank.paths(user, item)
        source = int(self._lifted.user_entities[user])
        target = int(self._lifted.item_entities[item])
        nodes: list[int] = [source, target]
        for path in paths:
            for entity in path.entities:
                if entity not in nodes:
                    nodes.append(entity)
        index = {e: i for i, e in enumerate(nodes)}
        adj = np.eye(len(nodes))
        for path in paths:
            for a, b in zip(path.entities[:-1], path.entities[1:]):
                adj[index[a], index[b]] = 1.0
                adj[index[b], index[a]] = 1.0
        self._subgraphs[key] = (np.asarray(nodes, dtype=np.int64), adj)
        return self._subgraphs[key]

    def _pair_score(self, user: int, item: int) -> Tensor:
        nodes, adj = self._subgraph(user, item)
        h = self.entity(nodes)  # (S, d)
        scale = 1.0 / np.sqrt(self.dim)
        mask = Tensor((adj - 1.0) * 1e9)
        for layer in range(self.gnn_layers):
            logits = (h @ h.T) * scale + mask  # attend only along subgraph edges
            att = ops.softmax(logits, axis=1)
            h = ops.tanh(self.message[layer](att @ h)) + h
        pair = ops.concat([h[0], h[1]], axis=0).reshape(1, 2 * self.dim)
        return self.scorer(pair).reshape(1)

    def _score_batch(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        scores = [self._pair_score(int(u), int(v)) for u, v in zip(users, items)]
        return ops.concat(scores, axis=0)
