"""AKUPM — Attention-enhanced Knowledge-aware User Preference Model
(Tang et al., KDD 2019) and RCoLM, its multi-task extension
(Li et al., IEEE Access 2019).

Like RippleNet, AKUPM models the user from click history propagated through
ripple sets, but (a) entities are initialized with TransR, (b) within each
hop the entities interact through *self-attention*, and (c) the per-hop
responses are combined by a second attention stage instead of a plain sum.

RCoLM keeps AKUPM as the backbone and jointly trains a KG-completion task
sharing the entity embeddings (survey Section 4.3), which is implemented
here as an added TransE margin loss over the item graph's facts.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import losses, nn, ops
from repro.autograd.tensor import Tensor
from repro.core.dataset import Dataset
from repro.core.registry import register_model
from repro.kg.ripple import user_ripple_sets
from repro.kg.sampling import corrupt_batch
from repro.kge import TransR

from ..common import GradientRecommender

__all__ = ["AKUPM", "RCoLM"]


@register_model("AKUPM")
class AKUPM(GradientRecommender):
    """Ripple propagation with intra-hop self-attention (TransR init)."""

    requires_kg = True

    def __init__(
        self,
        dim: int = 16,
        hops: int = 2,
        ripple_size: int = 12,
        pretrain_epochs: int = 10,
        **kwargs,
    ) -> None:
        kwargs.setdefault("loss", "bce")
        super().__init__(dim=dim, **kwargs)
        self.hops = max(1, hops)
        self.ripple_size = ripple_size
        self.pretrain_epochs = pretrain_epochs

    def _build(self, dataset: Dataset, rng: np.random.Generator) -> None:
        kg = dataset.kg
        self.entity = nn.Embedding(kg.num_entities, self.dim, seed=rng)
        if self.pretrain_epochs > 0:
            kge = TransR(kg.num_entities, kg.num_relations, dim=self.dim, seed=rng)
            kge.fit(kg.store, epochs=self.pretrain_epochs, seed=rng)
            self.entity.weight.data[:] = kge.entity_embeddings()
        self.relation = nn.Embedding(kg.num_relations, self.dim, seed=rng)

        m = dataset.num_users
        shape = (m, self.hops, self.ripple_size)
        self._tails = np.zeros(shape, dtype=np.int64)
        self._mask = np.zeros(shape)
        for user in range(m):
            items = dataset.interactions.items_of(user)
            seeds = dataset.item_entities[items] if items.size else np.zeros(1, np.int64)
            sets = user_ripple_sets(
                kg, seeds, self.hops, max_size=self.ripple_size, seed=rng
            )
            for hop, ripple in enumerate(sets):
                k = min(ripple.size, self.ripple_size)
                if k == 0:
                    continue
                self._tails[user, hop, :k] = ripple.tails[:k]
                self._mask[user, hop, :k] = 1.0

    def _score_batch(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        batch = users.size
        v = self.entity(self.fitted_dataset.item_entities[items])  # (B, d)
        scale = 1.0 / np.sqrt(self.dim)
        hop_responses: list[Tensor] = []
        for hop in range(self.hops):
            t = self.entity(self._tails[users, hop])  # (B, S, d)
            mask = Tensor(self._mask[users, hop])  # (B, S)
            # Intra-hop self-attention among the ripple entities.
            logits = (t @ t.transpose(0, 2, 1)) * scale  # (B, S, S)
            logits = logits + (mask.reshape(batch, 1, self.ripple_size) - 1.0) * 1e9
            att = ops.softmax(logits, axis=2)
            refined = att @ t  # (B, S, d)
            # Candidate-aware pooling within the hop.
            pool_logits = (v.reshape(batch, 1, self.dim) * refined).sum(axis=2)
            pool_logits = pool_logits + (mask - 1.0) * 1e9
            p = ops.softmax(pool_logits, axis=1) * mask
            hop_responses.append(
                (p.reshape(batch, self.ripple_size, 1) * refined).sum(axis=1)
            )
        # Attention over hop responses (AKUPM's final aggregation).
        stacked = ops.stack(hop_responses, axis=1)  # (B, H, d)
        hop_logits = (v.reshape(batch, 1, self.dim) * stacked).sum(axis=2)
        weights = ops.softmax(hop_logits, axis=1)
        u = (weights.reshape(batch, self.hops, 1) * stacked).sum(axis=1)
        return (u * v).sum(axis=1)


@register_model("RCoLM")
class RCoLM(AKUPM):
    """AKUPM + joint KG-completion (TransE) loss sharing embeddings."""

    def __init__(self, kg_weight: float = 0.5, kg_batch: int = 64, **kwargs) -> None:
        super().__init__(**kwargs)
        self.kg_weight = kg_weight
        self.kg_batch = kg_batch

    def _extra_loss(self, rng: np.random.Generator, batch_size: int) -> Tensor | None:
        if self.kg_weight <= 0:
            return None
        kg = self.fitted_dataset.kg
        idx = rng.integers(0, kg.num_triples, size=min(self.kg_batch, kg.num_triples))
        nh, nr, nt = corrupt_batch(kg.store, idx, rng)

        def neg_dist(heads, rels, tails):
            delta = self.entity(heads) + self.relation(rels) - self.entity(tails)
            return -(delta * delta).sum(axis=1)

        pos = neg_dist(kg.store.heads[idx], kg.store.relations[idx], kg.store.tails[idx])
        neg = neg_dist(nh, nr, nt)
        return losses.margin_ranking_loss(-pos, -neg, margin=1.0) * self.kg_weight
