"""IntentGC — scalable relation-aware graph convolution (Zhao et al., KDD
2019).

IntentGC exploits heterogeneous user/item relations with a *faster*
convolution: instead of attending over individual neighbors, it averages
neighbors per relation and mixes the per-relation summaries with learned
weights (the vector-wise IntentNet trick that avoids the quadratic
neighbor-pair cost).  Implemented over the lifted user-item graph with
full-graph (dense) propagation, which the small synthetic graphs afford.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.autograd import nn, ops
from repro.autograd.tensor import Tensor
from repro.core.dataset import Dataset
from repro.core.registry import register_model
from repro.kg.builders import ensure_user_item_graph

from ..common import GradientRecommender

__all__ = ["IntentGC"]


@register_model("IntentGC")
class IntentGC(GradientRecommender):
    """Relation-wise mean aggregation GCN on the user-item graph."""

    requires_kg = True

    def __init__(self, dim: int = 16, num_layers: int = 2, **kwargs) -> None:
        super().__init__(dim=dim, loss="bpr", **kwargs)
        self.num_layers = max(1, num_layers)

    def _build(self, dataset: Dataset, rng: np.random.Generator) -> None:
        lifted = ensure_user_item_graph(dataset)
        self._lifted = lifted
        kg = lifted.kg

        # Row-normalized undirected adjacency per relation (dense; graphs
        # here are a few hundred entities).
        n = kg.num_entities
        self._adjacency: list[np.ndarray] = []
        for relation in range(kg.num_relations):
            idx = kg.store.with_relation(relation)
            rows = np.concatenate([kg.store.heads[idx], kg.store.tails[idx]])
            cols = np.concatenate([kg.store.tails[idx], kg.store.heads[idx]])
            mat = sparse.csr_matrix(
                (np.ones(rows.size), (rows, cols)), shape=(n, n)
            ).toarray()
            sums = mat.sum(axis=1, keepdims=True)
            self._adjacency.append(mat / np.maximum(sums, 1.0))

        self.entity = nn.Embedding(n, self.dim, seed=rng)
        self.self_w = [nn.Linear(self.dim, self.dim, seed=rng) for __ in range(self.num_layers)]
        self.rel_w = [
            [nn.Linear(self.dim, self.dim, bias=False, seed=rng) for __ in range(kg.num_relations)]
            for __ in range(self.num_layers)
        ]

    def _propagate_all(self) -> Tensor:
        """Full-graph propagation; returns the final (N, d) entity table."""
        x = self.entity.weight
        for layer in range(self.num_layers):
            out = self.self_w[layer](x)
            for relation, adjacency in enumerate(self._adjacency):
                pooled = Tensor(adjacency) @ x
                out = out + self.rel_w[layer][relation](pooled)
            x = ops.relu(out) if layer < self.num_layers - 1 else ops.tanh(out)
        return x

    def _score_batch(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        table = self._propagate_all()
        u = table[self._lifted.user_entities[users]]
        v = table[self._lifted.item_entities[items]]
        return (u * v).sum(axis=1)

    def score_all(self, user_id: int) -> np.ndarray:
        # One propagation scores every item at once.
        table = self._propagate_all()
        u = table.numpy()[self._lifted.user_entities[user_id]]
        items = table.numpy()[self._lifted.item_entities]
        return items @ u
