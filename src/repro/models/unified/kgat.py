"""KGAT — Knowledge Graph Attention Network (Wang et al., KDD 2019).

KGAT lifts the interactions into a *collaborative knowledge graph* (users
become entities, feedback becomes a relation), initializes entities with
TransR, and propagates embeddings outward through attentive layers (survey
Eq. 34) using the bi-interaction aggregator (Eq. 33).  The final
representation concatenates every layer's output, and preference is the
inner product of the user's and item's propagated embeddings, trained with
BPR.

Neighborhoods are sampled to a fixed size per layer (KGCN-style receptive
fields) to keep full-graph propagation tractable — the published model's
minibatch trick, applied uniformly here.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import nn, ops
from repro.autograd.tensor import Tensor
from repro.core.dataset import Dataset
from repro.core.recommender import Explanation
from repro.core.registry import register_model
from repro.kg.builders import ensure_user_item_graph
from repro.kg.metapath import enumerate_paths
from repro.kg.sampling import NeighborCache
from repro.kge import TransR

from ..common import GradientRecommender

__all__ = ["KGAT"]


@register_model("KGAT")
class KGAT(GradientRecommender):
    """Attentive embedding propagation over the collaborative KG."""

    requires_kg = True
    supports_explanations = True

    def __init__(
        self,
        dim: int = 16,
        hops: int = 2,
        num_neighbors: int = 6,
        pretrain_epochs: int = 10,
        **kwargs,
    ) -> None:
        super().__init__(dim=dim, loss="bpr", **kwargs)
        self.hops = max(1, hops)
        self.num_neighbors = num_neighbors
        self.pretrain_epochs = pretrain_epochs

    def _build(self, dataset: Dataset, rng: np.random.Generator) -> None:
        lifted = ensure_user_item_graph(dataset)
        self._lifted = lifted
        kg = lifted.kg

        if self.pretrain_epochs > 0:
            kge = TransR(kg.num_entities, kg.num_relations, dim=self.dim, seed=rng)
            kge.fit(kg.store, epochs=self.pretrain_epochs, seed=rng)
            init = kge.entity_embeddings().copy()
            rel_init = kge.relation_embeddings().copy()
        else:
            init = rng.normal(0.0, 0.1, (kg.num_entities, self.dim))
            rel_init = rng.normal(0.0, 0.1, (kg.num_relations, self.dim))
        self.entity = nn.Embedding(kg.num_entities, self.dim, seed=rng)
        self.entity.weight.data[:] = init
        self.relation = nn.Embedding(kg.num_relations + 1, self.dim, seed=rng)
        self.relation.weight.data[: kg.num_relations] = rel_init
        self.layer_w1 = [nn.Linear(self.dim, self.dim, seed=rng) for __ in range(self.hops)]
        self.layer_w2 = [nn.Linear(self.dim, self.dim, seed=rng) for __ in range(self.hops)]

        # Fixed receptive fields for every entity of the lifted graph.
        cache = NeighborCache(kg)
        all_entities = np.arange(kg.num_entities, dtype=np.int64)
        self._nbr_rels, self._nbrs = cache.sample(
            all_entities, self.num_neighbors, seed=rng
        )

    # ------------------------------------------------------------------ #
    def _propagate(self, entities: np.ndarray) -> Tensor:
        """Layer-concatenated representation e* for the given entities."""
        batch = entities.size
        # Build the sampled ego-network hop lists for this batch.
        ent_hops = [entities.reshape(batch, 1)]
        rel_hops = []
        for __ in range(self.hops):
            frontier = ent_hops[-1]
            rel_hops.append(self._nbr_rels[frontier.ravel()].reshape(batch, -1))
            ent_hops.append(self._nbrs[frontier.ravel()].reshape(batch, -1))

        vectors = [
            self.entity(hop).reshape(batch, -1, self.dim) for hop in ent_hops
        ]
        outputs = [vectors[0].reshape(batch, self.dim)]
        current = vectors
        for layer in range(self.hops):
            nxt: list[Tensor] = []
            for depth in range(len(current) - 1):
                width = current[depth].shape[1]
                h = current[depth]  # (B, W, d)
                t = current[depth + 1].reshape(batch, width, self.num_neighbors, self.dim)
                r = self.relation(rel_hops[depth][:, : width * self.num_neighbors]).reshape(
                    batch, width, self.num_neighbors, self.dim
                )
                # Attention pi(h, r, t) = t . tanh(h + r)  (Eq. 34's score).
                query = ops.tanh(h.reshape(batch, width, 1, self.dim) + r)
                logits = (t * query).sum(axis=3)  # (B, W, S)
                att = ops.softmax(logits, axis=2)
                pooled = (att.reshape(batch, width, self.num_neighbors, 1) * t).sum(axis=2)
                merged = ops.relu(self.layer_w1[layer](h + pooled)) + ops.relu(
                    self.layer_w2[layer](h * pooled)
                )
                nxt.append(merged)
            current = nxt
            outputs.append(current[0].reshape(batch, self.dim))
        return ops.concat(outputs, axis=1)

    def _score_batch(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        lifted = self._lifted
        u = self._propagate(lifted.user_entities[users])
        v = self._propagate(lifted.item_entities[items])
        return (u * v).sum(axis=1)

    @property
    def explanation_dataset(self) -> Dataset:
        return self._lifted

    # ------------------------------------------------------------------ #
    def explain(self, user_id: int, item_id: int) -> list[Explanation]:
        """High-attention connectivity: shortest KG paths user -> item."""
        lifted = self._lifted
        source = int(lifted.user_entities[user_id])
        target = int(lifted.item_entities[item_id])
        paths = enumerate_paths(
            lifted.kg, source, target, max_length=self.hops + 1, max_paths=3
        )
        score = float(self.predict(np.asarray([user_id]), np.asarray([item_id]))[0])
        return [
            Explanation(
                user_id=user_id,
                item_id=item_id,
                kind="kgat-path",
                score=score,
                entities=p.entities,
                relations=p.relations,
            )
            for p in paths
        ]
