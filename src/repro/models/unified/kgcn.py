"""KGCN — Knowledge Graph Convolutional Networks (Wang et al., WWW 2019)
and KGCN-LS, its label-smoothness extension (KDD 2019).

The candidate item's representation is built inward from its H-hop sampled
receptive field: neighbors are weighted by a *user-relation* attention
(``pi = softmax(u . r)``) and merged with the center entity by one of the
survey's four aggregators (Eq. 30-33: sum, concat, neighbor,
bi-interaction).  KGCN-LS adds a label-smoothness term: user interaction
labels are propagated over the same receptive field with the same
user-specific edge weights, and the propagated label of the candidate must
match the true label.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import losses, nn, ops
from repro.autograd.tensor import Tensor
from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigError
from repro.core.registry import register_model
from repro.kg.sampling import NeighborCache

from ..common import GradientRecommender

__all__ = ["KGCN", "KGCNLS", "AGGREGATORS"]

AGGREGATORS = ("sum", "concat", "neighbor", "bi-interaction")


@register_model("KGCN")
class KGCN(GradientRecommender):
    """GNN over the item KG with user-relation attention sampling."""

    requires_kg = True

    def __init__(
        self,
        dim: int = 16,
        hops: int = 1,
        num_neighbors: int = 16,
        aggregator: str = "sum",
        **kwargs,
    ) -> None:
        kwargs.setdefault("loss", "bce")
        super().__init__(dim=dim, **kwargs)
        if aggregator not in AGGREGATORS:
            raise ConfigError(f"aggregator must be one of {AGGREGATORS}")
        self.hops = max(1, hops)
        self.num_neighbors = num_neighbors
        self.aggregator = aggregator

    # ------------------------------------------------------------------ #
    def _build(self, dataset: Dataset, rng: np.random.Generator) -> None:
        kg = dataset.kg
        self.user = nn.Embedding(dataset.num_users, self.dim, seed=rng)
        self.entity = nn.Embedding(kg.num_entities, self.dim, seed=rng)
        # +1 relation row for the self-loop used by isolated entities.
        self.relation = nn.Embedding(kg.num_relations + 1, self.dim, seed=rng)
        if self.aggregator == "concat":
            self.agg_weights = [
                nn.Linear(2 * self.dim, self.dim, seed=rng) for __ in range(self.hops)
            ]
        elif self.aggregator == "bi-interaction":
            self.agg_weights = [
                (nn.Linear(self.dim, self.dim, seed=rng), nn.Linear(self.dim, self.dim, seed=rng))
                for __ in range(self.hops)
            ]
        else:
            self.agg_weights = [
                nn.Linear(self.dim, self.dim, seed=rng) for __ in range(self.hops)
            ]

        # Static receptive fields per item entity: hop k holds S^k entities.
        cache = NeighborCache(kg)
        seeds = dataset.item_entities.astype(np.int64)
        self._ent_hops: list[np.ndarray] = [seeds.reshape(-1, 1)]
        self._rel_hops: list[np.ndarray] = []
        for __ in range(self.hops):
            frontier = self._ent_hops[-1]
            rels, nbrs = cache.sample(frontier.ravel(), self.num_neighbors, seed=rng)
            n_items = seeds.size
            self._ent_hops.append(nbrs.reshape(n_items, -1))
            self._rel_hops.append(rels.reshape(n_items, -1))

    def _attention(self, u: Tensor, rels: np.ndarray) -> Tensor:
        """User-relation scores pi = softmax_neighbors(u . r) (B, W, S)."""
        batch, width = rels.shape[0], rels.shape[1]
        r = self.relation(rels.reshape(batch, -1, self.num_neighbors))
        logits = (u.reshape(batch, 1, 1, self.dim) * r).sum(axis=3)
        return ops.softmax(logits, axis=2)  # (B, W/S, S)

    def _aggregate(self, depth: int, self_vec: Tensor, nbr_vec: Tensor) -> Tensor:
        """One of the survey's four aggregators (Eq. 30-33)."""
        act = ops.tanh if depth == 0 else ops.relu
        if self.aggregator == "sum":
            return act(self.agg_weights[depth](self_vec + nbr_vec))
        if self.aggregator == "concat":
            return act(self.agg_weights[depth](ops.concat([self_vec, nbr_vec], axis=-1)))
        if self.aggregator == "neighbor":
            return act(self.agg_weights[depth](nbr_vec))
        w1, w2 = self.agg_weights[depth]
        return act(w1(self_vec + nbr_vec)) + act(w2(self_vec * nbr_vec))

    def _item_representation(self, users: np.ndarray, items: np.ndarray, u: Tensor) -> Tensor:
        batch = items.size
        vectors = [
            self.entity(hop[items]).reshape(batch, -1, self.dim)
            for hop in self._ent_hops
        ]
        for depth in reversed(range(self.hops)):
            rels = self._rel_hops[depth][items]  # (B, W*S)
            att = self._attention(u, rels)  # (B, W, S)
            width = att.shape[1]
            nbr = vectors[depth + 1].reshape(batch, width, self.num_neighbors, self.dim)
            pooled = (att.reshape(batch, width, self.num_neighbors, 1) * nbr).sum(axis=2)
            self_vec = vectors[depth]  # (B, W, d)
            vectors[depth] = self._aggregate(depth, self_vec, pooled)
        return vectors[0].reshape(batch, self.dim)

    def _score_batch(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        u = self.user(users)
        v = self._item_representation(users, items, u)
        return (u * v).sum(axis=1)


@register_model("KGCN-LS")
class KGCNLS(KGCN):
    """KGCN + label-smoothness regularization on propagated labels."""

    def __init__(self, ls_weight: float = 0.5, **kwargs) -> None:
        super().__init__(**kwargs)
        self.ls_weight = ls_weight
        self._ls_batch: tuple[np.ndarray, np.ndarray] | None = None

    def _build(self, dataset: Dataset, rng: np.random.Generator) -> None:
        super()._build(dataset, rng)
        # entity -> aligned item id (or -1) for label lookup.
        kg = dataset.kg
        self._entity_item = np.full(kg.num_entities, -1, dtype=np.int64)
        for item, entity in enumerate(dataset.item_entities):
            self._entity_item[entity] = item

    def _propagated_label(self, users: np.ndarray, items: np.ndarray, u: Tensor) -> Tensor:
        """One-step label propagation over the hop-1 neighborhood.

        A neighbor entity carries label 1 if it is an item the user
        interacted with in training; the candidate's propagated label is the
        attention-weighted mean of its neighbors' labels, holding out the
        candidate itself (the LS leave-one-out rule).
        """
        dataset = self.fitted_dataset
        batch = items.size
        rels = self._rel_hops[0][items]  # (B, S)
        nbr_entities = self._ent_hops[1][items]  # (B, S)
        labels = np.zeros((batch, self.num_neighbors))
        for row, (user, item) in enumerate(zip(users, items)):
            history = set(dataset.interactions.items_of(int(user)).tolist())
            history.discard(int(item))  # hold out the candidate
            for col, entity in enumerate(nbr_entities[row]):
                aligned = self._entity_item[entity]
                if aligned >= 0 and int(aligned) in history:
                    labels[row, col] = 1.0
        att = self._attention(u, rels).reshape(batch, self.num_neighbors)
        return (att * Tensor(labels)).sum(axis=1)

    def _batch_loss(self, users, positives, n_items, rng) -> Tensor:
        base = super()._batch_loss(users, positives, n_items, rng)
        if self.ls_weight <= 0:
            return base
        negatives = rng.integers(0, n_items, size=users.size)
        all_users = np.concatenate([users, negatives * 0 + users])
        all_items = np.concatenate([positives, negatives])
        labels = np.concatenate([np.ones(users.size), np.zeros(users.size)])
        u = self.user(all_users)
        propagated = self._propagated_label(all_users, all_items, u)
        ls = losses.mse_loss(propagated, labels)
        return base + ls * self.ls_weight
