"""KNI — Knowledge-enhanced Neighborhood Interaction (Qu et al., 2019).

Where RippleNet/KGCN refine the user and item representations separately,
KNI scores the *interaction between the two neighborhoods*: every entity in
the user's neighborhood attends to every entity in the item's neighborhood,
and the prediction aggregates the pairwise inner products under those
attention weights (an end-to-end neighborhood-interaction model).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import nn, ops
from repro.autograd.tensor import Tensor
from repro.core.dataset import Dataset
from repro.core.registry import register_model
from repro.kg.sampling import NeighborCache

from ..common import GradientRecommender

__all__ = ["KNI"]


@register_model("KNI")
class KNI(GradientRecommender):
    """Cross-neighborhood attention interaction scoring."""

    requires_kg = True

    def __init__(self, dim: int = 16, neighborhood: int = 6, **kwargs) -> None:
        kwargs.setdefault("loss", "bce")
        super().__init__(dim=dim, **kwargs)
        self.neighborhood = neighborhood

    def _build(self, dataset: Dataset, rng: np.random.Generator) -> None:
        kg = dataset.kg
        self.entity = nn.Embedding(kg.num_entities, self.dim, seed=rng)
        self.user = nn.Embedding(dataset.num_users, self.dim, seed=rng)

        # Item-side neighborhoods: the item entity plus sampled KG neighbors.
        cache = NeighborCache(kg)
        __, nbrs = cache.sample(
            dataset.item_entities, self.neighborhood - 1, seed=rng
        )
        self._item_nbrs = np.concatenate(
            [dataset.item_entities.reshape(-1, 1), nbrs], axis=1
        )

        # User-side neighborhoods: entities of sampled history items.
        m = dataset.num_users
        self._user_nbrs = np.zeros((m, self.neighborhood), dtype=np.int64)
        self._user_mask = np.zeros((m, self.neighborhood))
        for user in range(m):
            items = dataset.interactions.items_of(user)
            if items.size == 0:
                continue
            take = min(items.size, self.neighborhood)
            chosen = rng.choice(items, size=take, replace=False)
            self._user_nbrs[user, :take] = dataset.item_entities[chosen]
            self._user_mask[user, :take] = 1.0

    def _score_batch(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        batch = users.size
        k = self.neighborhood
        eu = self.entity(self._user_nbrs[users])  # (B, K, d)
        ev = self.entity(self._item_nbrs[items])  # (B, K, d)
        u_mask = Tensor(self._user_mask[users])  # (B, K)

        pair = eu @ ev.transpose(0, 2, 1)  # (B, K, K) inner products
        logits = pair * (1.0 / np.sqrt(self.dim))
        logits = logits + (u_mask.reshape(batch, k, 1) - 1.0) * 1e9
        flat = logits.reshape(batch, k * k)
        att = ops.softmax(flat, axis=1).reshape(batch, k, k)
        att = att * u_mask.reshape(batch, k, 1)
        interaction = (att * pair).reshape(batch, k * k).sum(axis=1)
        # Personal bias term keeps pure-CF signal alongside the KG term.
        bias = (self.user(users) * self.entity(self._item_nbrs[items][:, 0])).sum(axis=1)
        return interaction + bias
