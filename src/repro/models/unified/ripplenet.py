"""RippleNet — preference propagation over the KG (Wang et al., CIKM 2018)
and its TOIS 2019 aggregation extension.

The user is represented by propagating preference outward from the entities
of their historical items through H hops of *ripple sets* (survey Section 3
and Eq. 24-26): at each hop, head entities interact with the query in the
relation space (``v^T R e_h``), attention weights select tails, and hop
responses ``o^1..o^H`` sum into the user embedding.

``aggregate_item=True`` gives RippleNet-agg, the TOIS variant where the item
representation is also refreshed with each hop response.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import nn, ops
from repro.autograd.tensor import Tensor
from repro.core.dataset import Dataset
from repro.core.registry import register_model
from repro.core.rng import ensure_rng
from repro.kg.ripple import user_ripple_sets

from ..common import GradientRecommender

__all__ = ["RippleNet", "RippleNetAgg"]


@register_model("RippleNet")
class RippleNet(GradientRecommender):
    """Multi-hop preference propagation with relation-space attention."""

    requires_kg = True

    def __init__(
        self,
        dim: int = 16,
        hops: int = 2,
        ripple_size: int = 32,
        aggregate_item: bool = False,
        **kwargs,
    ) -> None:
        kwargs.setdefault("loss", "bce")
        super().__init__(dim=dim, **kwargs)
        self.hops = max(1, hops)
        self.ripple_size = ripple_size
        self.aggregate_item = aggregate_item

    def _build(self, dataset: Dataset, rng: np.random.Generator) -> None:
        kg = dataset.kg
        self.entity = nn.Embedding(kg.num_entities, self.dim, seed=rng)
        # One (d x d) relation matrix per relation (Eq. 24's R_i).
        eye = np.eye(self.dim)
        noise = rng.normal(0.0, 0.05, (kg.num_relations, self.dim, self.dim))
        self.rel_matrix = nn.Parameter(eye[None] + noise)

        m = dataset.num_users
        shape = (m, self.hops, self.ripple_size)
        self._heads = np.zeros(shape, dtype=np.int64)
        self._rels = np.zeros(shape, dtype=np.int64)
        self._tails = np.zeros(shape, dtype=np.int64)
        self._mask = np.zeros(shape)
        for user in range(m):
            items = dataset.interactions.items_of(user)
            seeds = dataset.item_entities[items] if items.size else np.zeros(1, np.int64)
            sets = user_ripple_sets(
                kg, seeds, self.hops, max_size=self.ripple_size, seed=rng
            )
            for hop, ripple in enumerate(sets):
                k = min(ripple.size, self.ripple_size)
                if k == 0:
                    continue
                self._heads[user, hop, :k] = ripple.heads[:k]
                self._rels[user, hop, :k] = ripple.relations[:k]
                self._tails[user, hop, :k] = ripple.tails[:k]
                self._mask[user, hop, :k] = 1.0

    def _score_batch(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        batch = users.size
        v = self.entity(self.fitted_dataset.item_entities[items])  # (B, d)
        query = v
        responses: list[Tensor] = []
        for hop in range(self.hops):
            heads = self.entity(self._heads[users, hop])  # (B, S, d)
            tails = self.entity(self._tails[users, hop])  # (B, S, d)
            rel = self.rel_matrix[self._rels[users, hop]]  # (B, S, d, d)
            mask = Tensor(self._mask[users, hop])  # (B, S)

            rh = (rel @ heads.reshape(batch, self.ripple_size, self.dim, 1)).reshape(
                batch, self.ripple_size, self.dim
            )
            logits = (query.reshape(batch, 1, self.dim) * rh).sum(axis=2)  # (B, S)
            logits = logits + (mask - 1.0) * 1e9
            p = ops.softmax(logits, axis=1) * mask
            o = (p.reshape(batch, self.ripple_size, 1) * tails).sum(axis=1)  # (B, d)
            responses.append(o)
            query = o  # next hop queries with the current response (Eq. 24)
            if self.aggregate_item:
                v = v + o

        u = responses[0]
        for o in responses[1:]:
            u = u + o
        return (u * v).sum(axis=1)


@register_model("RippleNet-agg")
class RippleNetAgg(RippleNet):
    """TOIS 2019 extension: hop responses also refresh the item embedding."""

    def __init__(self, **kwargs) -> None:
        kwargs["aggregate_item"] = True
        super().__init__(**kwargs)
