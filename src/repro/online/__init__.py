"""Online learning loop: continuous deployment of live embeddings.

The online subsystem closes the loop the serving stack left open:
interactions observed *while serving* flow back into the model without
downtime, through a crash-safe pipeline built entirely from existing
layers —

* :mod:`repro.online.stream` — a seeded, sessionized interaction feed
  with cold-start newcomers and new catalog items (churn);
* :mod:`repro.online.trainer` — a shadow trainer applying validated
  sparse-row BPR updates to a train-mode
  :class:`~repro.store.mmap.MmapShardStore` (PR 3's coalesced row
  gradients, PR 6's dirty-row commits);
* :mod:`repro.online.loop` — the deployment loop: commit a generation,
  open a pinned serve view, canary-validate and atomically promote
  through the :class:`~repro.serving.registry.ModelRegistry` (PR 7's
  ``sync_index`` promotion), watch, and roll back regressions;
* :mod:`repro.online.harness` — the churn matrix replaying seeded
  stream x fault scenarios with bitwise old-or-new assertions;
* :mod:`repro.online.demo` — the narrated chaos demo behind
  ``python -m repro online-demo`` and the CI smoke job.

See ``docs/online.md`` for the architecture and the fault matrix.
"""

from repro.online.loop import (
    BatchOutcome,
    ChaosCandidate,
    OnlineLoop,
    PromotionCycle,
    make_candidate,
)
from repro.online.stream import InteractionBatch, InteractionStream, StreamConfig
from repro.online.trainer import ENTITY_TABLE, ManifestCrashIO, ShadowTrainer

__all__ = [
    "BatchOutcome",
    "ChaosCandidate",
    "ENTITY_TABLE",
    "InteractionBatch",
    "InteractionStream",
    "ManifestCrashIO",
    "OnlineLoop",
    "PromotionCycle",
    "ShadowTrainer",
    "StreamConfig",
    "make_candidate",
]
