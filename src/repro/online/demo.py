"""Narrated online-learning chaos demo (``python -m repro online-demo``).

One replay tells the whole story: a seeded interaction stream with
cold-start churn flows through the shadow trainer; promotions commit,
canary-validate, and hot-swap; planned faults exercise quarantine,
rejection, rollback, and crash recovery.  ``--smoke`` runs the full
churn matrix of :mod:`repro.online.harness` across several seeds and
asserts every contract — the CI ``online-smoke`` job runs exactly that.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.runtime.faults import Fault, FaultPlan, InjectedCrash
from repro.store.mmap import MmapShardStore
from repro.online.harness import (
    ChurnConfig,
    build_world,
    freshness_report,
    run_smoke as harness_smoke,
)
from repro.online.trainer import ENTITY_TABLE

__all__ = ["run_demo", "run_smoke"]


def _mixed_plan(config: ChurnConfig) -> FaultPlan:
    """One of every non-crashing fault kind, spread across the replay.

    The quarantined batch at ``ce + 1`` shifts every later commit cycle
    one step right (cycles fire on *applied*-batch cadence), so the
    promotion-shaped faults land on ``k * ce`` instead of ``k * ce - 1``.
    """
    ce = config.commit_every
    return FaultPlan(
        [
            Fault(step=ce + 1, kind="poison_batch"),
            Fault(step=ce + 3, kind="trainer_stall", seconds=0.05),
            Fault(step=3 * ce, kind="sync_fail"),
            Fault(step=4 * ce, kind="canary_regress"),
            Fault(step=5 * ce, kind="late_regress"),
        ]
    )


def run_demo(
    seed: int = 0,
    num_batches: int = 60,
    workdir: str | Path | None = None,
) -> str:
    """A full narrated replay; returns the report text."""
    config = ChurnConfig(num_batches=num_batches)
    tmp = None
    if workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-online-demo-")
        workdir = tmp.name
    workdir = Path(workdir)
    lines = [
        "online learning loop demo",
        "=" * 25,
        f"seed={seed} batches={num_batches} commit_every={config.commit_every}",
        "",
    ]
    try:
        world = build_world(
            workdir / "main", seed, plan=_mixed_plan(config), config=config
        )
        world.loop.run(num_batches)
        loop = world.loop

        applied = sum(1 for b in loop.batch_outcomes if b.status == "applied")
        quarantined = [
            b for b in loop.batch_outcomes if b.status == "quarantined"
        ]
        lines.append(
            f"stream: {len(loop.batch_outcomes)} batches "
            f"({applied} applied, {len(quarantined)} quarantined), "
            f"{len(world.stream.introduced_users)} newcomer users, "
            f"{len(world.stream.introduced_items)} new items"
        )
        for b in quarantined:
            lines.append(f"  quarantined {b.trace()}")

        lines.append("")
        lines.append("promotion cycles:")
        for c in loop.cycles:
            lines.append(f"  {c.trace()}")

        lines.append("")
        lines.append("registry history:")
        for record in world.service.registry.history:
            lines.append(f"  {record.describe()}")

        fresh = freshness_report(world)
        lines.append("")
        lines.append(
            f"freshness (top-{fresh['k']} recovery of applied interactions, "
            f"{fresh['newcomer_users']} newcomers): "
            f"online={fresh['hit_rate_online']:.3f} "
            f"frozen@gen{fresh['frozen_generation']}="
            f"{fresh['hit_rate_frozen']:.3f} "
            f"uplift={fresh['freshness_uplift']:+.3f}"
        )
        lines.append(
            f"new-item exposure: online="
            f"{fresh['new_item_exposure_online']:.3f} "
            f"frozen={fresh['new_item_exposure_frozen']:.3f}"
        )
        world.loop.close()

        # Crash episode: a commit dies between shard writes and the
        # manifest rename; reopening recovers the previous generation.
        crash_plan = FaultPlan(
            [Fault(step=2 * config.commit_every - 1, kind="commit_crash")]
        )
        crash_world = build_world(
            workdir / "crash", seed, plan=crash_plan, config=config
        )
        lines.append("")
        lines.append("crash episode (commit_crash at the second cycle):")
        try:
            crash_world.loop.run(num_batches)
            lines.append("  BUG: planned crash never fired")
        except InjectedCrash as exc:
            crash_world.loop.close()
            committed = dict(crash_world.loop.committed)
            store = MmapShardStore.open(crash_world.store_dir, mode="serve")
            recovered = store.generation
            blob = np.ascontiguousarray(
                store.table(ENTITY_TABLE).to_array(), dtype="<f4"
            ).tobytes()
            store.close()
            bitwise = blob == committed.get(recovered)
            lines.append(f"  {type(exc).__name__}: {exc}")
            lines.append(
                f"  recovered generation {recovered} "
                f"(committed: {sorted(committed)}), "
                f"bitwise match: {bitwise}"
            )
    finally:
        if tmp is not None:
            tmp.cleanup()
    return "\n".join(lines)


def run_smoke(seeds: tuple[int, ...] = (0, 1, 2, 3, 4)) -> str:
    """The CI entry point: churn matrix + determinism + freshness."""
    with tempfile.TemporaryDirectory(prefix="repro-online-smoke-") as tmp:
        return harness_smoke(tmp, seeds=seeds)
