"""Churn matrix: seeded stream x fault replays with bitwise assertions.

The online analogue of the store's crash matrix
(:mod:`repro.store.harness`): for every online fault kind and every
seed, build a full world — stream, shadow trainer on a
:class:`~repro.online.trainer.ManifestCrashIO`-backed store, serving
stack — replay the stream under a deterministic fault plan, and assert
the loop's safety contract:

* **bitwise old-or-new** — the served (or, after a crash, recovered)
  entity table is byte-for-byte equal to exactly one *committed*
  generation, never a hybrid;
* **bounded quarantine** — every poisoned batch is quarantined with a
  typed :class:`~repro.core.exceptions.OnlineUpdateError` (counted,
  never silently dropped), and only up to the consecutive limit;
* **typed outcomes throughout** — every rejected promotion carries a
  structured :class:`~repro.serving.registry.PromotionRecord` rejection,
  every rollback a structured cause, and every watch response one of
  the four serve statuses;
* **determinism** — a fault-free replay run twice produces
  byte-identical traces.

:func:`freshness_report` measures what the loop buys: hit-rate against
the stream's hidden ground truth on *newly introduced* users, served
online vs a baseline frozen at the bootstrap generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.clock import ManualClock
from repro.core.dataset import Dataset
from repro.core.interactions import InteractionMatrix
from repro.runtime.faults import (
    ONLINE_FAULT_KINDS,
    Fault,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
)
from repro.serving.service import RecommenderService
from repro.store.mmap import MmapShardStore
from repro.store.serving import StoredEmbeddingRecommender
from repro.online.loop import OnlineLoop, make_candidate
from repro.online.stream import InteractionStream, StreamConfig
from repro.online.trainer import ENTITY_TABLE, ManifestCrashIO, ShadowTrainer

__all__ = [
    "ChurnConfig",
    "ChurnCell",
    "World",
    "build_world",
    "default_plan_for",
    "run_churn_cell",
    "run_churn_matrix",
    "freshness_report",
    "run_smoke",
    "SERVE_STATUSES",
]

SERVE_STATUSES = ("ok", "degraded", "shed", "rejected")


@dataclass(frozen=True)
class ChurnConfig:
    """One churn-matrix scenario (sized for seconds-fast CI cells)."""

    num_batches: int = 60
    commit_every: int = 8
    quarantine_limit: int = 2
    watch_requests: int = 6
    model_dim: int = 16
    rows_per_shard: int = 32
    k_candidates: int = 64
    stream: StreamConfig = field(default_factory=StreamConfig)


@dataclass
class World:
    """Everything one replay owns; ``loop.close()`` releases the stores."""

    seed: int
    clock: ManualClock
    stream: InteractionStream
    trainer: ShadowTrainer
    dataset: Dataset
    service: RecommenderService
    loop: OnlineLoop
    injector: FaultInjector | None
    store_dir: Path
    bootstrap_generation: int


def build_world(
    workdir: str | Path,
    seed: int,
    plan: FaultPlan | None = None,
    config: ChurnConfig | None = None,
    telemetry=None,
    stream_factory=None,
) -> World:
    """Build a complete online world rooted at ``workdir``.

    ``stream_factory(config, clock, seed)`` overrides how the
    interaction stream is built — the hook the traffic simulator uses to
    drive the loop from persona streams
    (:func:`repro.traffic.stream.persona_stream_factory`) instead of the
    default :class:`InteractionStream`.
    """
    config = config if config is not None else ChurnConfig()
    c = config.stream
    workdir = Path(workdir)
    clock = ManualClock()
    stream = (
        stream_factory(c, clock, seed)
        if stream_factory is not None
        else InteractionStream(c, clock=clock, seed=seed)
    )
    store_dir = workdir / "store"
    trainer, generation = ShadowTrainer.bootstrap(
        store_dir, c.num_users, c.num_items, dim=config.model_dim,
        seed=seed, rows_per_shard=config.rows_per_shard,
        io=ManifestCrashIO(),
    )
    users, items = stream.warm_interactions()
    dataset = Dataset(
        name=f"online-world-s{seed}",
        interactions=InteractionMatrix(users, items, c.num_users, c.num_items),
    )
    keep: list[MmapShardStore] = []
    primary = make_candidate(
        store_dir, dataset, c.num_users, c.num_items, generation,
        index_seed=seed, k_candidates=config.k_candidates, keep=keep,
    )
    injector = (
        FaultInjector(plan, sleep=clock.advance) if plan is not None else None
    )
    service = RecommenderService(
        dataset,
        primary=(f"gen{generation}", primary),
        clock=clock,
        telemetry=telemetry,
    )
    loop = OnlineLoop(
        stream, trainer, service,
        injector=injector,
        commit_every=config.commit_every,
        quarantine_limit=config.quarantine_limit,
        watch_requests=config.watch_requests,
        index_seed=seed,
        k_candidates=config.k_candidates,
    )
    loop._serve_stores.extend(keep)
    return World(
        seed=seed, clock=clock, stream=stream, trainer=trainer,
        dataset=dataset, service=service, loop=loop, injector=injector,
        store_dir=store_dir, bootstrap_generation=generation,
    )


def default_plan_for(kind: str, config: ChurnConfig | None = None) -> FaultPlan:
    """The deterministic per-kind plan the matrix replays.

    Batch-shaped kinds land mid-stream; promotion-shaped kinds land on
    the second commit cycle's batch step (``2 * commit_every - 1``), so
    one healthy post-bootstrap promotion exists before the fault — which
    is what makes the rollback/recovery targets non-trivial.
    """
    config = config if config is not None else ChurnConfig()
    if kind == "none":
        return FaultPlan()
    mid = config.num_batches // 2
    cycle2 = 2 * config.commit_every - 1
    if kind == "poison_batch":
        # Two consecutive poisoned batches: within the quarantine limit,
        # so the loop must absorb both and keep going.
        return FaultPlan(
            [Fault(step=mid, kind=kind), Fault(step=mid + 1, kind=kind)]
        )
    if kind == "trainer_stall":
        return FaultPlan([Fault(step=mid, kind=kind, seconds=0.05)])
    if kind in ("commit_crash", "sync_fail", "canary_regress", "late_regress"):
        return FaultPlan([Fault(step=cycle2, kind=kind)])
    raise ValueError(f"unknown online fault kind {kind!r}")


@dataclass(frozen=True)
class ChurnCell:
    """Verdict of one (seed, kind) replay."""

    seed: int
    kind: str
    ok: bool
    crashed: bool
    served_generation: int | None
    committed_generations: tuple[int, ...]
    batches: int
    quarantined: int
    promoted: int
    rejected: int
    rolled_back: int
    problems: tuple[str, ...] = ()

    def describe(self) -> str:
        verdict = "ok" if self.ok else "FAIL"
        out = (
            f"seed={self.seed} kind={self.kind:<14s} {verdict} "
            f"gen={self.served_generation} "
            f"committed={list(self.committed_generations)} "
            f"batches={self.batches} q={self.quarantined} "
            f"promoted={self.promoted} rejected={self.rejected} "
            f"rolled_back={self.rolled_back}"
            + (" CRASHED+RECOVERED" if self.crashed else "")
        )
        if self.problems:
            out += " :: " + "; ".join(self.problems)
        return out


def _served_bytes(model) -> bytes:
    """The exact bytes the live model serves (unwraps chaos/two-stage)."""
    base = getattr(model, "inner", model)  # ChaosCandidate
    base = getattr(base, "base", base)  # TwoStageRecommender
    table = base.store.table(ENTITY_TABLE)
    return np.ascontiguousarray(table.to_array(), dtype="<f4").tobytes()


def run_churn_cell(
    workdir: str | Path,
    seed: int,
    kind: str,
    config: ChurnConfig | None = None,
    stream_factory=None,
) -> ChurnCell:
    """Replay one (seed, kind) cell and check every contract."""
    config = config if config is not None else ChurnConfig()
    plan = default_plan_for(kind, config)
    world = build_world(
        workdir, seed, plan=plan, config=config, stream_factory=stream_factory
    )
    loop = world.loop
    problems: list[str] = []
    crashed = False
    try:
        loop.run(config.num_batches)
    except InjectedCrash:
        crashed = True

    committed = loop.committed
    served_generation: int | None = None
    if crashed:
        # Simulated process death: discard every in-memory object and
        # re-open from disk, exactly like the durability harness.
        loop.close()
        store = MmapShardStore.open(world.store_dir, mode="serve")
        served_generation = store.generation
        recovered = np.ascontiguousarray(
            store.table(ENTITY_TABLE).to_array(), dtype="<f4"
        ).tobytes()
        store.close()
        if served_generation not in committed:
            problems.append(
                f"recovered generation {served_generation} was never committed"
            )
        elif recovered != committed[served_generation]:
            problems.append(
                f"recovered bytes differ from committed generation "
                f"{served_generation} (hybrid state)"
            )
        if served_generation != max(committed):
            problems.append(
                f"crash recovery landed on {served_generation}, expected the "
                f"last committed generation {max(committed)}"
            )
        if kind != "commit_crash":
            problems.append(f"kind {kind!r} crashed unexpectedly")
    else:
        served_generation = loop.live_generation()
        served = _served_bytes(world.service.registry.live)
        if served_generation not in committed:
            problems.append(
                f"live generation {served_generation} was never committed"
            )
        elif served != committed[served_generation]:
            problems.append(
                f"served bytes differ from committed generation "
                f"{served_generation} (hybrid state)"
            )
        if kind == "commit_crash":
            problems.append("commit_crash cell did not crash")

    quarantined = [b for b in loop.batch_outcomes if b.status == "quarantined"]
    outcomes = {c.outcome for c in loop.cycles}
    injected_kinds = [
        f.kind for f in (world.injector.injected if world.injector else [])
    ]

    for b in quarantined:
        if "OnlineUpdateError" not in b.error:
            problems.append(
                f"quarantine at step {b.step} lacks a typed error: {b.error}"
            )
    for trace in loop.watch_traces:
        status = trace.split("|")[2]
        if status not in SERVE_STATUSES:
            problems.append(f"untyped watch response status {status!r}")

    if kind == "none":
        if quarantined:
            problems.append("fault-free run quarantined batches")
        if outcomes - {"promoted", "skipped"}:
            problems.append(f"fault-free run saw outcomes {sorted(outcomes)}")
        if served_generation != max(committed):
            problems.append("fault-free run is not serving the newest commit")
    elif kind == "poison_batch":
        if len(quarantined) != len(plan):
            problems.append(
                f"{len(plan)} poisoned batches planned, "
                f"{len(quarantined)} quarantined"
            )
        if len(loop.batch_outcomes) != config.num_batches:
            problems.append("loop halted despite in-limit quarantines")
    elif kind == "trainer_stall":
        if "trainer_stall" not in injected_kinds:
            problems.append("planned stall never fired")
        if outcomes - {"promoted", "skipped"}:
            problems.append("stall affected promotion outcomes")
    elif kind == "sync_fail":
        rejected = [c for c in loop.cycles if c.outcome == "rejected"]
        if not any(c.detail.startswith("index_sync:") for c in rejected):
            problems.append("no cycle rejected with an index_sync cause")
        records = [
            r for r in world.service.registry.history
            if r.rejection and r.rejection.startswith("index_sync:")
        ]
        if not records:
            problems.append("registry history lacks the index_sync rejection")
        elif any(served_generation == r.generation for r in records):
            problems.append("the sync-failed generation is being served")
    elif kind == "canary_regress":
        rejected = [c for c in loop.cycles if c.outcome == "rejected"]
        if not any(c.detail == "canary" for c in rejected):
            problems.append("no cycle rejected by the canary probe")
        records = [
            r for r in world.service.registry.history if r.rejection == "canary"
        ]
        if not records:
            problems.append("registry history lacks the canary rejection")
        elif any(served_generation == r.generation for r in records):
            problems.append("the canary-failed generation is being served")
    elif kind == "late_regress":
        rolled = [c for c in loop.cycles if c.outcome == "rolled_back"]
        if not rolled:
            problems.append("post-promotion regression was not rolled back")
        records = [
            r for r in world.service.registry.history if r.kind == "rollback"
        ]
        if not any(
            r.rejection == "rollback:post_promotion_regression" for r in records
        ):
            problems.append("rollback record lacks the structured cause")
        if rolled and served_generation is not None and any(
            c.generation == served_generation for c in rolled
        ):
            problems.append("the rolled-back generation is still being served")

    if not crashed:
        loop.close()
    cell = ChurnCell(
        seed=seed,
        kind=kind,
        ok=not problems,
        crashed=crashed,
        served_generation=served_generation,
        committed_generations=tuple(sorted(committed)),
        batches=len(loop.batch_outcomes),
        quarantined=len(quarantined),
        promoted=sum(1 for c in loop.cycles if c.outcome == "promoted"),
        rejected=sum(1 for c in loop.cycles if c.outcome == "rejected"),
        rolled_back=sum(1 for c in loop.cycles if c.outcome == "rolled_back"),
        problems=tuple(problems),
    )
    return cell


def run_churn_matrix(
    workdir: str | Path,
    seed: int,
    kinds: tuple[str, ...] = ("none",) + ONLINE_FAULT_KINDS,
    config: ChurnConfig | None = None,
    stream_factory=None,
) -> list[ChurnCell]:
    """Every fault kind once for ``seed``, each cell in its own directory."""
    workdir = Path(workdir)
    return [
        run_churn_cell(workdir / kind, seed, kind, config, stream_factory)
        for kind in kinds
    ]


def _replay_trace(world: World) -> list[str]:
    """The full deterministic trace of a completed replay."""
    loop = world.loop
    return (
        [b.trace() for b in loop.batch_outcomes]
        + [c.trace() for c in loop.cycles]
        + list(loop.watch_traces)
    )


def _unwrap_base(model) -> StoredEmbeddingRecommender:
    base = getattr(model, "inner", model)
    return getattr(base, "base", base)


def freshness_report(world: World, k: int = 10) -> dict:
    """Hit-rate on newly introduced users: live model vs frozen baseline.

    For every newcomer whose introduction predates the last promoted
    cycle, rank the visible catalog with (a) the live store-backed model
    and (b) a baseline pinned at the bootstrap generation, and measure
    how much of the newcomer's *applied* interaction history lands in
    the top-``k`` — operationally: does what we serve a brand-new user
    reflect what they just did?  The frozen baseline cannot (their row
    is still at its random init), so the gap is the freshness the
    online loop buys.  Also reports how many newly introduced *items*
    each model surfaces in some warm user's top-``k`` ("exposure").
    """
    stream = world.stream
    loop = world.loop
    promoted_steps = [c.step for c in loop.cycles if c.outcome == "promoted"]
    cutoff = max(promoted_steps) if promoted_steps else -1
    newcomers = [
        u for (s, u) in stream.introduced_users
        if s <= cutoff and loop.applied_interactions.get(u)
    ]
    fresh_items = [i for (s, i) in stream.introduced_items if s <= cutoff]
    visible = stream.seen_items

    live = _unwrap_base(world.service.registry.live)
    frozen_store = MmapShardStore.open(
        world.store_dir, mode="serve", generation=world.bootstrap_generation
    )
    frozen = StoredEmbeddingRecommender(
        frozen_store,
        user_entities=live.user_entities,
        item_entities=live.item_entities,
        relation_id=None,
        entity_table=ENTITY_TABLE,
    ).fit(world.dataset)

    def topk(model, user: int) -> np.ndarray:
        scores = np.asarray(model.score_all(int(user)))[:visible]
        kk = min(k, visible)
        top = np.argpartition(-scores, kk - 1)[:kk]
        return top[np.argsort(-scores[top], kind="stable")]

    def hit_rate(model) -> float:
        if not newcomers:
            return 0.0
        total = 0.0
        for u in newcomers:
            truth = loop.applied_interactions[u]
            got = len(truth & set(topk(model, u).tolist()))
            total += got / min(len(truth), k)
        return total / len(newcomers)

    def item_exposure(model) -> float:
        if not fresh_items:
            return 0.0
        surfaced: set[int] = set()
        for u in range(min(16, stream.config.warm_users)):
            surfaced.update(topk(model, u).tolist())
        return len(set(fresh_items) & surfaced) / len(fresh_items)

    report = {
        "k": int(k),
        "newcomer_users": len(newcomers),
        "new_items": len(fresh_items),
        "live_generation": loop.live_generation(),
        "frozen_generation": world.bootstrap_generation,
        "hit_rate_online": hit_rate(live),
        "hit_rate_frozen": hit_rate(frozen),
        "new_item_exposure_online": item_exposure(live),
        "new_item_exposure_frozen": item_exposure(frozen),
    }
    report["freshness_uplift"] = (
        report["hit_rate_online"] - report["hit_rate_frozen"]
    )
    frozen_store.close()
    return report


def run_smoke(
    workdir: str | Path,
    seeds: tuple[int, ...] = (0, 1, 2),
    config: ChurnConfig | None = None,
) -> str:
    """Full churn matrix + determinism + freshness; raises on violation."""
    config = config if config is not None else ChurnConfig()
    workdir = Path(workdir)
    lines: list[str] = []
    for seed in seeds:
        cells = run_churn_matrix(workdir / f"seed{seed}", seed, config=config)
        for cell in cells:
            lines.append(cell.describe())
            if not cell.ok:
                raise AssertionError(
                    "churn cell violation: " + cell.describe()
                )

        # Determinism: a fault-free replay run twice is byte-identical.
        traces = []
        for run in ("a", "b"):
            world = build_world(
                workdir / f"seed{seed}" / f"determinism-{run}", seed,
                plan=FaultPlan(), config=config,
            )
            world.loop.run(config.num_batches)
            traces.append(_replay_trace(world))
            if run == "b":
                fresh = freshness_report(world)
                if fresh["hit_rate_online"] + 1e-12 < fresh["hit_rate_frozen"]:
                    raise AssertionError(
                        f"seed {seed}: online freshness "
                        f"{fresh['hit_rate_online']:.3f} fell below the "
                        f"frozen baseline {fresh['hit_rate_frozen']:.3f}"
                    )
                lines.append(
                    f"seed={seed} freshness: newcomers="
                    f"{fresh['newcomer_users']} online="
                    f"{fresh['hit_rate_online']:.3f} frozen="
                    f"{fresh['hit_rate_frozen']:.3f} uplift="
                    f"{fresh['freshness_uplift']:+.3f}"
                )
            world.loop.close()
        if traces[0] != traces[1]:
            raise AssertionError(
                f"seed {seed}: fault-free replay is not deterministic"
            )
        lines.append(f"seed={seed} determinism: {len(traces[0])} trace lines identical")
    lines.append(
        f"churn matrix clean: {len(seeds)} seed(s) x "
        f"{1 + len(ONLINE_FAULT_KINDS)} kinds, bitwise old-or-new held"
    )
    return "\n".join(lines)
