"""The continuous-deployment loop: stream -> shadow train -> promote.

:class:`OnlineLoop` wires the whole online path together:

1. consume one session batch from an
   :class:`~repro.online.stream.InteractionStream` (fault hooks may
   stall the trainer or poison the batch);
2. apply it to the shadow copy via
   :class:`~repro.online.trainer.ShadowTrainer` — a poisoned batch is
   **quarantined**: the typed
   :class:`~repro.core.exceptions.OnlineUpdateError` is recorded, the
   model is untouched, and the loop moves on.  The skip is *bounded*:
   more than ``quarantine_limit`` consecutive quarantines raises
   :class:`~repro.core.exceptions.OnlineError`, so a dead upstream feed
   halts the loop instead of silently serving ever-staler models;
3. every ``commit_every`` applied batches, run a **promotion cycle**:
   commit the dirty rows as a new store generation (the manifest rename
   is the crash-safe commit point), open a *pinned* serve-mode view of
   that generation, wrap it in a fresh two-stage candidate, and push it
   through :meth:`RecommenderService.promote` — which syncs the ANN
   index and runs the canary probe before the atomic swap;
4. after a successful swap, serve a short seeded **post-promotion
   watch**: a majority of non-ok responses rolls the live model back
   through :meth:`RecommenderService.rollback` with a structured cause.

Every served model holds its own serve-mode store pinned at its own
generation, so the live model and the rollback target never share a
manifest — the served bytes are always exactly one committed
generation, bitwise (the churn harness asserts this).

Faults planned for a cycle's batch step are executed here:
``commit_crash`` arms the trainer IO's manifest-crash hook (see
:class:`~repro.online.trainer.ManifestCrashIO`); ``sync_fail`` /
``canary_regress`` / ``late_regress`` wrap the candidate in a
:class:`ChaosCandidate` before promotion.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.exceptions import (
    ConfigError,
    IndexStaleError,
    OnlineError,
    OnlineUpdateError,
    PromotionError,
    StoreError,
)
from repro.core.rng import ensure_rng
from repro.retrieval.ivf import IvfIndex
from repro.retrieval.two_stage import TwoStageRecommender
from repro.runtime.faults import FaultInjector
from repro.serving.service import RecommenderService, ServeRequest
from repro.store.mmap import MmapShardStore
from repro.store.serving import StoredEmbeddingRecommender
from repro.online.stream import InteractionStream
from repro.online.trainer import ENTITY_TABLE, ShadowTrainer

__all__ = [
    "BatchOutcome",
    "PromotionCycle",
    "ChaosCandidate",
    "make_candidate",
    "OnlineLoop",
]


@dataclass(frozen=True)
class BatchOutcome:
    """Typed outcome of one interaction batch: applied or quarantined."""

    step: int
    status: str  # "applied" | "quarantined"
    rows_touched: int = 0
    error: str = ""

    def trace(self) -> str:
        return f"{self.step}|{self.status}|rows={self.rows_touched}|err={self.error}"


@dataclass(frozen=True)
class PromotionCycle:
    """Typed outcome of one commit+promote cycle.

    ``outcome`` is one of ``"promoted"`` / ``"rejected"`` /
    ``"rolled_back"`` / ``"skipped"``; ``detail`` carries the structured
    cause (the :class:`PromotionRecord` rejection for rejections, the
    watch verdict for rollbacks).
    """

    step: int
    generation: int | None
    outcome: str
    detail: str = ""
    latency: float = 0.0

    def trace(self) -> str:
        return (
            f"{self.step}|gen={self.generation}|{self.outcome}|"
            f"lat={self.latency:.6f}|{self.detail}"
        )


def make_candidate(
    store_dir: str | Path,
    dataset,
    num_users: int,
    num_items: int,
    generation: int,
    index_seed: int = 0,
    k_candidates: int = 64,
    keep: list | None = None,
) -> TwoStageRecommender:
    """A fresh two-stage candidate pinned at one store ``generation``.

    Opens its *own* serve-mode view (verified against the pinned
    manifest), so the candidate never shares mapped shards with the
    current live model — promotion and rollback swap whole models, and
    a served score can only ever come from one committed generation.
    ``keep`` collects the opened store for caller-owned cleanup.
    """
    store = MmapShardStore.open(store_dir, mode="serve", generation=int(generation))
    if keep is not None:
        keep.append(store)
    base = StoredEmbeddingRecommender(
        store,
        user_entities=np.arange(num_users, dtype=np.int64),
        item_entities=num_users + np.arange(num_items, dtype=np.int64),
        relation_id=None,
        entity_table=ENTITY_TABLE,
    )
    two = TwoStageRecommender(
        base, IvfIndex(seed=index_seed), k_candidates=k_candidates
    )
    return two.fit(dataset)


class ChaosCandidate:
    """Fault-plan wrapper for a promotion candidate.

    Implements the ``sync_fail`` / ``canary_regress`` / ``late_regress``
    online fault kinds by intercepting exactly the calls the registry
    and service make; everything else forwards to the wrapped
    candidate.  ``late_regress`` stays healthy through the canary probe
    and regresses (NaN scores) only after :meth:`arm` — which the loop
    calls right after the swap, modeling a candidate that breaks under
    real traffic.
    """

    supports_candidates = True

    def __init__(
        self,
        inner: TwoStageRecommender,
        fail_sync: bool = False,
        regress: str = "never",  # "never" | "canary" | "late"
    ) -> None:
        if regress not in ("never", "canary", "late"):
            raise ConfigError(f"unknown regress mode {regress!r}")
        self.inner = inner
        self.fail_sync = bool(fail_sync)
        self.regress = regress
        self._armed = regress == "canary"

    def arm(self) -> None:
        self._armed = True

    def __getattr__(self, name):
        return getattr(self.inner, name)

    @property
    def generation(self) -> int | None:
        return self.inner.generation

    def sync_index(self, force: bool = False) -> int | None:
        if self.fail_sync:
            raise IndexStaleError(
                "injected index rebuild failure (sync_fail fault)"
            )
        return self.inner.sync_index(force)

    def _poison(self, scores: np.ndarray) -> np.ndarray:
        scores = np.asarray(scores, dtype=np.float64).copy()
        scores[...] = np.nan
        return scores

    def score_candidates(self, user_id: int, k: int | None = None):
        ids, scores = self.inner.score_candidates(user_id, k)
        if self._armed:
            scores = self._poison(scores)
        return ids, scores

    def score_all(self, user_id: int) -> np.ndarray:
        scores = self.inner.score_all(user_id)
        return self._poison(scores) if self._armed else np.asarray(scores)


class OnlineLoop:
    """Drives the stream -> trainer -> promote pipeline (see module doc)."""

    def __init__(
        self,
        stream: InteractionStream,
        trainer: ShadowTrainer,
        service: RecommenderService,
        injector: FaultInjector | None = None,
        commit_every: int = 8,
        quarantine_limit: int = 2,
        watch_requests: int = 6,
        watch_k: int = 10,
        index_seed: int = 0,
        k_candidates: int = 64,
    ) -> None:
        if commit_every < 1:
            raise ConfigError("commit_every must be >= 1")
        if quarantine_limit < 0:
            raise ConfigError("quarantine_limit must be >= 0")
        if watch_requests < 1:
            raise ConfigError("watch_requests must be >= 1")
        self.stream = stream
        self.trainer = trainer
        self.service = service
        self.injector = injector
        self.commit_every = int(commit_every)
        self.quarantine_limit = int(quarantine_limit)
        self.watch_requests = int(watch_requests)
        self.watch_k = int(watch_k)
        self.index_seed = int(index_seed)
        self.k_candidates = int(k_candidates)
        self.clock = service.clock
        self.dataset = service.dataset
        self.telemetry = service.telemetry

        #: Bitwise ``<f4`` table bytes of every committed generation —
        #: the reference set the churn harness compares served models
        #: against.  Seeded with the bootstrap generation.
        self.committed: dict[int, bytes] = {
            trainer.store.generation: trainer.table_bytes()
        }
        self.batch_outcomes: list[BatchOutcome] = []
        self.cycles: list[PromotionCycle] = []
        #: Per-user item sets the trainer actually learned from (poisoned
        #: batches never land here) — the freshness metric's truth.
        self.applied_interactions: dict[int, set[int]] = {}
        self.watch_traces: list[str] = []
        #: Real wall-clock promote latencies (perf_counter seconds) for
        #: the benchmark; deliberately outside the deterministic trace.
        self.promote_wall_times: list[float] = []
        self._watch_rng = ensure_rng(stream.seed + 2)
        self._serve_stores: list[MmapShardStore] = []
        self._applied_since_commit = 0
        self._consecutive_quarantined = 0

    # ------------------------------------------------------------------ #
    def run(self, num_batches: int) -> None:
        """Consume ``num_batches`` sessions, promoting on cadence.

        An :class:`~repro.runtime.faults.InjectedCrash` (the
        ``commit_crash`` fault) propagates — it is simulated process
        death, and only the harness may catch it.
        """
        for __ in range(int(num_batches)):
            batch = self.stream.next_batch()
            self._process_batch(batch)
            if self._applied_since_commit >= self.commit_every:
                self._applied_since_commit = 0
                self.cycles.append(self._promote_cycle(batch.step))

    def _process_batch(self, batch) -> None:
        tel = self.telemetry
        users, items, weights = batch.users, batch.items, batch.weights
        if self.injector is not None:
            self.injector.on_online_batch(batch.step)
            users, items, weights = self.injector.corrupt_interactions(
                batch.step, users, items, weights
            )
        try:
            rows = self.trainer.apply(users, items, weights)
        except OnlineUpdateError as exc:
            self._consecutive_quarantined += 1
            self.batch_outcomes.append(
                BatchOutcome(
                    step=batch.step, status="quarantined",
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
            if tel.enabled:
                tel.counter("online.batches.quarantined").inc()
            if self._consecutive_quarantined > self.quarantine_limit:
                raise OnlineError(
                    f"{self._consecutive_quarantined} consecutive batches "
                    f"quarantined (limit {self.quarantine_limit}); the "
                    "upstream feed looks dead — halting the online loop"
                ) from exc
            return
        self._consecutive_quarantined = 0
        self._applied_since_commit += 1
        for user, item in zip(users.tolist(), items.tolist()):
            self.applied_interactions.setdefault(int(user), set()).add(int(item))
        self.batch_outcomes.append(
            BatchOutcome(
                step=batch.step, status="applied", rows_touched=int(rows.size)
            )
        )
        if tel.enabled:
            tel.counter("online.batches.applied").inc()
            tel.counter("online.rows.touched").inc(int(rows.size))

    # ------------------------------------------------------------------ #
    def _promote_cycle(self, step: int) -> PromotionCycle:
        tel = self.telemetry
        kinds = (
            {f.kind for f in self.injector.promotion_faults(step)}
            if self.injector is not None
            else set()
        )
        t0 = self.clock()
        wall0 = time.perf_counter()
        span = (
            tel.begin("online/promote_cycle", step=step) if tel.enabled else None
        )

        def finish(cycle: PromotionCycle) -> PromotionCycle:
            self.promote_wall_times.append(time.perf_counter() - wall0)
            if span is not None:
                tel.end(
                    span, outcome=cycle.outcome,
                    reason=cycle.detail or None,
                    generation=cycle.generation,
                )
            return cycle

        if "commit_crash" in kinds:
            arm = getattr(self.trainer.store.io, "arm_manifest_crash", None)
            if not callable(arm):
                raise ConfigError(
                    "commit_crash fault planned but the trainer store's IO "
                    "cannot arm a manifest crash; build the trainer on "
                    "repro.online.trainer.ManifestCrashIO"
                )
            arm()
        try:
            generation = self.trainer.commit(tag=f"online-step{step:05d}")
        except StoreError as exc:
            # Aborted commit (e.g. fsync failure): typed and retryable —
            # the dirty masks stay set, the old generation keeps serving.
            return finish(
                PromotionCycle(
                    step=step, generation=None, outcome="rejected",
                    detail=f"commit_aborted:{type(exc).__name__}",
                    latency=self.clock() - t0,
                )
            )
        if generation in self.committed:
            return finish(
                PromotionCycle(
                    step=step, generation=generation, outcome="skipped",
                    detail="no dirty rows", latency=self.clock() - t0,
                )
            )
        self.committed[generation] = self.trainer.table_bytes()

        candidate = make_candidate(
            self.trainer.store.directory, self.dataset,
            self.trainer.num_users, self.trainer.num_items, generation,
            index_seed=self.index_seed, k_candidates=self.k_candidates,
            keep=self._serve_stores,
        )
        chaos: ChaosCandidate | None = None
        if kinds & {"sync_fail", "canary_regress", "late_regress"}:
            chaos = ChaosCandidate(
                candidate,
                fail_sync="sync_fail" in kinds,
                regress=(
                    "canary" if "canary_regress" in kinds
                    else "late" if "late_regress" in kinds
                    else "never"
                ),
            )
        name = f"gen{generation}"
        try:
            self.service.promote(name, chaos if chaos is not None else candidate)
        except PromotionError:
            record = self.service.registry.history[-1]
            return finish(
                PromotionCycle(
                    step=step, generation=generation, outcome="rejected",
                    detail=record.rejection or record.reason,
                    latency=self.clock() - t0,
                )
            )
        if chaos is not None and chaos.regress == "late":
            chaos.arm()
        not_ok = self._watch()
        if not_ok > self.watch_requests // 2:
            restored = self.service.rollback(cause="post_promotion_regression")
            return finish(
                PromotionCycle(
                    step=step, generation=generation, outcome="rolled_back",
                    detail=(
                        f"watch: {not_ok}/{self.watch_requests} non-ok "
                        f"responses; restored {restored!r}"
                    ),
                    latency=self.clock() - t0,
                )
            )
        return finish(
            PromotionCycle(
                step=step, generation=generation, outcome="promoted",
                latency=self.clock() - t0,
            )
        )

    def _watch(self) -> int:
        """Seeded post-promotion probe traffic; returns non-ok count.

        Every response is a typed outcome (``serve`` never raises); the
        traces are recorded for the determinism checks.
        """
        not_ok = 0
        for __ in range(self.watch_requests):
            user = int(self._watch_rng.integers(self.stream.seen_users))
            response = self.service.serve(
                ServeRequest(user_id=user, k=self.watch_k, exclude_seen=False)
            )
            self.watch_traces.append(response.trace())
            if response.status != "ok":
                not_ok += 1
        return not_ok

    # ------------------------------------------------------------------ #
    def live_generation(self) -> int | None:
        """The store generation of the currently live model."""
        model = self.service.registry.live
        generation = getattr(model, "generation", None)
        return int(generation) if generation is not None else None

    def close(self) -> None:
        self.trainer.store.close()
        for store in self._serve_stores:
            store.close()
