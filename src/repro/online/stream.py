"""Seeded sessionized interaction stream with cold-start churn.

The online loop (:mod:`repro.online.loop`) consumes batches from an
:class:`InteractionStream`: each batch is one user *session* — a handful
of item interactions drawn from that user's hidden ground-truth
preference vector.  The stream models the two churn events a live
recommender must absorb:

* **newcomer users** — with probability ``newcomer_rate`` a session
  belongs to a user the system has never seen.  Capacity for every
  future newcomer is pre-allocated in the embedding store (fixed table
  shapes), but the newcomer's row sits at its seeded random init until
  the shadow trainer learns from their first session — which is exactly
  what the freshness metric measures against a frozen baseline;
* **new items** — with probability ``new_item_rate`` a session
  introduces a catalog item no one has interacted with yet.  The
  introducing session always includes it, so the item is learnable from
  its first appearance.

Timestamps come from a shared :class:`~repro.core.clock.ManualClock`
(the stream advances it by ``arrival_gap`` per batch), so replays are
bitwise-deterministic and "hours" of traffic take no wall time.  The
stream's RNG is consumed only by :meth:`next_batch`, never by the loop
or trainer — a quarantined batch therefore does not perturb the arrival
sequence of later batches, which is what lets the fault matrix compare
faulted and clean replays step-for-step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.clock import ManualClock
from repro.core.exceptions import ConfigError
from repro.core.rng import ensure_rng

__all__ = ["StreamConfig", "InteractionBatch", "InteractionStream"]


@dataclass(frozen=True)
class StreamConfig:
    """Shape of the simulated interaction feed.

    ``num_users``/``num_items`` are *total capacity* including every
    future newcomer; ``warm_users``/``warm_items`` are visible at t=0.
    """

    num_users: int = 48
    num_items: int = 200
    warm_users: int = 32
    warm_items: int = 160
    dim: int = 8
    session_size: int = 4
    newcomer_rate: float = 0.2
    new_item_rate: float = 0.1
    arrival_gap: float = 0.01
    score_noise: float = 0.3

    def __post_init__(self) -> None:
        if self.num_users < 1 or self.num_items < 1:
            raise ConfigError("stream needs at least one user and one item")
        if not 0 < self.warm_users <= self.num_users:
            raise ConfigError("warm_users must lie in [1, num_users]")
        if not 0 < self.warm_items <= self.num_items:
            raise ConfigError("warm_items must lie in [1, num_items]")
        if self.session_size < 1:
            raise ConfigError("session_size must be >= 1")
        if not 0.0 <= self.newcomer_rate <= 1.0:
            raise ConfigError("newcomer_rate must lie in [0, 1]")
        if not 0.0 <= self.new_item_rate <= 1.0:
            raise ConfigError("new_item_rate must lie in [0, 1]")
        if self.arrival_gap < 0 or self.score_noise < 0:
            raise ConfigError("arrival_gap and score_noise must be >= 0")


@dataclass(frozen=True)
class InteractionBatch:
    """One arriving session: parallel (user, item, weight) triples."""

    step: int
    at: float
    users: np.ndarray
    items: np.ndarray
    weights: np.ndarray
    new_users: tuple[int, ...] = ()
    new_items: tuple[int, ...] = ()

    def trace(self) -> str:
        """Canonical one-line form; determinism tests compare these."""
        items = ",".join(str(i) for i in self.items.tolist())
        return (
            f"{self.step}|t={self.at:.6f}|u={int(self.users[0])}|[{items}]|"
            f"nu={','.join(map(str, self.new_users)) or '-'}|"
            f"ni={','.join(map(str, self.new_items)) or '-'}"
        )


class InteractionStream:
    """Seeded generator of sessionized batches on a shared manual clock."""

    def __init__(
        self,
        config: StreamConfig | None = None,
        clock: ManualClock | None = None,
        seed: int = 0,
    ) -> None:
        self.config = config if config is not None else StreamConfig()
        self.clock = clock if clock is not None else ManualClock()
        if not hasattr(self.clock, "advance"):
            raise ConfigError(
                "InteractionStream needs an advance-able clock "
                "(a ManualClock), got "
                f"{type(self.clock).__name__}"
            )
        self.seed = int(seed)
        self._rng = ensure_rng(seed)
        c = self.config
        # Hidden ground truth: the preferences sessions are sampled from
        # and the reference the freshness metric scores hit-rates against.
        self.user_latent = self._rng.standard_normal((c.num_users, c.dim))
        self.item_latent = self._rng.standard_normal((c.num_items, c.dim))
        self.seen_users = int(c.warm_users)
        self.seen_items = int(c.warm_items)
        self.step = 0
        #: (step, user_id) for every newcomer, in introduction order.
        self.introduced_users: list[tuple[int, int]] = []
        #: (step, item_id) for every new catalog item.
        self.introduced_items: list[tuple[int, int]] = []

    # ------------------------------------------------------------------ #
    def warm_interactions(self, per_user: int = 3) -> tuple[np.ndarray, np.ndarray]:
        """Seeded t=0 history over the warm population (dataset bootstrap).

        Drawn from a *derived* RNG so consuming it never perturbs the
        arrival stream.
        """
        c = self.config
        rng = ensure_rng(self.seed + 1)
        users = np.repeat(np.arange(c.warm_users), per_user)
        items = np.empty(users.size, dtype=np.int64)
        for row, user in enumerate(users):
            scores = self.user_latent[user] @ self.item_latent[: c.warm_items].T
            noisy = scores + rng.standard_normal(c.warm_items)
            items[row] = int(np.argmax(noisy))
        return users.astype(np.int64), items

    # ------------------------------------------------------------------ #
    # arrival hooks — subclasses (e.g. the persona-driven stream in
    # repro.traffic.stream) override these two to change *who arrives
    # when* without touching session composition or churn bookkeeping.
    # ------------------------------------------------------------------ #
    def _draw_user(self, step: int) -> tuple[int, tuple[int, ...]]:
        """``(user, new_users)`` for this batch.

        The base implementation consumes the stream RNG in exactly the
        historical order (one ``random()``, then ``integers`` only on the
        non-newcomer branch), so refactoring this out of
        :meth:`next_batch` changed no seeded replay.
        """
        c = self.config
        rng = self._rng
        if self.seen_users < c.num_users and rng.random() < c.newcomer_rate:
            user = self.seen_users
            self.seen_users += 1
            self.introduced_users.append((step, user))
            return user, (user,)
        return int(rng.integers(self.seen_users)), ()

    def _arrival_gap(self) -> float:
        """Clock advance after the current batch (to the next arrival)."""
        return self.config.arrival_gap

    # ------------------------------------------------------------------ #
    def next_batch(self) -> InteractionBatch:
        """The next session; advances the shared clock to the next arrival."""
        c = self.config
        rng = self._rng
        step = self.step
        self.step += 1

        user, new_users = self._draw_user(step)

        new_items: tuple[int, ...] = ()
        if self.seen_items < c.num_items and rng.random() < c.new_item_rate:
            fresh_item = self.seen_items
            self.seen_items += 1
            self.introduced_items.append((step, fresh_item))
            new_items = (fresh_item,)

        # Session items: top of the user's noisy true scores over the
        # currently visible catalog.
        visible = self.seen_items
        scores = self.user_latent[user] @ self.item_latent[:visible].T
        noisy = scores + c.score_noise * rng.standard_normal(visible)
        k = min(c.session_size, visible)
        top = np.argpartition(noisy, -k)[-k:]
        items = top[np.argsort(-noisy[top], kind="stable")].astype(np.int64)
        if new_items:
            # The introducing session interacts with the new item, so it
            # is learnable from its first appearance.
            items = items.copy()
            items[-1] = new_items[0]

        at = self.clock()
        self.clock.advance(self._arrival_gap())
        return InteractionBatch(
            step=step,
            at=at,
            users=np.full(items.size, user, dtype=np.int64),
            items=items,
            weights=np.ones(items.size, dtype=np.float64),
            new_users=new_users,
            new_items=new_items,
        )

    # ------------------------------------------------------------------ #
    def true_top_items(self, user_id: int, k: int) -> np.ndarray:
        """Ground-truth top-k for ``user_id`` over the visible catalog."""
        scores = self.user_latent[int(user_id)] @ self.item_latent[: self.seen_items].T
        k = min(int(k), self.seen_items)
        top = np.argpartition(scores, -k)[-k:]
        return top[np.argsort(-scores[top], kind="stable")].astype(np.int64)
