"""Shadow trainer: sparse online updates into a durable embedding store.

The :class:`ShadowTrainer` owns the *train-mode* side of the online
loop's shadow copy.  Users and items share one ``"entity"`` table (users
occupy rows ``[0, num_users)``, items ``[num_users, num_users +
num_items)`` — the same lifted layout CFKG-style models use), backed by
a :class:`~repro.store.mmap.MmapShardStore`:

* :meth:`apply` validates one interaction batch — a poisoned batch
  raises a typed :class:`~repro.core.exceptions.OnlineUpdateError`
  *before* any array is touched, so quarantine never leaves a
  half-applied update — then takes one BPR step whose row-sparse
  gradient is coalesced with :func:`repro.autograd.sparse.coalesce_rows`
  and recorded via ``store.mark_dirty``, so a commit rewrites only the
  shards those rows live in;
* :meth:`commit` persists the dirty shards as a new store generation
  (the manifest rename is the single commit point — a crash in between
  recovers to the previous generation);
* :meth:`table_bytes` snapshots the exact ``<f4`` bytes a commit
  persists, which is what the churn harness compares served models
  against bitwise.

:class:`ManifestCrashIO` is the fault seam for the ``"commit_crash"``
online fault kind: the loop arms it right before a planned crashing
commit, and the next manifest rename dies with
:class:`~repro.runtime.faults.InjectedCrash` — after every shard of the
new generation is durable but before any of it is reachable.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.autograd.sparse import coalesce_rows
from repro.core.exceptions import ConfigError, OnlineUpdateError
from repro.core.rng import ensure_rng
from repro.runtime.faults import InjectedCrash
from repro.store.io import StoreIO
from repro.store.mmap import MmapShardStore

__all__ = ["ShadowTrainer", "ManifestCrashIO", "ENTITY_TABLE"]

#: The single embedding table the online world trains and serves.
ENTITY_TABLE = "entity"


class ManifestCrashIO(StoreIO):
    """A :class:`StoreIO` that can be armed to die on the next manifest rename.

    Unlike :class:`~repro.store.io.FaultingStoreIO` (which faults at a
    planned global IO-op index), this seam targets a *semantic* point —
    the rename that would make a new generation reachable — regardless
    of how many shard writes preceded it.  That is exactly the
    ``"commit_crash"`` online fault: shards durable, manifest not.
    """

    def __init__(self) -> None:
        super().__init__()
        self._armed = False

    def arm_manifest_crash(self) -> None:
        self._armed = True

    def _do_replace(self, step: int, tmp: Path, final: Path) -> None:
        if self._armed and final.name.startswith("manifest-"):
            self._armed = False
            raise InjectedCrash(
                f"injected crash before manifest rename {final.name} "
                f"(io op {step})"
            )
        super()._do_replace(step, tmp, final)


class ShadowTrainer:
    """Validated sparse-row BPR updates against a train-mode store."""

    def __init__(
        self,
        store: MmapShardStore,
        num_users: int,
        num_items: int,
        dim: int = 16,
        lr: float = 0.2,
        reg: float = 0.01,
        epochs: int = 3,
        init_scale: float = 0.1,
        seed: int = 0,
    ) -> None:
        if store.mode != "train":
            raise ConfigError(
                f"ShadowTrainer needs a train-mode store (got {store.mode!r})"
            )
        if num_users < 1 or num_items < 1:
            raise ConfigError("need at least one user and one item")
        if dim < 1:
            raise ConfigError("dim must be >= 1")
        if lr <= 0:
            raise ConfigError("lr must be positive")
        if reg < 0:
            raise ConfigError("reg must be >= 0")
        if epochs < 1:
            raise ConfigError("epochs must be >= 1")
        self.store = store
        self.num_users = int(num_users)
        self.num_items = int(num_items)
        self.dim = int(dim)
        self.lr = float(lr)
        self.reg = float(reg)
        self.epochs = int(epochs)
        self._rng = ensure_rng(seed)
        rows = self.num_users + self.num_items
        init = init_scale * ensure_rng(seed).standard_normal((rows, self.dim))
        # register() overwrites ``init`` from disk when the table already
        # exists (reopen after a crash), else dirties every row so the
        # first commit persists the full init.
        self.entity = store.register(ENTITY_TABLE, init)
        self.updates_applied = 0
        self.batches_quarantined = 0

    # ------------------------------------------------------------------ #
    @classmethod
    def bootstrap(
        cls,
        directory: str | Path,
        num_users: int,
        num_items: int,
        dim: int = 16,
        seed: int = 0,
        rows_per_shard: int = 32,
        io: StoreIO | None = None,
        **kwargs,
    ) -> tuple["ShadowTrainer", int]:
        """Create the store, seed the entity table, commit generation 1.

        Returns ``(trainer, generation)`` — the generation the first
        served model (and the frozen freshness baseline) reads from.
        """
        store = MmapShardStore.create(
            directory, rows_per_shard=rows_per_shard, seed=seed, io=io
        )
        trainer = cls(store, num_users, num_items, dim=dim, seed=seed, **kwargs)
        generation = trainer.commit(tag="bootstrap")
        return trainer, generation

    # ------------------------------------------------------------------ #
    def validate_batch(
        self, users: np.ndarray, items: np.ndarray, weights: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Typed admission check for one batch; raises ``OnlineUpdateError``.

        Everything a broken upstream feed can deliver — NaN/Inf weights,
        out-of-range or negated ids, mismatched lengths — is rejected
        here, before any embedding row is touched.
        """
        users = np.asarray(users)
        items = np.asarray(items)
        weights = np.asarray(weights, dtype=np.float64)
        if users.ndim != 1 or items.ndim != 1 or weights.ndim != 1:
            raise OnlineUpdateError("batch arrays must be 1-d")
        if not (users.size == items.size == weights.size):
            raise OnlineUpdateError(
                f"batch length mismatch: {users.size} users, "
                f"{items.size} items, {weights.size} weights"
            )
        if users.size == 0:
            raise OnlineUpdateError("empty interaction batch")
        if not np.issubdtype(users.dtype, np.integer) or not np.issubdtype(
            items.dtype, np.integer
        ):
            raise OnlineUpdateError(
                f"ids must be integers (got {users.dtype}, {items.dtype})"
            )
        if not np.all(np.isfinite(weights)):
            raise OnlineUpdateError(
                f"{int((~np.isfinite(weights)).sum())}/{weights.size} "
                "weights are not finite"
            )
        if np.any(weights < 0):
            raise OnlineUpdateError("negative interaction weights")
        if np.any(users < 0) or np.any(users >= self.num_users):
            raise OnlineUpdateError(
                f"user ids outside [0, {self.num_users})"
            )
        if np.any(items < 0) or np.any(items >= self.num_items):
            raise OnlineUpdateError(
                f"item ids outside [0, {self.num_items})"
            )
        return users.astype(np.int64), items.astype(np.int64), weights

    def apply(
        self, users: np.ndarray, items: np.ndarray, weights: np.ndarray
    ) -> np.ndarray:
        """Validated BPR update; returns the touched entity rows (sorted).

        Runs ``epochs`` passes over the batch, each pairing every
        (user, item) positive with one fresh seeded negative; each
        pass's row gradient is coalesced (PR 3's sparse path,
        bitwise-equal to ``np.add.at``) and applied in one fancy
        assignment, and exactly those rows are marked dirty in the
        store.  A batch that fails validation raises
        :class:`OnlineUpdateError` with the arrays untouched.
        """
        try:
            users, items, weights = self.validate_batch(users, items, weights)
        except OnlineUpdateError:
            self.batches_quarantined += 1
            raise
        E = self.entity
        u_rows = users
        i_rows = self.num_users + items
        touched: np.ndarray | None = None
        for __ in range(self.epochs):
            negatives = self._rng.integers(self.num_items, size=items.size)
            j_rows = self.num_users + negatives
            u, i, j = E[u_rows], E[i_rows], E[j_rows]
            x = np.sum(u * (i - j), axis=1)
            sig = 1.0 / (1.0 + np.exp(x))  # d(-log sigmoid(x))/dx = -sig
            w = (weights * sig)[:, None]
            gu = -w * (i - j) + self.reg * u
            gi = -w * u + self.reg * i
            gj = w * u + self.reg * j
            rows = np.concatenate([u_rows, i_rows, j_rows])
            vals = np.concatenate([gu, gi, gj])
            rows, vals = coalesce_rows(rows, vals)
            E[rows] -= self.lr * vals
            self.store.mark_dirty(ENTITY_TABLE, rows)
            touched = rows if touched is None else np.union1d(touched, rows)
        self.updates_applied += 1
        return touched

    # ------------------------------------------------------------------ #
    def commit(self, tag: str = "") -> int:
        """Persist dirty shards as a new generation (see store docs)."""
        return self.store.commit(tag)

    def table_bytes(self) -> bytes:
        """The exact ``<f4`` bytes a commit of the current arrays persists."""
        return np.ascontiguousarray(self.entity, dtype="<f4").tobytes()

    def dirty_rows(self) -> int:
        return self.store.dirty_row_count(ENTITY_TABLE)
