"""Two-stage retrieval: ANN candidate generation + exact rerank.

Ranking a million-item catalog per request with ``score_all`` is linear
in the catalog; this package makes serving sublinear by splitting every
request into *candidate generation* over an approximate top-k index and
an *exact rerank* of only the candidates (see ``docs/retrieval.md``):

* :mod:`repro.retrieval.base` — the :class:`AnnIndex` interface
  (``build`` / ``search`` / ``search_batch`` / ``save`` / ``load``),
  seed-deterministic with fingerprintable contents, plus exact-top-k
  ground-truth and recall helpers.
* :mod:`repro.retrieval.ivf` — :class:`IvfIndex`: k-means coarse
  partitions, ``nprobe``-controlled probing, chunked vectorized
  assignment.
* :mod:`repro.retrieval.lsh` — :class:`LshIndex`: multi-table
  random-hyperplane signatures packed into ``uint64``, Hamming-wave
  bucket probing over signature-sorted arrays.
* :mod:`repro.retrieval.two_stage` — :class:`TwoStageRecommender`, the
  serving rung that wraps any embedding-backed recommender (including the
  store-backed :class:`~repro.store.serving.StoredEmbeddingRecommender`),
  with typed :class:`~repro.core.exceptions.IndexStaleError` degradation
  and index rebuilds hooked into ``ModelRegistry.promote``; plus
  :class:`ArrayEmbeddingRecommender`, the in-memory protocol adapter.

Benchmarks (recall@k vs exact, p50/p99 latency at 10^5 and 10^6 items)
live in ``benchmarks/bench_retrieval.py`` →
``benchmarks/BENCH_retrieval.json``; ``python -m repro retrieval-demo``
replays the ANN rung, an injected staleness episode, and an index-synced
promotion end to end.
"""

from __future__ import annotations

from .base import AnnIndex, exact_topk, load_index, recall_at_k
from .ivf import IvfIndex
from .lsh import LshIndex
from .two_stage import ArrayEmbeddingRecommender, TwoStageRecommender

__all__ = [
    "AnnIndex",
    "IvfIndex",
    "LshIndex",
    "TwoStageRecommender",
    "ArrayEmbeddingRecommender",
    "load_index",
    "exact_topk",
    "recall_at_k",
]
