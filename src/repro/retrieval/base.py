"""The :class:`AnnIndex` interface, its persistence framing, and recall helpers.

An ANN index in this repo is a **candidate generator**: given a query
vector it returns a small set of item ids whose *exact* scores are then
computed by the second stage (:class:`~repro.retrieval.two_stage.TwoStageRecommender`).
Because the rerank is exact, an index never changes *which order*
surviving candidates are ranked in — only *which* items survive — so the
quality knob is recall@k of the candidate set, and the cost knob is how
many candidates the second stage has to score.

Contract shared by every implementation:

* ``build(vectors, generation=...)`` is **seed-deterministic**: the same
  seed and the same vector table produce bitwise-identical index contents
  (asserted by :meth:`AnnIndex.fingerprint` equality in tests and the
  bench smoke).
* ``search(query, k)`` returns **sorted unique** candidate ids, at least
  ``k`` of them whenever the index holds that many vectors (implementations
  widen their probe until the quota is met), possibly more — candidate
  generation returns whole probed cells/buckets, and the exact rerank pays
  per candidate, so callers cap cost with ``k``, not by truncation.
* ``save``/``load`` round-trip the full index state through one ``.npz``
  file; a loaded index searches bitwise-identically to the one saved.
* ``generation`` records which embedding-store generation (or model
  version) the index was built against; the two-stage rung compares it to
  its base recommender's generation on every request and refuses to serve
  from a stale index (:class:`~repro.core.exceptions.IndexStaleError`).

Index builds are traced (``retrieval/build`` spans) and searches counted
(``retrieval.probes`` / ``retrieval.candidates``, labeled by index kind)
through the active telemetry, guarded on ``enabled`` like every other
instrumented hot path in the repo.
"""

from __future__ import annotations

import abc
import hashlib
import json
from pathlib import Path

import numpy as np

from repro.core.exceptions import RetrievalError

__all__ = [
    "METRICS",
    "AnnIndex",
    "load_index",
    "register_index_kind",
    "exact_topk",
    "recall_at_k",
]

#: Supported similarity metrics: ``"ip"`` ranks by descending inner
#: product; ``"l2"`` by ascending squared euclidean distance (the TransE
#: scoring geometry, where the query is ``u + r``).
METRICS: tuple[str, ...] = ("ip", "l2")

#: Save-file schema version.
FORMAT_VERSION = 1

_KINDS: dict[str, type["AnnIndex"]] = {}


def register_index_kind(cls: type["AnnIndex"]) -> type["AnnIndex"]:
    """Class decorator: make ``cls`` loadable by :func:`load_index`."""
    _KINDS[cls.kind] = cls
    return cls


class AnnIndex(abc.ABC):
    """Approximate top-k candidate index over a fixed vector table."""

    #: Short identifier stored in save files (``"ivf"`` / ``"lsh"``).
    kind: str = ""

    def __init__(self, seed: int = 0, metric: str = "ip") -> None:
        if metric not in METRICS:
            raise RetrievalError(f"unknown metric {metric!r}; known: {METRICS}")
        self.seed = int(seed)
        self.metric = metric
        self.generation: int | None = None
        self.num_vectors = 0
        self.dim = 0

    # ------------------------------------------------------------------ #
    # to be implemented by subclasses
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def build(self, vectors: np.ndarray, generation: int | None = None) -> "AnnIndex":
        """Index ``vectors`` (rows are item ids); returns ``self``."""

    @abc.abstractmethod
    def search(self, query: np.ndarray, k: int) -> np.ndarray:
        """Sorted unique candidate ids for one query (>= ``k`` when possible)."""

    @abc.abstractmethod
    def _state_arrays(self) -> dict[str, np.ndarray]:
        """Every array needed to reconstruct the index, by stable name."""

    @abc.abstractmethod
    def _restore_arrays(self, arrays: dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`_state_arrays` (meta fields already set)."""

    def _config(self) -> dict:
        """Kind-specific scalar knobs persisted alongside the arrays."""
        return {}

    def _apply_config(self, config: dict) -> None:
        for key, value in config.items():
            setattr(self, key, value)

    # ------------------------------------------------------------------ #
    # shared surface
    # ------------------------------------------------------------------ #
    @property
    def is_built(self) -> bool:
        return self.num_vectors > 0

    def _require_built(self) -> None:
        if not self.is_built:
            raise RetrievalError(f"{type(self).__name__} has not been built")

    def _check_vectors(self, vectors: np.ndarray) -> np.ndarray:
        vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        if vectors.ndim != 2 or vectors.shape[0] < 1:
            raise RetrievalError(
                f"index vectors must be a non-empty 2-d array, got shape "
                f"{vectors.shape}"
            )
        if not np.isfinite(vectors).all():
            raise RetrievalError("index vectors must be finite")
        return vectors

    def _check_query(self, query: np.ndarray) -> np.ndarray:
        query = np.asarray(query, dtype=np.float32).ravel()
        if query.size != self.dim:
            raise RetrievalError(
                f"query has dimension {query.size}, index has {self.dim}"
            )
        return query

    def search_batch(self, queries: np.ndarray, k: int) -> list[np.ndarray]:
        """Per-query candidate id arrays (list of sorted unique int64)."""
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim == 1:
            queries = queries[None, :]
        return [self.search(queries[i], k) for i in range(queries.shape[0])]

    def fingerprint(self) -> str:
        """SHA-256 over the full index state (meta + every array, in order).

        Two builds from the same seed and vectors must produce equal
        fingerprints — the determinism contract tests and the bench smoke
        assert.
        """
        digest = hashlib.sha256(json.dumps(self._meta(), sort_keys=True).encode())
        arrays = self._state_arrays()
        for name in sorted(arrays):
            arr = np.ascontiguousarray(arrays[name])
            digest.update(name.encode())
            digest.update(str(arr.dtype).encode())
            digest.update(str(arr.shape).encode())
            digest.update(arr.tobytes())
        return digest.hexdigest()

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def _meta(self) -> dict:
        return {
            "format": FORMAT_VERSION,
            "kind": self.kind,
            "metric": self.metric,
            "seed": self.seed,
            "generation": self.generation,
            "num_vectors": self.num_vectors,
            "dim": self.dim,
            "config": self._config(),
        }

    def save(self, path: str | Path) -> str:
        """Persist the built index as one ``.npz``; returns the path."""
        self._require_built()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        arrays = {f"arr::{k}": v for k, v in self._state_arrays().items()}
        np.savez(
            path,
            meta=np.frombuffer(
                json.dumps(self._meta(), sort_keys=True).encode(), dtype=np.uint8
            ),
            **arrays,
        )
        return str(path)

    @classmethod
    def load(cls, path: str | Path) -> "AnnIndex":
        """Load an index saved by :meth:`save` (kind must match ``cls``)."""
        index = load_index(path)
        if cls is not AnnIndex and not isinstance(index, cls):
            raise RetrievalError(
                f"{path} holds a {type(index).__name__}, not a {cls.__name__}"
            )
        return index


def load_index(path: str | Path) -> AnnIndex:
    """Load any saved :class:`AnnIndex`, dispatching on its ``kind``."""
    path = Path(path)
    if not path.is_file():
        raise RetrievalError(f"no index file at {path}")
    try:
        with np.load(path) as bundle:
            meta = json.loads(bytes(bundle["meta"].tobytes()).decode())
            arrays = {
                name[len("arr::"):]: bundle[name]
                for name in bundle.files
                if name.startswith("arr::")
            }
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        raise RetrievalError(f"{path} is not a readable index file: {exc}") from exc
    if meta.get("format") != FORMAT_VERSION:
        raise RetrievalError(
            f"{path} has index format {meta.get('format')!r}, "
            f"this build reads {FORMAT_VERSION}"
        )
    kind = meta.get("kind")
    if kind not in _KINDS:
        raise RetrievalError(f"{path} holds unknown index kind {kind!r}")
    index = _KINDS[kind](seed=meta["seed"], metric=meta["metric"])
    index.generation = meta["generation"]
    index.num_vectors = int(meta["num_vectors"])
    index.dim = int(meta["dim"])
    index._apply_config(meta.get("config", {}))
    index._restore_arrays(arrays)
    return index


# --------------------------------------------------------------------- #
# exact references (ground truth for recall and the rerank stage)
# --------------------------------------------------------------------- #
def pairwise_scores(
    vectors: np.ndarray, query: np.ndarray, metric: str
) -> np.ndarray:
    """Exact scores of every row of ``vectors`` against one query.

    Higher is better for both metrics (``l2`` returns negated squared
    distances), matching the ``score_all`` convention.
    """
    vectors = np.asarray(vectors)
    query = np.asarray(query, dtype=vectors.dtype).ravel()
    if metric == "ip":
        return vectors @ query
    delta = vectors - query[None, :]
    return -np.einsum("ij,ij->i", delta, delta)


def exact_topk(
    vectors: np.ndarray, query: np.ndarray, k: int, metric: str = "ip"
) -> np.ndarray:
    """The true top-``k`` ids (descending score, stable ties) — ground truth."""
    scores = pairwise_scores(vectors, query, metric)
    k = min(int(k), scores.size)
    top = np.argpartition(-scores, k - 1)[:k]
    return top[np.argsort(-scores[top], kind="stable")].astype(np.int64)


def recall_at_k(candidates: np.ndarray, truth: np.ndarray) -> float:
    """Fraction of the true top-k present in the candidate set."""
    truth = np.asarray(truth)
    if truth.size == 0:
        return 1.0
    return float(np.isin(truth, candidates).mean())
