"""End-to-end replay of the two-stage retrieval serving path.

``python -m repro retrieval-demo`` builds a synthetic catalog with
clustered embeddings, promotes a :class:`TwoStageRecommender` (IVF
candidates + exact rerank) as the live rung of a
:class:`~repro.serving.service.RecommenderService` — the promotion
itself builds the ANN index, via ``ModelRegistry.promote`` calling
``sync_index`` — then walks the three episodes that define the design:

1. **steady state** — requests served ``ok`` by the ANN rung, with a
   seeded sprinkle of injected ``index_stale`` faults degrading
   individual requests to the exact rung (typed, never an error);
2. **real staleness** — the embedding tables are swapped to a new
   generation *without* rebuilding the index; every request now degrades
   to the exact rung because the stale index refuses to serve;
3. **re-promotion** — promoting the model again rebuilds the index
   against the new generation atomically, and requests return to ``ok``.
"""

from __future__ import annotations

import numpy as np

from repro.core.rng import ensure_rng
from repro.data import MOVIE_SCHEMA, generate_dataset
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.serving.clock import ManualClock
from repro.serving.service import RecommenderService, ServeRequest

from .ivf import IvfIndex
from .two_stage import ArrayEmbeddingRecommender, TwoStageRecommender

__all__ = ["build_demo", "run_demo"]


def _clustered(rng, rows: int, dim: int, centers: np.ndarray) -> np.ndarray:
    picks = centers[rng.integers(centers.shape[0], size=rows)]
    return picks + 0.25 * rng.standard_normal((rows, dim))


def build_demo(
    seed: int = 0,
    num_users: int = 64,
    num_items: int = 2_000,
    dim: int = 32,
    num_requests: int = 150,
    fault_rate: float = 0.06,
):
    """A service whose live rung is a two-stage recommender; plus the models."""
    dataset = generate_dataset(
        MOVIE_SCHEMA, num_users=num_users, num_items=num_items, seed=seed
    )
    rng = ensure_rng(seed)
    centers = rng.standard_normal((32, dim))
    base = ArrayEmbeddingRecommender(
        _clustered(rng, num_users, dim, centers),
        _clustered(rng, num_items, dim, centers),
        generation=1,
    ).fit(dataset)
    two = TwoStageRecommender(base, IvfIndex(seed=seed), k_candidates=128)
    two.fit(dataset)

    clock = ManualClock()
    plan = FaultPlan.random(
        num_requests, rate=fault_rate, kinds=("index_stale",), seed=seed
    )
    injector = FaultInjector(plan, sleep=clock.advance)
    # Promoting the primary builds the ANN index: ModelRegistry.promote
    # calls sync_index() before the canary probe.
    service = RecommenderService(
        dataset,
        primary=("ann", two),
        fallbacks=[("exact", base)],
        breaker_config={"failure_threshold": 5, "window": 20, "recovery_time": 0.2},
        faults=injector,
        clock=clock,
    )
    return service, clock, injector, base, two


def _replay(service, clock, seed: int, count: int) -> dict:
    rng = ensure_rng(seed + 1)
    outcomes: dict[str, int] = {}
    for __ in range(count):
        user = int(rng.integers(service.dataset.num_users))
        response = service.serve(ServeRequest(user_id=user, k=10))
        key = f"{response.status}::{response.model}"
        outcomes[key] = outcomes.get(key, 0) + 1
        clock.advance(0.002)
    return outcomes


def _fmt(outcomes: dict) -> list[str]:
    return [f"    {key:24s} {count}" for key, count in sorted(outcomes.items())]


def run_demo(seed: int = 0, num_requests: int = 150) -> str:
    """The three-episode replay; returns the printable report."""
    service, clock, injector, base, two = build_demo(
        seed=seed, num_requests=num_requests
    )
    lines = [
        "retrieval-demo: ANN candidates + exact rerank behind the serving ladder",
        "=" * 71,
        f"catalog: {service.dataset.num_items} items, "
        f"{service.dataset.num_users} users; index: {two.index.kind} "
        f"(generation {two.index.generation}, "
        f"{two.index.num_vectors} vectors)",
        "",
        f"[1] steady state with injected index_stale faults "
        f"({len(injector.plan)} planned):",
    ]
    lines += _fmt(_replay(service, clock, seed, num_requests))
    lines.append(
        f"    faults fired: {len(injector.injected)}; every stale request "
        "was answered by the exact rung, typed degraded"
    )

    # Swap in a new embedding generation without rebuilding the index.
    rng = ensure_rng(seed + 99)
    base.set_embeddings(
        item_vectors=base.item_vectors() + 0.05 * rng.standard_normal(
            base.item_vectors().shape
        )
    )
    lines.append("")
    lines.append(
        f"[2] embeddings swapped to generation {base.generation}; index still "
        f"at {two.index.generation} -> stale ({two.index_report()}):"
    )
    service.faults = None  # isolate real staleness from injected faults
    lines += _fmt(_replay(service, clock, seed + 1, 30))

    record = service.promote("ann", two)
    lines.append("")
    lines.append(
        f"[3] re-promoted: sync_index rebuilt the index at generation "
        f"{two.index.generation}; promotion record: {record.describe()}"
    )
    lines += _fmt(_replay(service, clock, seed + 2, 30))
    lines.append("")
    lines.append("promotion history:")
    lines.extend(f"  {r.describe()}" for r in service.registry.history)
    return "\n".join(lines)
