"""Inverted-file (coarse k-means) candidate index.

The classic production ANN layout: partition the item vectors into
``num_lists`` cells with a few rounds of seeded k-means, store each
cell's member ids contiguously (CSR: offsets + one flat id array), and
at query time score only the ``nprobe`` cells whose centroids sit
closest to the query.  Probing more cells trades latency for recall;
``num_lists`` trades build cost and per-cell size.

Everything is vectorized NumPy and seed-deterministic:

* centroid init is a seeded no-replacement draw of data points;
* assignment runs in fixed-size chunks with the
  ``||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2`` expansion (the ``||x||^2``
  term is constant per row and dropped from the argmin);
* k-means trains on a seeded subsample when the table is large (the
  standard scale trick), then one full chunked assignment builds the
  lists;
* empty cells are re-seeded deterministically to the points currently
  worst-served by their centroid, so every cell is non-empty and two
  builds from the same seed are bitwise identical.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import RetrievalError
from repro.telemetry.base import get_active

from .base import AnnIndex, register_index_kind

__all__ = ["IvfIndex"]

#: Rows per assignment chunk — bounds the (chunk x num_lists) score matrix.
_CHUNK = 65_536


@register_index_kind
class IvfIndex(AnnIndex):
    """K-means inverted-file index with ``nprobe``-controlled search.

    Parameters
    ----------
    num_lists:
        Number of coarse cells.  ``None`` (default) picks
        ``round(sqrt(n))`` at build time — cells of ~``sqrt(n)`` members,
        so probe cost grows as ``O(sqrt(n))`` instead of ``O(n)``.
    nprobe:
        Cells probed per query (clamped to ``num_lists`` at search time).
    iters:
        K-means refinement rounds.
    train_size:
        Cap on vectors used to *train* the centroids (the full table is
        always assigned to lists).  ``None`` trains on everything.
    """

    kind = "ivf"

    def __init__(
        self,
        num_lists: int | None = None,
        nprobe: int = 16,
        iters: int = 8,
        train_size: int | None = 100_000,
        seed: int = 0,
        metric: str = "ip",
    ) -> None:
        super().__init__(seed=seed, metric=metric)
        if num_lists is not None and num_lists < 1:
            raise RetrievalError("num_lists must be >= 1")
        if nprobe < 1:
            raise RetrievalError("nprobe must be >= 1")
        if iters < 1:
            raise RetrievalError("iters must be >= 1")
        self.num_lists = num_lists
        self.nprobe = int(nprobe)
        self.iters = int(iters)
        self.train_size = train_size
        self._centroids: np.ndarray | None = None  # (L, dim) float32
        self._offsets: np.ndarray | None = None  # (L + 1,) int64
        self._members: np.ndarray | None = None  # (n,) int64, grouped by cell

    # ------------------------------------------------------------------ #
    # build
    # ------------------------------------------------------------------ #
    @staticmethod
    def _assign(vectors: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        """Chunked nearest-centroid assignment (L2, the k-means geometry)."""
        c_norm = np.einsum("ij,ij->i", centroids, centroids)
        out = np.empty(vectors.shape[0], dtype=np.int64)
        for start in range(0, vectors.shape[0], _CHUNK):
            block = vectors[start : start + _CHUNK]
            # ||x||^2 is constant per row: argmin over -2 x.c + ||c||^2.
            scores = block @ centroids.T
            scores *= -2.0
            scores += c_norm[None, :]
            out[start : start + _CHUNK] = np.argmin(scores, axis=1)
        return out

    def _kmeans(self, vectors: np.ndarray, num_lists: int) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        n = vectors.shape[0]
        train = vectors
        if self.train_size is not None and n > self.train_size:
            take = max(self.train_size, min(n, 64 * num_lists))
            train = vectors[np.sort(rng.choice(n, size=take, replace=False))]
        centroids = train[
            np.sort(rng.choice(train.shape[0], size=num_lists, replace=False))
        ].astype(np.float32, copy=True)
        for __ in range(self.iters):
            assign = self._assign(train, centroids)
            sums = np.zeros_like(centroids, dtype=np.float64)
            np.add.at(sums, assign, train.astype(np.float64))
            counts = np.bincount(assign, minlength=num_lists)
            filled = counts > 0
            centroids[filled] = (
                sums[filled] / counts[filled, None]
            ).astype(np.float32)
            empty = np.nonzero(~filled)[0]
            if empty.size:
                # Deterministic re-seed: hand each empty cell one of the
                # points farthest from its current centroid.
                dist = np.einsum(
                    "ij,ij->i", train - centroids[assign], train - centroids[assign]
                )
                worst = np.argsort(-dist, kind="stable")[: empty.size]
                centroids[empty] = train[worst]
        return centroids

    def build(self, vectors: np.ndarray, generation: int | None = None) -> "IvfIndex":
        vectors = self._check_vectors(vectors)
        n, dim = vectors.shape
        num_lists = self.num_lists
        if num_lists is None:
            num_lists = max(1, int(round(float(n) ** 0.5)))
        num_lists = min(num_lists, n)
        tel = get_active()
        span = (
            tel.begin(
                "retrieval/build", kind=self.kind, vectors=n, dim=dim,
                lists=num_lists, generation=generation,
            )
            if tel.enabled
            else None
        )
        centroids = self._kmeans(vectors, num_lists)
        assign = self._assign(vectors, centroids)
        order = np.argsort(assign, kind="stable")
        counts = np.bincount(assign, minlength=num_lists)
        offsets = np.zeros(num_lists + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        self._centroids = centroids
        self._offsets = offsets
        self._members = order.astype(np.int64)
        self.num_vectors, self.dim = n, dim
        self.generation = int(generation) if generation is not None else None
        if span is not None:
            tel.counter("retrieval.index_builds", index=self.kind).inc()
            tel.end(span, outcome="ok")
        return self

    # ------------------------------------------------------------------ #
    # search
    # ------------------------------------------------------------------ #
    def _probe_order(self, query: np.ndarray) -> np.ndarray:
        """Cell indices by decreasing promise for ``query``."""
        if self.metric == "ip":
            promise = self._centroids @ query
        else:
            delta = self._centroids - query[None, :]
            promise = -np.einsum("ij,ij->i", delta, delta)
        return np.argsort(-promise, kind="stable")

    def search(self, query: np.ndarray, k: int) -> np.ndarray:
        self._require_built()
        query = self._check_query(query)
        if k < 1:
            raise RetrievalError("k must be >= 1")
        order = self._probe_order(query)
        quota = min(int(k), self.num_vectors)
        chunks: list[np.ndarray] = []
        count = 0
        probed = 0
        for cell in order:
            members = self._members[
                self._offsets[cell] : self._offsets[cell + 1]
            ]
            probed += 1
            if members.size:
                chunks.append(members)
                count += members.size
            # Probe nprobe cells, then keep widening only until the k
            # quota is met (sparse cells must not starve the rerank).
            if probed >= self.nprobe and count >= quota:
                break
        tel = get_active()
        if tel.enabled:
            tel.counter("retrieval.probes", index=self.kind).inc(probed)
        if not chunks:  # pragma: no cover - every cell non-empty by build
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(chunks))

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def _config(self) -> dict:
        return {
            "num_lists": self.num_lists,
            "nprobe": self.nprobe,
            "iters": self.iters,
            "train_size": self.train_size,
        }

    def _state_arrays(self) -> dict[str, np.ndarray]:
        self._require_built()
        return {
            "centroids": self._centroids,
            "offsets": self._offsets,
            "members": self._members,
        }

    def _restore_arrays(self, arrays: dict[str, np.ndarray]) -> None:
        try:
            self._centroids = np.ascontiguousarray(
                arrays["centroids"], dtype=np.float32
            )
            self._offsets = np.ascontiguousarray(arrays["offsets"], dtype=np.int64)
            self._members = np.ascontiguousarray(arrays["members"], dtype=np.int64)
        except KeyError as exc:
            raise RetrievalError(f"ivf index file is missing array {exc}") from exc
