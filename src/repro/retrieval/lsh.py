"""Random-hyperplane LSH candidate index with multi-table Hamming probing.

Each of ``num_tables`` tables projects every vector onto ``num_bits``
seeded random hyperplanes and packs the sign pattern into one ``uint64``
signature.  Vectors whose signatures collide land in the same bucket;
bucket lookup is a binary search over the table's signature-sorted id
array (no hash maps — two ``searchsorted`` calls per probe).

Search gathers buckets in waves of increasing Hamming distance from the
query signature — the exact bucket first, then every 1-bit flip, then
2-bit flips — across all tables, stopping as soon as the candidate quota
is met; if the quota is still unmet past ``max_hamming`` the wave keeps
widening (the ``>= k when possible`` contract), reaching every stored
vector by radius ``num_bits``.  ``num_tables`` and ``max_hamming`` trade
probe count for recall; ``num_bits`` trades bucket size (collision rate
halves per bit) for how aggressively probing must widen.

Random-hyperplane signatures preserve *angles*, so the index is at its
best for inner-product/cosine scoring; it still functions for ``l2``
queries (the two-stage rerank stays exact either way) with lower recall
on far-from-origin geometry.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.core.exceptions import RetrievalError
from repro.telemetry.base import get_active

from .base import AnnIndex, register_index_kind

__all__ = ["LshIndex"]

#: Rows per signature chunk at build time.
_CHUNK = 262_144


@register_index_kind
class LshIndex(AnnIndex):
    """Multi-table packed-bit random-hyperplane index."""

    kind = "lsh"

    def __init__(
        self,
        num_tables: int = 16,
        num_bits: int = 16,
        max_hamming: int = 3,
        seed: int = 0,
        metric: str = "ip",
    ) -> None:
        super().__init__(seed=seed, metric=metric)
        if num_tables < 1:
            raise RetrievalError("num_tables must be >= 1")
        if not 1 <= num_bits <= 62:
            raise RetrievalError("num_bits must lie in [1, 62]")
        if max_hamming < 0:
            raise RetrievalError("max_hamming must be >= 0")
        self.num_tables = int(num_tables)
        self.num_bits = int(num_bits)
        self.max_hamming = int(max_hamming)
        self._planes: np.ndarray | None = None  # (T, num_bits, dim) float32
        self._sigs: np.ndarray | None = None  # (T, n) uint64, sorted per table
        self._ids: np.ndarray | None = None  # (T, n) int64, aligned with sigs
        self._flip_cache: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # build
    # ------------------------------------------------------------------ #
    def _signatures(self, vectors: np.ndarray, table: int) -> np.ndarray:
        """Packed ``uint64`` signatures of ``vectors`` under one table."""
        planes = self._planes[table]
        weights = (np.uint64(1) << np.arange(self.num_bits, dtype=np.uint64))
        out = np.empty(vectors.shape[0], dtype=np.uint64)
        for start in range(0, vectors.shape[0], _CHUNK):
            block = vectors[start : start + _CHUNK]
            bits = (block @ planes.T) > 0
            out[start : start + _CHUNK] = bits.astype(np.uint64) @ weights
        return out

    def build(self, vectors: np.ndarray, generation: int | None = None) -> "LshIndex":
        vectors = self._check_vectors(vectors)
        n, dim = vectors.shape
        tel = get_active()
        span = (
            tel.begin(
                "retrieval/build", kind=self.kind, vectors=n, dim=dim,
                tables=self.num_tables, bits=self.num_bits,
                generation=generation,
            )
            if tel.enabled
            else None
        )
        rng = np.random.default_rng(self.seed)
        self._planes = rng.standard_normal(
            (self.num_tables, self.num_bits, dim)
        ).astype(np.float32)
        self.num_vectors, self.dim = n, dim
        sigs = np.empty((self.num_tables, n), dtype=np.uint64)
        ids = np.empty((self.num_tables, n), dtype=np.int64)
        for t in range(self.num_tables):
            raw = self._signatures(vectors, t)
            order = np.argsort(raw, kind="stable")
            sigs[t] = raw[order]
            ids[t] = order
        self._sigs, self._ids = sigs, ids
        self.generation = int(generation) if generation is not None else None
        if span is not None:
            tel.counter("retrieval.index_builds", index=self.kind).inc()
            tel.end(span, outcome="ok")
        return self

    # ------------------------------------------------------------------ #
    # search
    # ------------------------------------------------------------------ #
    def _flips(self, radius: int) -> np.ndarray:
        """All XOR masks at exactly ``radius`` bits, in deterministic order."""
        cached = self._flip_cache.get(radius)
        if cached is not None:
            return cached
        if radius == 0:
            masks = np.zeros(1, dtype=np.uint64)
        else:
            masks = np.asarray(
                [
                    np.bitwise_or.reduce(
                        np.uint64(1) << np.asarray(bits, dtype=np.uint64)
                    )
                    for bits in combinations(range(self.num_bits), radius)
                ],
                dtype=np.uint64,
            )
        self._flip_cache[radius] = masks
        return masks

    def search(self, query: np.ndarray, k: int) -> np.ndarray:
        self._require_built()
        query = self._check_query(query)
        if k < 1:
            raise RetrievalError("k must be >= 1")
        quota = min(int(k), self.num_vectors)
        weights = (np.uint64(1) << np.arange(self.num_bits, dtype=np.uint64))
        qsigs = np.empty(self.num_tables, dtype=np.uint64)
        for t in range(self.num_tables):
            bits = (self._planes[t] @ query) > 0
            qsigs[t] = bits.astype(np.uint64) @ weights
        chunks: list[np.ndarray] = []
        found = np.empty(0, dtype=np.int64)
        count = 0
        probes = 0
        # Waves normally stop once the quota is met (usually well inside
        # max_hamming); an underfull result keeps widening anyway — the
        # ">= k when possible" contract outranks the latency knob, and
        # radius num_bits reaches every stored vector.
        for radius in range(self.num_bits + 1):
            masks = self._flips(radius)
            for t in range(self.num_tables):
                probe_sigs = qsigs[t] ^ masks
                lo = np.searchsorted(self._sigs[t], probe_sigs, side="left")
                hi = np.searchsorted(self._sigs[t], probe_sigs, side="right")
                probes += int(probe_sigs.size)
                for a, b in zip(lo, hi):
                    if b > a:
                        chunks.append(self._ids[t, a:b])
                        count += b - a
            # A radius is consumed whole across every table before the
            # quota check, so results never depend on table order alone.
            # The raw hit count is cross-table-duplicate-inflated, so the
            # quota is confirmed against the deduplicated set.
            if count >= quota:
                found = np.unique(np.concatenate(chunks))
                if found.size >= quota:
                    break
                chunks, count = [found], int(found.size)
        tel = get_active()
        if tel.enabled:
            tel.counter("retrieval.probes", index=self.kind).inc(probes)
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(chunks))

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def _config(self) -> dict:
        return {
            "num_tables": self.num_tables,
            "num_bits": self.num_bits,
            "max_hamming": self.max_hamming,
        }

    def _state_arrays(self) -> dict[str, np.ndarray]:
        self._require_built()
        return {"planes": self._planes, "sigs": self._sigs, "ids": self._ids}

    def _restore_arrays(self, arrays: dict[str, np.ndarray]) -> None:
        try:
            self._planes = np.ascontiguousarray(arrays["planes"], dtype=np.float32)
            self._sigs = np.ascontiguousarray(arrays["sigs"], dtype=np.uint64)
            self._ids = np.ascontiguousarray(arrays["ids"], dtype=np.int64)
        except KeyError as exc:
            raise RetrievalError(f"lsh index file is missing array {exc}") from exc
