"""Two-stage retrieval: ANN candidate generation + exact rerank.

:class:`TwoStageRecommender` wraps any *embedding-backed* recommender —
one whose scores are a similarity between a per-user query vector and
per-item vectors — and replaces full-catalog scoring with:

1. **candidate generation**: an :class:`~repro.retrieval.base.AnnIndex`
   over the item vectors returns ``>= k_candidates`` candidate ids in
   sublinear time;
2. **exact rerank**: only those rows are scored with the base model's own
   scoring rule, so the ranking *among served items* is exactly the
   ranking the base model would have produced.

The wrapped model provides three methods (the *retrieval protocol*):

``item_vectors() -> (num_items, dim) array``
    the vectors the index is built over (read once per index build);
``query_vector(user_id) -> (dim,) array``
    the query the index searches with (``u`` for dot-product models,
    ``u + r`` for TransE-style translation scoring);
``score_items(user_id, item_ids) -> (len(item_ids),) float64``
    exact scores for a candidate subset — must agree with
    ``score_all(user_id)[item_ids]``.

plus ``retrieval_metric`` (``"ip"``/``"l2"``) and optionally
``generation`` (an int that changes when the embeddings do — e.g. the
:class:`~repro.store.mmap.MmapShardStore` generation).

**Staleness is typed, never silent.**  Every candidate request first
checks that the index matches the base model (built, same catalog size,
same generation); a mismatch raises
:class:`~repro.core.exceptions.IndexStaleError`, which the serving
ladder records as a rung failure and answers through the exact rung —
so no request is ever served from an index built against different
embeddings.  ``index.generation`` is assigned *last* during a build,
making it the in-memory commit point: a build that dies midway leaves
the index stale, not half-fresh.

:class:`ArrayEmbeddingRecommender` is the protocol's reference
implementation over plain in-memory arrays — the adapter for exporting
any trained model's embedding tables into the two-stage path, and the
catalog generator behind ``python -m repro retrieval-demo``.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import (
    ConfigError,
    DataError,
    IndexStaleError,
    RetrievalError,
)
from repro.core.recommender import Recommender
from repro.telemetry.base import get_active

from .base import AnnIndex

__all__ = ["TwoStageRecommender", "ArrayEmbeddingRecommender"]

#: Methods a base recommender must expose to sit behind an ANN index.
PROTOCOL_METHODS = ("item_vectors", "query_vector", "score_items")


class ArrayEmbeddingRecommender(Recommender):
    """Embedding-backed recommender over plain arrays (protocol reference).

    Scores are ``items @ u`` when ``relation_vector`` is ``None``,
    otherwise TransE-style ``-||u + r - i||^2``.  ``generation`` is a
    plain int the owner bumps (via :meth:`set_embeddings`) whenever the
    tables are replaced — the staleness signal the two-stage wrapper
    watches, mirroring the store generation of
    :class:`~repro.store.serving.StoredEmbeddingRecommender`.
    """

    requires_kg = False

    def __init__(
        self,
        user_vectors: np.ndarray,
        item_vectors: np.ndarray,
        relation_vector: np.ndarray | None = None,
        generation: int = 0,
    ) -> None:
        super().__init__()
        self._users = np.ascontiguousarray(user_vectors, dtype=np.float64)
        self._items = np.ascontiguousarray(item_vectors, dtype=np.float64)
        if self._users.ndim != 2 or self._items.ndim != 2:
            raise DataError("user/item vectors must be 2-d arrays")
        if self._users.shape[1] != self._items.shape[1]:
            raise DataError("user and item vectors must share their dimension")
        self._relation = (
            None
            if relation_vector is None
            else np.ascontiguousarray(relation_vector, dtype=np.float64).ravel()
        )
        self.generation = int(generation)

    def set_embeddings(
        self,
        user_vectors: np.ndarray | None = None,
        item_vectors: np.ndarray | None = None,
        generation: int | None = None,
    ) -> int:
        """Swap tables in (a new "training generation"); returns the generation."""
        if user_vectors is not None:
            self._users = np.ascontiguousarray(user_vectors, dtype=np.float64)
        if item_vectors is not None:
            self._items = np.ascontiguousarray(item_vectors, dtype=np.float64)
        if self._users.shape[1] != self._items.shape[1]:
            raise DataError("user and item vectors must share their dimension")
        self.generation = (
            int(generation) if generation is not None else self.generation + 1
        )
        return self.generation

    # -------------------------------------------------------------- #
    def fit(self, dataset: Dataset) -> "ArrayEmbeddingRecommender":
        if dataset.num_users != self._users.shape[0]:
            raise DataError(
                f"user vectors cover {self._users.shape[0]} users, "
                f"dataset has {dataset.num_users}"
            )
        if dataset.num_items != self._items.shape[0]:
            raise DataError(
                f"item vectors cover {self._items.shape[0]} items, "
                f"dataset has {dataset.num_items}"
            )
        self._mark_fitted(dataset)
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        self.fitted_dataset
        return self.score_items(user_id, np.arange(self._items.shape[0]))

    # -------------------------------------------------------------- #
    # retrieval protocol
    # -------------------------------------------------------------- #
    @property
    def retrieval_metric(self) -> str:
        return "ip" if self._relation is None else "l2"

    def item_vectors(self) -> np.ndarray:
        return self._items

    def query_vector(self, user_id: int) -> np.ndarray:
        u = self._users[int(user_id)]
        return u if self._relation is None else u + self._relation

    def score_items(self, user_id: int, item_ids) -> np.ndarray:
        items = self._items[np.asarray(item_ids, dtype=np.int64)]
        q = self.query_vector(user_id)
        if self._relation is None:
            return items @ q
        delta = q[None, :] - items
        return -np.einsum("ij,ij->i", delta, delta)


class TwoStageRecommender(Recommender):
    """ANN candidate generation in front of an exact embedding scorer.

    Parameters
    ----------
    base:
        A fitted (or fit-able) recommender implementing the retrieval
        protocol above.
    index:
        The :class:`AnnIndex` to generate candidates with.  It may be
        unbuilt; :meth:`sync_index` (called automatically by
        ``ModelRegistry.promote``) builds it against the base's current
        item vectors and generation.
    k_candidates:
        Candidate-set floor per request.  The exact rerank pays per
        candidate, so this is the recall/latency dial; keep it comfortably
        above the largest ``k`` plus a typical user's seen-item count.
    exact_fallback:
        When ``True`` (default), :meth:`score_all` silently falls back to
        the base's exact full scoring if the index is stale/missing
        (standalone use, evaluation).  The serving path is unaffected:
        :meth:`score_candidates` always raises
        :class:`~repro.core.exceptions.IndexStaleError` on staleness so
        the degradation ladder records a typed rung failure.
    """

    requires_kg = False
    #: Serving-layer marker: this rung returns (ids, scores) candidate
    #: subsets via :meth:`score_candidates` instead of full vectors.
    supports_candidates = True

    def __init__(
        self,
        base: Recommender,
        index: AnnIndex,
        k_candidates: int = 128,
        exact_fallback: bool = True,
    ) -> None:
        super().__init__()
        missing = [m for m in PROTOCOL_METHODS if not callable(getattr(base, m, None))]
        if missing:
            raise ConfigError(
                f"{type(base).__name__} does not implement the retrieval "
                f"protocol (missing {', '.join(missing)}); see "
                "repro.retrieval.two_stage"
            )
        if k_candidates < 1:
            raise ConfigError("k_candidates must be >= 1")
        self.base = base
        self.index = index
        self.k_candidates = int(k_candidates)
        self.exact_fallback = bool(exact_fallback)

    # -------------------------------------------------------------- #
    @property
    def generation(self) -> int | None:
        """The base model's embedding generation (None when unversioned)."""
        generation = getattr(self.base, "generation", None)
        return int(generation) if isinstance(generation, (int, np.integer)) else None

    def index_report(self) -> str | None:
        """``None`` when the index is servable, else the staleness reason."""
        if self.index is None:
            return "no index attached"
        if not self.index.is_built:
            return "index has never been built"
        num_items = self.fitted_dataset.num_items
        if self.index.num_vectors != num_items:
            return (
                f"index covers {self.index.num_vectors} items, "
                f"catalog has {num_items}"
            )
        generation = self.generation
        if generation is not None and self.index.generation != generation:
            return (
                f"index built at generation {self.index.generation}, "
                f"embeddings are at generation {generation}"
            )
        return None

    def sync_index(self, force: bool = False) -> int | None:
        """(Re)build the index against the base's current vectors.

        A no-op when the index is already fresh (unless ``force``), so
        ``ModelRegistry.promote`` can call it unconditionally.  The
        build's final step assigns ``index.generation`` — the in-memory
        commit point — so a build that raises leaves the index *stale*
        (requests degrade to the exact rung), never half-fresh.  Returns
        the generation the index now serves.
        """
        if not force and self.is_fitted and self.index_report() is None:
            return self.index.generation
        vectors = np.ascontiguousarray(self.base.item_vectors(), dtype=np.float32)
        self.index.build(vectors, generation=self.generation)
        return self.index.generation

    # -------------------------------------------------------------- #
    def fit(self, dataset: Dataset) -> "TwoStageRecommender":
        if not self.base.is_fitted:
            self.base.fit(dataset)
        self._mark_fitted(dataset)
        return self

    def score_candidates(
        self, user_id: int, k: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Candidate ids + their exact scores; the ANN serving entrypoint.

        Raises :class:`IndexStaleError` when the index does not match the
        live embeddings, and :class:`RetrievalError` when probing finds no
        candidates at all — both surface as typed rung failures in the
        serving ladder, never as silent wrong answers.
        """
        dataset = self.fitted_dataset
        reason = self.index_report()
        if reason is not None:
            tel = get_active()
            if tel.enabled:
                tel.counter("retrieval.stale_refusals", index=self.index.kind
                            if self.index is not None else "none").inc()
            raise IndexStaleError(reason)
        quota = max(self.k_candidates, int(k) if k is not None else 1)
        query = np.asarray(self.base.query_vector(int(user_id)), dtype=np.float32)
        ids = self.index.search(query, quota)
        if ids.size == 0:
            raise RetrievalError(
                f"index returned no candidates for user {int(user_id)}"
            )
        scores = np.asarray(
            self.base.score_items(int(user_id), ids), dtype=np.float64
        )
        tel = get_active()
        if tel.enabled:
            tel.counter("retrieval.requests", index=self.index.kind).inc()
            tel.counter("retrieval.candidates", index=self.index.kind).inc(
                int(ids.size)
            )
        return ids, scores

    def score_all(self, user_id: int) -> np.ndarray:
        """Full-length score vector for protocol compatibility.

        Candidates carry their exact scores; every other item gets a
        sentinel strictly below the worst candidate, so downstream
        top-k/ranking code (evaluators, ``Recommender.recommend``) keeps
        working — the tail order among non-candidates is not meaningful.
        """
        dataset = self.fitted_dataset
        try:
            ids, scores = self.score_candidates(user_id)
        except (IndexStaleError, RetrievalError):
            if not self.exact_fallback:
                raise
            tel = get_active()
            if tel.enabled:
                tel.counter("retrieval.exact_fallbacks").inc()
            return np.asarray(self.base.score_all(user_id), dtype=np.float64)
        full = np.full(dataset.num_items, float(scores.min()) - 1.0, dtype=np.float64)
        full[ids] = scores
        return full
