"""Resilient training runtime: guards, retries, checkpoints, fault injection.

This package is the robustness layer every iterative trainer and
experiment harness runs through:

* :mod:`repro.runtime.guards` — gradient/parameter finiteness checks,
  global-norm clipping, and loss-divergence detection.
* :mod:`repro.runtime.retry` — :class:`RetryPolicy`, seeded exponential
  backoff usable as a decorator, a direct call, or an attempt loop.
* :mod:`repro.runtime.checkpoint` — ``.npz`` snapshot/restore of
  parameters + optimizer + RNG state, with periodic saves and
  resume-from-latest.
* :mod:`repro.runtime.faults` — deterministic fault injection so every
  guard is testable without flaky sleeps.

:class:`TrainingRuntime` bundles the pieces into a single object that
iterative ``fit`` loops accept (see :meth:`repro.kge.base.KGEModel.fit`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - type-only; telemetry imports nothing here
    from repro.telemetry import Telemetry

from .checkpoint import Checkpoint, Checkpointer, load_checkpoint, save_checkpoint
from .faults import (
    FAULT_KINDS,
    IO_FAULT_KINDS,
    SERVING_FAULT_KINDS,
    TRAINING_FAULT_KINDS,
    Fault,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    InjectedFault,
)
from .guards import (
    NONFINITE_POLICIES,
    DivergenceDetector,
    ScoreReport,
    check_finite_params,
    clip_grad_norm,
    grad_norm,
    has_nonfinite_grad,
    raw_grad,
    validate_scores,
    zero_nonfinite_grads,
)
from .retry import Attempt, RetryPolicy

__all__ = [
    "raw_grad",
    "grad_norm",
    "clip_grad_norm",
    "has_nonfinite_grad",
    "zero_nonfinite_grads",
    "check_finite_params",
    "validate_scores",
    "ScoreReport",
    "NONFINITE_POLICIES",
    "DivergenceDetector",
    "RetryPolicy",
    "Attempt",
    "Checkpoint",
    "Checkpointer",
    "save_checkpoint",
    "load_checkpoint",
    "Fault",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "InjectedCrash",
    "FAULT_KINDS",
    "TRAINING_FAULT_KINDS",
    "SERVING_FAULT_KINDS",
    "IO_FAULT_KINDS",
    "TrainingRuntime",
]


@dataclass
class TrainingRuntime:
    """Bundle of runtime services threaded through an iterative ``fit``.

    All fields are optional; a default-constructed runtime is a no-op, so
    trainers can call the hook methods unconditionally.
    """

    divergence: DivergenceDetector | None = None
    checkpointer: Checkpointer | None = None
    faults: FaultInjector | None = None
    #: Optional :class:`~repro.telemetry.Telemetry` threaded into the fit
    #: loop (spans per epoch/batch, loss + grad-norm gauges; see
    #: ``docs/observability.md``).  ``None`` keeps telemetry off.
    telemetry: "Telemetry | None" = None

    def before_step(self, step: int, params=()) -> None:
        """Fault-injection hook: call after ``backward``, before ``step``."""
        if self.faults is not None:
            self.faults.before_step(step, params)

    def observe_loss(self, loss: float) -> float:
        """Divergence hook: call once per optimizer step with the batch loss."""
        if self.divergence is not None:
            return self.divergence.update(loss)
        return float(loss)

    def resume(self, params, optimizer=None, rng: np.random.Generator | None = None) -> Checkpoint | None:
        """Restore the latest checkpoint into live objects, if one exists."""
        if self.checkpointer is None:
            return None
        return self.checkpointer.restore_latest(params, optimizer=optimizer, rng=rng)

    def maybe_checkpoint(
        self,
        step: int,
        params,
        optimizer=None,
        rng: np.random.Generator | None = None,
        extra: dict | None = None,
    ):
        """Periodic-save hook: call at the end of each epoch/step unit."""
        if self.checkpointer is None:
            return None
        return self.checkpointer.maybe_save(
            step, params, optimizer=optimizer, rng=rng, extra=extra
        )
