"""Snapshot/restore of training state via ``.npz`` archives.

Follows the same conventions as :mod:`repro.core.io` — one compressed
``.npz`` per checkpoint, arrays stored natively plus a ``__meta__`` JSON
blob for scalars.  A checkpoint captures everything an iterative ``fit``
loop needs to resume *bitwise identically*:

* parameter arrays (in ``Module.parameters()`` order),
* optimizer state (via ``Optimizer.state_dict()``),
* the RNG bit-generator state (so the resumed run replays the exact
  permutation/negative-sampling stream the uninterrupted run would have),
* a ``step`` counter and a JSON-safe ``extra`` dict (e.g. loss history).

Sparse-gradient training changes nothing here: the lazy optimizers in
:mod:`repro.autograd.optim` keep full-size dense state arrays (velocity,
accumulators, moments), so ``state_dict`` layouts — and therefore the
checkpoint format — are identical whether a run uses sparse row updates
or ``dense_updates=True``, and snapshots from either mode resume the
other.

:class:`Checkpointer` adds the policy layer: periodic saves, atomic
writes (tmp file + rename), pruning to the newest ``keep`` snapshots, and
resume-from-latest.  All failure modes raise
:class:`~repro.core.exceptions.CheckpointError`.

Format version 2 adds a CRC-32 *content checksum per stored array* to the
``__meta__`` blob, verified on load — a snapshot whose bytes rotted on
disk now fails loudly instead of resuming training from corrupt
parameters.  Version-1 archives (no checksums) still load.

A checkpointer may also be bound to a *durable*
:class:`~repro.store.base.EmbeddingStore` (``store=``).  Parameters whose
live arrays the store owns (identified by
:meth:`~repro.store.base.EmbeddingStore.table_for_array` identity) are
then **not** serialized into the ``.npz``; instead each save first calls
``store.commit()`` — persisting only the dirty shards — and the archive
records ``{param position -> table name}`` plus the committed generation.
Restore reads those tables back from the store at that exact generation.
The big embedding matrices therefore move from O(table) per snapshot to
O(rows touched since the last commit), while small dense parameters
(projection vectors etc.) keep riding in the ``.npz``.
"""

from __future__ import annotations

import json
import os
import re
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.exceptions import CheckpointError, ConfigError, StoreError

__all__ = ["Checkpoint", "save_checkpoint", "load_checkpoint", "Checkpointer"]

_FORMAT_VERSION = 2
_KNOWN_VERSIONS = (1, 2)
_STEP_RE = re.compile(r"-(\d+)\.npz$")


def _array_crc(array: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(array).tobytes())


@dataclass
class Checkpoint:
    """In-memory form of one saved training snapshot.

    ``params`` entries are ``None`` at positions the embedding store owns;
    ``store_params`` maps those positions to table names and
    ``store_generation`` pins the store generation the snapshot refers to.
    """

    step: int
    params: list[np.ndarray | None]
    optimizer_state: dict | None = None
    rng_state: dict | None = None
    extra: dict = field(default_factory=dict)
    store_params: dict[int, str] = field(default_factory=dict)
    store_generation: int | None = None

    def restore(self, params, optimizer=None, rng=None, store=None) -> "Checkpoint":
        """Copy saved state back into live objects (in place).

        ``params`` is a list of tensors (``.data`` arrays are overwritten),
        ``optimizer`` anything with ``load_state_dict``, ``rng`` a NumPy
        ``Generator`` whose bit-generator state is replaced.  ``store`` is
        required when the snapshot delegated parameters to an embedding
        store; those tables are read back at the snapshot's generation
        (a verified read — corrupt shards raise).
        """
        if len(params) != len(self.params):
            raise CheckpointError(
                f"checkpoint has {len(self.params)} parameters, "
                f"model has {len(params)}"
            )
        if self.store_params and store is None:
            raise CheckpointError(
                "checkpoint delegates parameters to an embedding store; "
                "restore(store=...) is required"
            )
        for pos, (p, saved) in enumerate(zip(params, self.params)):
            if pos in self.store_params:
                table = self.store_params[pos]
                try:
                    saved = store.load_table(table, self.store_generation)
                except StoreError as exc:
                    raise CheckpointError(
                        f"cannot restore table {table!r} at store generation "
                        f"{self.store_generation}: {exc}"
                    ) from exc
            elif saved is None:  # pragma: no cover - inconsistent archive
                raise CheckpointError(f"parameter {pos} missing from checkpoint")
            if p.data.shape != saved.shape:
                raise CheckpointError(
                    f"parameter {pos} shape mismatch: "
                    f"model {p.data.shape} vs checkpoint {saved.shape}"
                )
            np.copyto(p.data, saved)
        if optimizer is not None and self.optimizer_state is not None:
            optimizer.load_state_dict(self.optimizer_state)
        if rng is not None and self.rng_state is not None:
            rng.bit_generator.state = self.rng_state
        return self


def _split_state(state: dict) -> tuple[dict, dict]:
    """Partition an optimizer state dict into (scalars, array-lists)."""
    scalars: dict = {}
    arrays: dict = {}
    for key, value in state.items():
        if isinstance(value, list) and all(isinstance(a, np.ndarray) for a in value):
            arrays[key] = value
        elif isinstance(value, (int, float, str, bool)) or value is None:
            scalars[key] = value
        else:
            raise CheckpointError(
                f"optimizer state entry {key!r} is neither a scalar nor a "
                "list of arrays"
            )
    return scalars, arrays


def save_checkpoint(
    path: str | Path,
    params,
    optimizer=None,
    step: int = 0,
    rng: np.random.Generator | None = None,
    extra: dict | None = None,
    store=None,
) -> Path:
    """Write one checkpoint archive to ``path`` (atomic) and return it.

    With a durable ``store``, the store is committed *first* (its manifest
    rename is its own atomic commit point) and store-owned parameter
    arrays are recorded by reference instead of serialized.  A crash
    between the two commits leaves either an unreferenced store
    generation (harmless; never restored) or nothing — never a checkpoint
    pointing at a generation that does not exist.
    """
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    meta: dict = {
        "version": _FORMAT_VERSION,
        "step": int(step),
        "num_params": 0,
        "extra": dict(extra or {}),
    }
    durable = store is not None and getattr(store, "durable", False)
    if durable:
        try:
            meta["store_generation"] = int(store.commit(tag=f"ckpt-{int(step)}"))
        except StoreError as exc:
            raise CheckpointError(f"store commit failed for {path}: {exc}") from exc
    store_params: dict[str, str] = {}
    for pos, p in enumerate(params):
        table = store.table_for_array(p.data) if durable else None
        if table is not None:
            store_params[str(pos)] = table
        else:
            arrays[f"param__{pos:04d}"] = np.asarray(p.data)
        meta["num_params"] = pos + 1
    if store_params:
        meta["store_params"] = store_params
    if optimizer is not None:
        scalars, arr_lists = _split_state(optimizer.state_dict())
        meta["optimizer"] = {"type": type(optimizer).__name__, "scalars": scalars,
                             "array_keys": {k: len(v) for k, v in arr_lists.items()}}
        for key, lst in arr_lists.items():
            for pos, arr in enumerate(lst):
                arrays[f"opt__{key}__{pos:04d}"] = arr
    if rng is not None:
        meta["rng_state"] = rng.bit_generator.state
    meta["checksums"] = {key: _array_crc(arr) for key, arr in arrays.items()}
    try:
        blob = json.dumps(meta)
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"checkpoint metadata is not JSON-safe: {exc}") from exc
    arrays["__meta__"] = np.frombuffer(blob.encode("utf-8"), dtype=np.uint8)

    tmp = path.with_suffix(path.suffix + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        os.replace(tmp, path)
    except OSError as exc:
        tmp.unlink(missing_ok=True)
        raise CheckpointError(f"failed to write checkpoint {path}: {exc}") from exc
    return path


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Read a checkpoint archive written by :func:`save_checkpoint`."""
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            if "__meta__" not in archive:
                raise CheckpointError(f"{path} is not a checkpoint archive")
            meta = json.loads(bytes(archive["__meta__"].tobytes()).decode("utf-8"))
            if meta.get("version") not in _KNOWN_VERSIONS:
                raise CheckpointError(
                    f"unsupported checkpoint version {meta.get('version')!r}"
                )
            for key, crc in meta.get("checksums", {}).items():
                if key not in archive:
                    raise CheckpointError(f"{path.name}: array {key!r} missing")
                if _array_crc(archive[key]) != int(crc):
                    raise CheckpointError(
                        f"{path.name}: array {key!r} failed its content "
                        "checksum (bitrot?)"
                    )
            store_params = {
                int(pos): str(table)
                for pos, table in meta.get("store_params", {}).items()
            }
            params: list[np.ndarray | None] = [
                None if pos in store_params else archive[f"param__{pos:04d}"]
                for pos in range(meta["num_params"])
            ]
            optimizer_state = None
            if "optimizer" in meta:
                opt_meta = meta["optimizer"]
                optimizer_state = dict(opt_meta["scalars"])
                optimizer_state["type"] = opt_meta["type"]
                for key, count in opt_meta["array_keys"].items():
                    optimizer_state[key] = [
                        archive[f"opt__{key}__{pos:04d}"] for pos in range(count)
                    ]
            gen = meta.get("store_generation")
            return Checkpoint(
                step=int(meta["step"]),
                params=params,
                optimizer_state=optimizer_state,
                rng_state=meta.get("rng_state"),
                extra=dict(meta.get("extra", {})),
                store_params=store_params,
                store_generation=None if gen is None else int(gen),
            )
    except CheckpointError:
        raise
    except FileNotFoundError:
        raise
    except (KeyError, ValueError, OSError, zipfile.BadZipFile,
            json.JSONDecodeError) as exc:
        raise CheckpointError(f"failed to load checkpoint {path}: {exc}") from exc


class Checkpointer:
    """Periodic checkpointing into a directory, newest-``keep`` retained.

    ``every`` is measured in whatever unit the caller passes as ``step``
    (epochs in :meth:`KGEModel.fit <repro.kge.base.KGEModel.fit>`).

    ``store`` binds a durable embedding store: every save becomes an
    *incremental* checkpoint (store commit of dirty shards + small
    ``.npz`` for everything else), and resume restores store-owned tables
    from the snapshot's recorded generation.  A snapshot whose store
    generation no longer verifies is skipped the same way a corrupt
    ``.npz`` is — resume falls back to the next-newest loadable pair.
    """

    def __init__(
        self,
        directory: str | Path,
        every: int = 1,
        keep: int = 3,
        prefix: str = "ckpt",
        store=None,
    ) -> None:
        if every < 1:
            raise ConfigError("checkpoint interval 'every' must be >= 1")
        if keep < 1:
            raise ConfigError("'keep' must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.every = every
        self.keep = keep
        self.prefix = prefix
        self.store = store

    # ------------------------------------------------------------------ #
    def _path_for(self, step: int) -> Path:
        return self.directory / f"{self.prefix}-{step:08d}.npz"

    def paths(self) -> list[Path]:
        """Existing checkpoint paths, oldest first."""
        found = []
        for p in self.directory.glob(f"{self.prefix}-*.npz"):
            m = _STEP_RE.search(p.name)
            if m:
                found.append((int(m.group(1)), p))
        return [p for __, p in sorted(found)]

    def latest_path(self) -> Path | None:
        paths = self.paths()
        return paths[-1] if paths else None

    # ------------------------------------------------------------------ #
    def save(self, step, params, optimizer=None, rng=None, extra=None) -> Path:
        path = save_checkpoint(
            self._path_for(step), params, optimizer=optimizer, step=step,
            rng=rng, extra=extra, store=self.store,
        )
        self._prune()
        return path

    def maybe_save(self, step, params, optimizer=None, rng=None, extra=None) -> Path | None:
        """Save when ``(step + 1) % every == 0`` (steps are 0-based)."""
        if (step + 1) % self.every != 0:
            return None
        return self.save(step, params, optimizer=optimizer, rng=rng, extra=extra)

    def _prune(self) -> None:
        paths = self.paths()
        for stale in paths[: -self.keep]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    # ------------------------------------------------------------------ #
    def load_latest(self) -> Checkpoint | None:
        """The newest *loadable* checkpoint, or ``None`` for an empty dir.

        A truncated or corrupt file (e.g. the process died mid-write
        outside the atomic-rename path, or the disk ate it) must not abort
        resume: candidates are tried newest-first and unreadable ones are
        skipped.  Only when every existing checkpoint fails to load does a
        :class:`~repro.core.exceptions.CheckpointError` propagate, carrying
        each file's failure.
        """
        paths = self.paths()
        if not paths:
            return None
        failures: list[str] = []
        for path in reversed(paths):
            try:
                checkpoint = load_checkpoint(path)
                self._check_generation(checkpoint, path)
                return checkpoint
            except (CheckpointError, FileNotFoundError) as exc:
                failures.append(f"{path.name}: {exc}")
        raise CheckpointError(
            "no loadable checkpoint in "
            f"{self.directory} ({len(failures)} candidate(s) failed): "
            + "; ".join(failures)
        )

    def _check_generation(self, checkpoint: Checkpoint, path: Path) -> None:
        """A store-backed snapshot is loadable only if its generation is."""
        if not checkpoint.store_params:
            return
        if self.store is None:
            raise CheckpointError(
                f"{path.name} delegates parameters to an embedding store but "
                "this Checkpointer has none bound"
            )
        if checkpoint.store_generation not in self.store.generations():
            raise CheckpointError(
                f"{path.name} refers to store generation "
                f"{checkpoint.store_generation}, which is gone or corrupt"
            )

    def restore_latest(self, params, optimizer=None, rng=None) -> Checkpoint | None:
        """Load and apply the newest restorable checkpoint (or ``None``).

        Like :meth:`load_latest`, but a candidate that fails *at restore
        time* (e.g. its store generation read back corrupt) is also
        skipped in favor of the next-newest one.
        """
        paths = self.paths()
        if not paths:
            return None
        failures: list[str] = []
        for path in reversed(paths):
            try:
                checkpoint = load_checkpoint(path)
                self._check_generation(checkpoint, path)
                return checkpoint.restore(
                    params, optimizer=optimizer, rng=rng, store=self.store
                )
            except (CheckpointError, FileNotFoundError) as exc:
                failures.append(f"{path.name}: {exc}")
        raise CheckpointError(
            "no restorable checkpoint in "
            f"{self.directory} ({len(failures)} candidate(s) failed): "
            + "; ".join(failures)
        )
