"""Snapshot/restore of training state via ``.npz`` archives.

Follows the same conventions as :mod:`repro.core.io` — one compressed
``.npz`` per checkpoint, arrays stored natively plus a ``__meta__`` JSON
blob for scalars.  A checkpoint captures everything an iterative ``fit``
loop needs to resume *bitwise identically*:

* parameter arrays (in ``Module.parameters()`` order),
* optimizer state (via ``Optimizer.state_dict()``),
* the RNG bit-generator state (so the resumed run replays the exact
  permutation/negative-sampling stream the uninterrupted run would have),
* a ``step`` counter and a JSON-safe ``extra`` dict (e.g. loss history).

Sparse-gradient training changes nothing here: the lazy optimizers in
:mod:`repro.autograd.optim` keep full-size dense state arrays (velocity,
accumulators, moments), so ``state_dict`` layouts — and therefore the
checkpoint format — are identical whether a run uses sparse row updates
or ``dense_updates=True``, and snapshots from either mode resume the
other.

:class:`Checkpointer` adds the policy layer: periodic saves, atomic
writes (tmp file + rename), pruning to the newest ``keep`` snapshots, and
resume-from-latest.  All failure modes raise
:class:`~repro.core.exceptions.CheckpointError`.
"""

from __future__ import annotations

import json
import os
import re
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.exceptions import CheckpointError, ConfigError

__all__ = ["Checkpoint", "save_checkpoint", "load_checkpoint", "Checkpointer"]

_FORMAT_VERSION = 1
_STEP_RE = re.compile(r"-(\d+)\.npz$")


@dataclass
class Checkpoint:
    """In-memory form of one saved training snapshot."""

    step: int
    params: list[np.ndarray]
    optimizer_state: dict | None = None
    rng_state: dict | None = None
    extra: dict = field(default_factory=dict)

    def restore(self, params, optimizer=None, rng=None) -> "Checkpoint":
        """Copy saved state back into live objects (in place).

        ``params`` is a list of tensors (``.data`` arrays are overwritten),
        ``optimizer`` anything with ``load_state_dict``, ``rng`` a NumPy
        ``Generator`` whose bit-generator state is replaced.
        """
        if len(params) != len(self.params):
            raise CheckpointError(
                f"checkpoint has {len(self.params)} parameters, "
                f"model has {len(params)}"
            )
        for pos, (p, saved) in enumerate(zip(params, self.params)):
            if p.data.shape != saved.shape:
                raise CheckpointError(
                    f"parameter {pos} shape mismatch: "
                    f"model {p.data.shape} vs checkpoint {saved.shape}"
                )
            np.copyto(p.data, saved)
        if optimizer is not None and self.optimizer_state is not None:
            optimizer.load_state_dict(self.optimizer_state)
        if rng is not None and self.rng_state is not None:
            rng.bit_generator.state = self.rng_state
        return self


def _split_state(state: dict) -> tuple[dict, dict]:
    """Partition an optimizer state dict into (scalars, array-lists)."""
    scalars: dict = {}
    arrays: dict = {}
    for key, value in state.items():
        if isinstance(value, list) and all(isinstance(a, np.ndarray) for a in value):
            arrays[key] = value
        elif isinstance(value, (int, float, str, bool)) or value is None:
            scalars[key] = value
        else:
            raise CheckpointError(
                f"optimizer state entry {key!r} is neither a scalar nor a "
                "list of arrays"
            )
    return scalars, arrays


def save_checkpoint(
    path: str | Path,
    params,
    optimizer=None,
    step: int = 0,
    rng: np.random.Generator | None = None,
    extra: dict | None = None,
) -> Path:
    """Write one checkpoint archive to ``path`` (atomic) and return it."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    meta: dict = {
        "version": _FORMAT_VERSION,
        "step": int(step),
        "num_params": 0,
        "extra": dict(extra or {}),
    }
    for pos, p in enumerate(params):
        arrays[f"param__{pos:04d}"] = np.asarray(p.data)
        meta["num_params"] = pos + 1
    if optimizer is not None:
        scalars, arr_lists = _split_state(optimizer.state_dict())
        meta["optimizer"] = {"type": type(optimizer).__name__, "scalars": scalars,
                             "array_keys": {k: len(v) for k, v in arr_lists.items()}}
        for key, lst in arr_lists.items():
            for pos, arr in enumerate(lst):
                arrays[f"opt__{key}__{pos:04d}"] = arr
    if rng is not None:
        meta["rng_state"] = rng.bit_generator.state
    try:
        blob = json.dumps(meta)
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"checkpoint metadata is not JSON-safe: {exc}") from exc
    arrays["__meta__"] = np.frombuffer(blob.encode("utf-8"), dtype=np.uint8)

    tmp = path.with_suffix(path.suffix + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        os.replace(tmp, path)
    except OSError as exc:
        tmp.unlink(missing_ok=True)
        raise CheckpointError(f"failed to write checkpoint {path}: {exc}") from exc
    return path


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Read a checkpoint archive written by :func:`save_checkpoint`."""
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            if "__meta__" not in archive:
                raise CheckpointError(f"{path} is not a checkpoint archive")
            meta = json.loads(bytes(archive["__meta__"].tobytes()).decode("utf-8"))
            if meta.get("version") != _FORMAT_VERSION:
                raise CheckpointError(
                    f"unsupported checkpoint version {meta.get('version')!r}"
                )
            params = [
                archive[f"param__{pos:04d}"] for pos in range(meta["num_params"])
            ]
            optimizer_state = None
            if "optimizer" in meta:
                opt_meta = meta["optimizer"]
                optimizer_state = dict(opt_meta["scalars"])
                optimizer_state["type"] = opt_meta["type"]
                for key, count in opt_meta["array_keys"].items():
                    optimizer_state[key] = [
                        archive[f"opt__{key}__{pos:04d}"] for pos in range(count)
                    ]
            return Checkpoint(
                step=int(meta["step"]),
                params=params,
                optimizer_state=optimizer_state,
                rng_state=meta.get("rng_state"),
                extra=dict(meta.get("extra", {})),
            )
    except CheckpointError:
        raise
    except FileNotFoundError:
        raise
    except (KeyError, ValueError, OSError, zipfile.BadZipFile,
            json.JSONDecodeError) as exc:
        raise CheckpointError(f"failed to load checkpoint {path}: {exc}") from exc


class Checkpointer:
    """Periodic checkpointing into a directory, newest-``keep`` retained.

    ``every`` is measured in whatever unit the caller passes as ``step``
    (epochs in :meth:`KGEModel.fit <repro.kge.base.KGEModel.fit>`).
    """

    def __init__(
        self,
        directory: str | Path,
        every: int = 1,
        keep: int = 3,
        prefix: str = "ckpt",
    ) -> None:
        if every < 1:
            raise ConfigError("checkpoint interval 'every' must be >= 1")
        if keep < 1:
            raise ConfigError("'keep' must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.every = every
        self.keep = keep
        self.prefix = prefix

    # ------------------------------------------------------------------ #
    def _path_for(self, step: int) -> Path:
        return self.directory / f"{self.prefix}-{step:08d}.npz"

    def paths(self) -> list[Path]:
        """Existing checkpoint paths, oldest first."""
        found = []
        for p in self.directory.glob(f"{self.prefix}-*.npz"):
            m = _STEP_RE.search(p.name)
            if m:
                found.append((int(m.group(1)), p))
        return [p for __, p in sorted(found)]

    def latest_path(self) -> Path | None:
        paths = self.paths()
        return paths[-1] if paths else None

    # ------------------------------------------------------------------ #
    def save(self, step, params, optimizer=None, rng=None, extra=None) -> Path:
        path = save_checkpoint(
            self._path_for(step), params, optimizer=optimizer, step=step,
            rng=rng, extra=extra,
        )
        self._prune()
        return path

    def maybe_save(self, step, params, optimizer=None, rng=None, extra=None) -> Path | None:
        """Save when ``(step + 1) % every == 0`` (steps are 0-based)."""
        if (step + 1) % self.every != 0:
            return None
        return self.save(step, params, optimizer=optimizer, rng=rng, extra=extra)

    def _prune(self) -> None:
        paths = self.paths()
        for stale in paths[: -self.keep]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    # ------------------------------------------------------------------ #
    def load_latest(self) -> Checkpoint | None:
        """The newest *loadable* checkpoint, or ``None`` for an empty dir.

        A truncated or corrupt file (e.g. the process died mid-write
        outside the atomic-rename path, or the disk ate it) must not abort
        resume: candidates are tried newest-first and unreadable ones are
        skipped.  Only when every existing checkpoint fails to load does a
        :class:`~repro.core.exceptions.CheckpointError` propagate, carrying
        each file's failure.
        """
        paths = self.paths()
        if not paths:
            return None
        failures: list[str] = []
        for path in reversed(paths):
            try:
                return load_checkpoint(path)
            except (CheckpointError, FileNotFoundError) as exc:
                failures.append(f"{path.name}: {exc}")
        raise CheckpointError(
            "no loadable checkpoint in "
            f"{self.directory} ({len(failures)} candidate(s) failed): "
            + "; ".join(failures)
        )

    def restore_latest(self, params, optimizer=None, rng=None) -> Checkpoint | None:
        """Load and apply the newest checkpoint; returns it (or ``None``)."""
        checkpoint = self.load_latest()
        if checkpoint is not None:
            checkpoint.restore(params, optimizer=optimizer, rng=rng)
        return checkpoint
