"""Deterministic fault injection for exercising the resilience layer.

Every guard in :mod:`repro.runtime` must be testable without flaky sleeps
or monkey-patched randomness, so faults are *planned*: a
:class:`FaultPlan` maps global step indices to fault kinds, either listed
explicitly or drawn once from a seeded RNG.  A :class:`FaultInjector`
executes the plan inside a training loop — called with the current step
and parameter list right before ``optimizer.step()``:

* ``"nan_grad"`` — overwrite every gradient with NaN (exercises the
  ``skip_nonfinite`` policies and :class:`~repro.runtime.guards.DivergenceDetector`),
* ``"raise"`` — raise :class:`InjectedFault` mid-epoch (exercises retry,
  panel isolation, and checkpoint/resume),
* ``"stall"`` — invoke the injector's ``sleep`` callable for
  ``Fault.seconds`` (exercises time budgets; tests pass a fake clock's
  ``advance`` so nothing actually sleeps).

The serving layer (:mod:`repro.serving`) reuses the same plan/injector
machinery with *serving-shaped* faults, where ``step`` is the global
request index instead of the training step:

* ``"latency"`` — invoke ``sleep`` for ``Fault.seconds`` while a model is
  scoring (exercises deadlines and load shedding),
* ``"exception"`` — raise :class:`InjectedFault` from inside a model call
  (exercises circuit breakers and fallback chains),
* ``"nan_scores"`` — poison the model's score vector with NaN (exercises
  :func:`~repro.runtime.guards.validate_scores` at the serving boundary),
* ``"index_stale"`` — raise
  :class:`~repro.core.exceptions.IndexStaleError` from inside the model
  call, as a live ANN index that no longer matches its embeddings would
  (exercises the candidate rung's typed degradation to the exact rung).

Training hooks ignore serving kinds and vice versa, so one plan can drive
both layers.

The durable embedding store (:mod:`repro.store`) adds *IO-shaped* faults,
where ``step`` is the store's global IO-operation index (every byte-level
write/rename the store performs advances it, see
:class:`repro.store.io.StoreIO`):

* ``"torn_write"`` — only a prefix of the payload reaches the file, then
  the process "dies" (:class:`InjectedCrash`) — a torn page,
* ``"bitrot"`` — the write completes but one byte is silently flipped
  (latent media corruption; discovered only by checksum verification),
* ``"crash_before_rename"`` — the process dies with the temp file written
  but the atomic rename not yet issued,
* ``"crash_after_rename"`` — the rename is durable, then the process dies
  (everything after the commit point is lost),
* ``"fsync_fail"`` — ``fsync`` raises ``OSError`` (the write's durability
  is unknown); unlike a crash this is *returned* to the store, which must
  abort the commit cleanly.

IO faults are applied by :class:`repro.store.io.FaultingStoreIO`, which
wraps these kinds around the store's write hooks; the crash-matrix
harness (:mod:`repro.store.harness`) sweeps them across every IO op of a
train→checkpoint→promote scenario.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.core.exceptions import ConfigError, IndexStaleError
from repro.core.rng import ensure_rng
from repro.runtime.guards import raw_grad

__all__ = [
    "FAULT_KINDS",
    "TRAINING_FAULT_KINDS",
    "SERVING_FAULT_KINDS",
    "IO_FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "InjectedCrash",
]

TRAINING_FAULT_KINDS: tuple[str, ...] = ("nan_grad", "raise", "stall")
SERVING_FAULT_KINDS: tuple[str, ...] = (
    "latency",
    "exception",
    "nan_scores",
    "index_stale",
)
IO_FAULT_KINDS: tuple[str, ...] = (
    "torn_write",
    "bitrot",
    "crash_before_rename",
    "crash_after_rename",
    "fsync_fail",
)
FAULT_KINDS: tuple[str, ...] = (
    TRAINING_FAULT_KINDS + SERVING_FAULT_KINDS + IO_FAULT_KINDS
)


class InjectedFault(RuntimeError):
    """Raised by a planned ``"raise"`` fault (deliberately *not* a KgrecError,
    mimicking an arbitrary crash escaping a model's ``fit``)."""


class InjectedCrash(RuntimeError):
    """Simulated process death in the middle of a store IO operation.

    Deliberately not a KgrecError: nothing in the write path may catch it,
    exactly as nothing catches SIGKILL.  The durability harness catches it
    at the very top, discards every in-memory object, and re-opens the
    store from disk — the software equivalent of pulling the plug.
    """


@dataclass(frozen=True)
class Fault:
    """One planned fault at a global step index."""

    step: int
    kind: str
    seconds: float = 0.0  # stall duration; ignored for other kinds

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if self.step < 0:
            raise ConfigError("fault step must be >= 0")


class FaultPlan:
    """An immutable schedule of faults, queryable by step."""

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self._by_step: dict[int, list[Fault]] = {}
        for fault in faults:
            self._by_step.setdefault(fault.step, []).append(fault)

    @classmethod
    def random(
        cls,
        num_steps: int,
        rate: float = 0.05,
        kinds: tuple[str, ...] = ("nan_grad",),
        seed: int = 0,
        seconds: float = 1.0,
    ) -> "FaultPlan":
        """A seeded random plan: each step faults with probability ``rate``."""
        if not 0.0 <= rate <= 1.0:
            raise ConfigError("rate must lie in [0, 1]")
        rng = ensure_rng(seed)
        faults = []
        for step in range(num_steps):
            if rng.random() < rate:
                kind = kinds[int(rng.integers(len(kinds)))]
                faults.append(Fault(step=step, kind=kind, seconds=seconds))
        return cls(faults)

    def at(self, step: int) -> list[Fault]:
        return self._by_step.get(step, [])

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_step.values())

    def __iter__(self):
        for step in sorted(self._by_step):
            yield from self._by_step[step]


class FaultInjector:
    """Executes a :class:`FaultPlan` inside a training loop.

    Call :meth:`before_step` with the global step index and the parameter
    list right after ``backward()`` and before ``optimizer.step()``.
    ``injected`` records every fault that fired, in order.
    """

    def __init__(
        self,
        plan: FaultPlan,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.plan = plan
        self.sleep = sleep
        self.injected: list[Fault] = []

    def before_step(self, step: int, params=()) -> None:
        for fault in self.plan.at(step):
            if fault.kind not in TRAINING_FAULT_KINDS:
                continue
            self.injected.append(fault)
            if fault.kind == "nan_grad":
                for p in params:
                    g = raw_grad(p)
                    if g is None:
                        continue
                    # Poison the stored entries — for sparse row gradients
                    # that is every touched row, without densifying.
                    (g if isinstance(g, np.ndarray) else g.vals)[...] = np.nan
            elif fault.kind == "stall":
                self.sleep(fault.seconds)
            else:  # "raise"
                raise InjectedFault(f"injected fault at step {step}")

    # ------------------------------------------------------------------ #
    # serving-shaped hooks (step = global request index)
    # ------------------------------------------------------------------ #
    def on_request(self, step: int) -> None:
        """Fire ``latency``/``exception`` faults planned for request ``step``.

        Call from inside the protected model call, so the injected delay is
        attributed to scoring (deadline checks see it) and the injected
        exception escapes the model, not the service.
        """
        for fault in self.plan.at(step):
            if fault.kind == "latency":
                self.injected.append(fault)
                self.sleep(fault.seconds)
            elif fault.kind == "exception":
                self.injected.append(fault)
                raise InjectedFault(f"injected serving fault at request {step}")
            elif fault.kind == "index_stale":
                self.injected.append(fault)
                raise IndexStaleError(
                    f"injected stale ANN index at request {step}"
                )

    # ------------------------------------------------------------------ #
    # IO-shaped hooks (step = the store's global IO-operation index)
    # ------------------------------------------------------------------ #
    def io_faults(self, step: int) -> list["Fault"]:
        """IO faults planned for store IO op ``step`` (recorded as injected).

        The *semantics* of each kind live in
        :class:`repro.store.io.FaultingStoreIO`, which consults this hook
        from inside the store's write/rename primitives; this method only
        selects and records them, keeping the plan/injector machinery the
        single source of truth for what fired when.
        """
        faults = [f for f in self.plan.at(step) if f.kind in IO_FAULT_KINDS]
        self.injected.extend(faults)
        return faults

    def corrupt_scores(self, step: int, scores: np.ndarray) -> np.ndarray:
        """Apply any ``nan_scores`` fault planned for request ``step``."""
        for fault in self.plan.at(step):
            if fault.kind == "nan_scores":
                self.injected.append(fault)
                scores = np.asarray(scores, dtype=np.float64).copy()
                scores[...] = np.nan
        return scores
