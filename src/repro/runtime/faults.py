"""Deterministic fault injection for exercising the resilience layer.

Every guard in :mod:`repro.runtime` must be testable without flaky sleeps
or monkey-patched randomness, so faults are *planned*: a
:class:`FaultPlan` maps global step indices to fault kinds, either listed
explicitly or drawn once from a seeded RNG.  A :class:`FaultInjector`
executes the plan inside a training loop — called with the current step
and parameter list right before ``optimizer.step()``:

* ``"nan_grad"`` — overwrite every gradient with NaN (exercises the
  ``skip_nonfinite`` policies and :class:`~repro.runtime.guards.DivergenceDetector`),
* ``"raise"`` — raise :class:`InjectedFault` mid-epoch (exercises retry,
  panel isolation, and checkpoint/resume),
* ``"stall"`` — invoke the injector's ``sleep`` callable for
  ``Fault.seconds`` (exercises time budgets; tests pass a fake clock's
  ``advance`` so nothing actually sleeps).

The serving layer (:mod:`repro.serving`) reuses the same plan/injector
machinery with *serving-shaped* faults, where ``step`` is the global
request index instead of the training step:

* ``"latency"`` — invoke ``sleep`` for ``Fault.seconds`` while a model is
  scoring (exercises deadlines and load shedding),
* ``"exception"`` — raise :class:`InjectedFault` from inside a model call
  (exercises circuit breakers and fallback chains),
* ``"nan_scores"`` — poison the model's score vector with NaN (exercises
  :func:`~repro.runtime.guards.validate_scores` at the serving boundary),
* ``"index_stale"`` — raise
  :class:`~repro.core.exceptions.IndexStaleError` from inside the model
  call, as a live ANN index that no longer matches its embeddings would
  (exercises the candidate rung's typed degradation to the exact rung).

Training hooks ignore serving kinds and vice versa, so one plan can drive
both layers.

The durable embedding store (:mod:`repro.store`) adds *IO-shaped* faults,
where ``step`` is the store's global IO-operation index (every byte-level
write/rename the store performs advances it, see
:class:`repro.store.io.StoreIO`):

* ``"torn_write"`` — only a prefix of the payload reaches the file, then
  the process "dies" (:class:`InjectedCrash`) — a torn page,
* ``"bitrot"`` — the write completes but one byte is silently flipped
  (latent media corruption; discovered only by checksum verification),
* ``"crash_before_rename"`` — the process dies with the temp file written
  but the atomic rename not yet issued,
* ``"crash_after_rename"`` — the rename is durable, then the process dies
  (everything after the commit point is lost),
* ``"fsync_fail"`` — ``fsync`` raises ``OSError`` (the write's durability
  is unknown); unlike a crash this is *returned* to the store, which must
  abort the commit cleanly.

IO faults are applied by :class:`repro.store.io.FaultingStoreIO`, which
wraps these kinds around the store's write hooks; the crash-matrix
harness (:mod:`repro.store.harness`) sweeps them across every IO op of a
train→checkpoint→promote scenario.

The online learning loop (:mod:`repro.online`) adds *churn-shaped* faults,
where ``step`` is the global interaction-batch index of the stream:

* ``"poison_batch"`` — the arriving interaction batch is corrupted (NaN
  weights, negated item ids), as a broken upstream event feed would
  deliver; the shadow trainer must quarantine it with a typed
  :class:`~repro.core.exceptions.OnlineUpdateError`, never train on it,
* ``"trainer_stall"`` — the shadow trainer stalls for ``Fault.seconds``
  before applying the batch (exercises freshness under a lagging trainer),
* ``"commit_crash"`` — the process dies between the shadow store's shard
  commit and the manifest rename (the loop arms the store IO's
  manifest-crash hook; recovery must land on the previous generation),
* ``"sync_fail"`` — ``sync_index`` raises mid-promotion, so the candidate
  is rejected with the previous live model untouched,
* ``"canary_regress"`` — the candidate scores NaN on the canary probe and
  the promotion is rejected,
* ``"late_regress"`` — the candidate passes its canary but regresses
  immediately after the swap; the loop's post-promotion watch must detect
  the degradation and roll the live model back.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.core.exceptions import ConfigError, IndexStaleError
from repro.core.rng import ensure_rng
from repro.runtime.guards import raw_grad

__all__ = [
    "FAULT_KINDS",
    "TRAINING_FAULT_KINDS",
    "SERVING_FAULT_KINDS",
    "IO_FAULT_KINDS",
    "ONLINE_FAULT_KINDS",
    "PROMOTION_FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "InjectedCrash",
]

TRAINING_FAULT_KINDS: tuple[str, ...] = ("nan_grad", "raise", "stall")
SERVING_FAULT_KINDS: tuple[str, ...] = (
    "latency",
    "exception",
    "nan_scores",
    "index_stale",
)
IO_FAULT_KINDS: tuple[str, ...] = (
    "torn_write",
    "bitrot",
    "crash_before_rename",
    "crash_after_rename",
    "fsync_fail",
)
ONLINE_FAULT_KINDS: tuple[str, ...] = (
    "poison_batch",
    "trainer_stall",
    "commit_crash",
    "sync_fail",
    "canary_regress",
    "late_regress",
)
#: The subset of online kinds that fire at a commit/promote cycle rather
#: than at batch arrival (the loop consults these once per cycle).
PROMOTION_FAULT_KINDS: tuple[str, ...] = (
    "commit_crash",
    "sync_fail",
    "canary_regress",
    "late_regress",
)
FAULT_KINDS: tuple[str, ...] = (
    TRAINING_FAULT_KINDS + SERVING_FAULT_KINDS + IO_FAULT_KINDS
    + ONLINE_FAULT_KINDS
)


class InjectedFault(RuntimeError):
    """Raised by a planned ``"raise"`` fault (deliberately *not* a KgrecError,
    mimicking an arbitrary crash escaping a model's ``fit``)."""


class InjectedCrash(RuntimeError):
    """Simulated process death in the middle of a store IO operation.

    Deliberately not a KgrecError: nothing in the write path may catch it,
    exactly as nothing catches SIGKILL.  The durability harness catches it
    at the very top, discards every in-memory object, and re-opens the
    store from disk — the software equivalent of pulling the plug.
    """


@dataclass(frozen=True)
class Fault:
    """One planned fault at a global step index."""

    step: int
    kind: str
    seconds: float = 0.0  # stall duration; ignored for other kinds

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if self.step < 0:
            raise ConfigError("fault step must be >= 0")


class FaultPlan:
    """An immutable schedule of faults, queryable by step."""

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self._by_step: dict[int, list[Fault]] = {}
        for fault in faults:
            self._by_step.setdefault(fault.step, []).append(fault)

    @classmethod
    def random(
        cls,
        num_steps: int,
        rate: float = 0.05,
        kinds: tuple[str, ...] = ("nan_grad",),
        seed: int = 0,
        seconds: float = 1.0,
    ) -> "FaultPlan":
        """A seeded random plan: each step faults with probability ``rate``."""
        if not 0.0 <= rate <= 1.0:
            raise ConfigError("rate must lie in [0, 1]")
        rng = ensure_rng(seed)
        faults = []
        for step in range(num_steps):
            if rng.random() < rate:
                kind = kinds[int(rng.integers(len(kinds)))]
                faults.append(Fault(step=step, kind=kind, seconds=seconds))
        return cls(faults)

    def at(self, step: int) -> list[Fault]:
        return self._by_step.get(step, [])

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_step.values())

    def __iter__(self):
        for step in sorted(self._by_step):
            yield from self._by_step[step]


class FaultInjector:
    """Executes a :class:`FaultPlan` inside a training loop.

    Call :meth:`before_step` with the global step index and the parameter
    list right after ``backward()`` and before ``optimizer.step()``.
    ``injected`` records every fault that fired, in order.
    """

    def __init__(
        self,
        plan: FaultPlan,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.plan = plan
        self.sleep = sleep
        self.injected: list[Fault] = []

    def before_step(self, step: int, params=()) -> None:
        for fault in self.plan.at(step):
            if fault.kind not in TRAINING_FAULT_KINDS:
                continue
            self.injected.append(fault)
            if fault.kind == "nan_grad":
                for p in params:
                    g = raw_grad(p)
                    if g is None:
                        continue
                    # Poison the stored entries — for sparse row gradients
                    # that is every touched row, without densifying.
                    (g if isinstance(g, np.ndarray) else g.vals)[...] = np.nan
            elif fault.kind == "stall":
                self.sleep(fault.seconds)
            else:  # "raise"
                raise InjectedFault(f"injected fault at step {step}")

    # ------------------------------------------------------------------ #
    # serving-shaped hooks (step = global request index)
    # ------------------------------------------------------------------ #
    def on_request(self, step: int) -> None:
        """Fire ``latency``/``exception`` faults planned for request ``step``.

        Call from inside the protected model call, so the injected delay is
        attributed to scoring (deadline checks see it) and the injected
        exception escapes the model, not the service.
        """
        for fault in self.plan.at(step):
            if fault.kind == "latency":
                self.injected.append(fault)
                self.sleep(fault.seconds)
            elif fault.kind == "exception":
                self.injected.append(fault)
                raise InjectedFault(f"injected serving fault at request {step}")
            elif fault.kind == "index_stale":
                self.injected.append(fault)
                raise IndexStaleError(
                    f"injected stale ANN index at request {step}"
                )

    # ------------------------------------------------------------------ #
    # IO-shaped hooks (step = the store's global IO-operation index)
    # ------------------------------------------------------------------ #
    def io_faults(self, step: int) -> list["Fault"]:
        """IO faults planned for store IO op ``step`` (recorded as injected).

        The *semantics* of each kind live in
        :class:`repro.store.io.FaultingStoreIO`, which consults this hook
        from inside the store's write/rename primitives; this method only
        selects and records them, keeping the plan/injector machinery the
        single source of truth for what fired when.
        """
        faults = [f for f in self.plan.at(step) if f.kind in IO_FAULT_KINDS]
        self.injected.extend(faults)
        return faults

    def corrupt_scores(self, step: int, scores: np.ndarray) -> np.ndarray:
        """Apply any ``nan_scores`` fault planned for request ``step``."""
        for fault in self.plan.at(step):
            if fault.kind == "nan_scores":
                self.injected.append(fault)
                scores = np.asarray(scores, dtype=np.float64).copy()
                scores[...] = np.nan
        return scores

    # ------------------------------------------------------------------ #
    # online-loop hooks (step = global interaction-batch index)
    # ------------------------------------------------------------------ #
    def on_online_batch(self, step: int) -> None:
        """Fire any ``trainer_stall`` fault planned for batch ``step``."""
        for fault in self.plan.at(step):
            if fault.kind == "trainer_stall":
                self.injected.append(fault)
                self.sleep(fault.seconds)

    def corrupt_interactions(
        self, step: int, users: np.ndarray, items: np.ndarray,
        weights: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Apply any ``poison_batch`` fault planned for batch ``step``.

        The corruption is the shape a broken upstream feed produces: every
        weight becomes NaN and the item ids are negated — both violations
        the shadow trainer's batch validation must catch and quarantine.
        """
        for fault in self.plan.at(step):
            if fault.kind == "poison_batch":
                self.injected.append(fault)
                weights = np.full(np.asarray(weights).shape, np.nan)
                items = -(np.asarray(items, dtype=np.int64) + 1)
        return users, items, weights

    def promotion_faults(self, step: int) -> list["Fault"]:
        """Promotion-cycle faults planned for batch ``step`` (recorded).

        The *semantics* live in :mod:`repro.online.loop`, which arms the
        store IO's manifest-crash hook (``commit_crash``) or wraps the
        candidate model (``sync_fail`` / ``canary_regress`` /
        ``late_regress``); this method only selects and records them,
        keeping the plan/injector machinery the single source of truth.
        """
        faults = [
            f for f in self.plan.at(step) if f.kind in PROMOTION_FAULT_KINDS
        ]
        self.injected.extend(faults)
        return faults
