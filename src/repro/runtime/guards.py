"""Numerical guards for gradient-driven training loops.

The functions here operate on anything with ``.data`` / ``.grad`` NumPy
array attributes (``autograd.Tensor``/``nn.Parameter``), so the autograd
package can depend on this module without a cycle.  Gradients may also be
row-sparse (:class:`repro.autograd.sparse.SparseGrad`, duck-typed here to
avoid the import cycle): every guard then inspects only the stored rows —
after coalescing, so duplicate-row sums see exactly what the dense
gradient would contain — and never materializes the dense table.  Three
layers of protection:

* **Gradient hygiene** — :func:`has_nonfinite_grad`,
  :func:`zero_nonfinite_grads`, and global-norm :func:`clip_grad_norm`
  keep a single exploding batch from destroying the parameters.
* **Parameter hygiene** — :func:`check_finite_params` catches corruption
  *after* it happened (e.g. a bad update that slipped through).
* **Loss watching** — :class:`DivergenceDetector` observes the loss series
  and raises :class:`~repro.core.exceptions.TrainingDivergedError` once
  the run is beyond saving, instead of letting it burn epochs on NaNs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import ConfigError, TrainingDivergedError

__all__ = [
    "raw_grad",
    "grad_norm",
    "clip_grad_norm",
    "has_nonfinite_grad",
    "zero_nonfinite_grads",
    "check_finite_params",
    "validate_scores",
    "ScoreReport",
    "NONFINITE_POLICIES",
    "DivergenceDetector",
]

#: Valid values for the optimizers' ``skip_nonfinite`` option.
NONFINITE_POLICIES: tuple[str, ...] = ("off", "skip", "zero", "raise")


def raw_grad(p):
    """The gradient in raw form: dense array, sparse rows, or ``None``.

    Prefers ``.raw_grad`` (autograd tensors, which may hold a sparse row
    gradient) over ``.grad`` so guards never force densification.
    """
    return p.raw_grad if hasattr(p, "raw_grad") else p.grad


def _grad_entries(grad) -> np.ndarray:
    """The array of gradient entries to inspect: the dense array itself, or
    a sparse grad's coalesced rows (duplicate rows summed first, so the
    inspected values match the dense equivalent)."""
    if isinstance(grad, np.ndarray):
        return grad
    return grad.coalesce().vals


def grad_norm(params) -> float:
    """Global L2 norm over all gradients (params without grads contribute 0)."""
    total = 0.0
    for p in params:
        g = raw_grad(p)
        if g is not None:
            entries = _grad_entries(g)
            total += float(np.sum(entries * entries))
    return math.sqrt(total)


def clip_grad_norm(params, max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.  A non-finite norm leaves gradients
    untouched (the nonfinite policy, not clipping, decides what happens).
    """
    if max_norm <= 0:
        raise ConfigError("max_grad_norm must be positive")
    norm = grad_norm(params)
    if math.isfinite(norm) and norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            g = raw_grad(p)
            if g is not None:
                _grad_entries(g)[...] *= scale
    return norm


def has_nonfinite_grad(params) -> bool:
    """Whether any gradient contains NaN or +/-Inf."""
    for p in params:
        g = raw_grad(p)
        if g is not None and not np.isfinite(_grad_entries(g)).all():
            return True
    return False


def zero_nonfinite_grads(params) -> int:
    """Replace NaN/Inf gradient entries with 0 in place; returns entry count."""
    repaired = 0
    for p in params:
        g = raw_grad(p)
        if g is None:
            continue
        entries = _grad_entries(g)
        bad = ~np.isfinite(entries)
        if bad.any():
            repaired += int(bad.sum())
            entries[bad] = 0.0
    return repaired


def check_finite_params(params, context: str = "") -> None:
    """Raise :class:`TrainingDivergedError` if any parameter is non-finite."""
    for pos, p in enumerate(params):
        if not np.isfinite(p.data).all():
            where = f" during {context}" if context else ""
            raise TrainingDivergedError(
                f"parameter {pos} contains non-finite values{where}"
            )


@dataclass(frozen=True)
class ScoreReport:
    """Structured verdict on one ``score_all`` output vector.

    ``ok`` is true iff the array is 1-d with the expected length and every
    entry is finite.  The counts let callers distinguish a model that
    produced a few NaNs from one that returned garbage wholesale.
    ``num_scored`` is the vector length actually validated: ``None`` for a
    full-catalog vector, the candidate count for a candidate-subset
    validation (the ANN serving rung).
    """

    ok: bool
    expected_items: int
    actual_shape: tuple[int, ...]
    num_nan: int = 0
    num_inf: int = 0
    reason: str = ""
    num_scored: int | None = None

    def describe(self) -> str:
        if not self.ok:
            return self.reason
        if self.num_scored is not None:
            return (
                f"ok ({self.num_scored} finite candidate scores over "
                f"{self.expected_items} items)"
            )
        return f"ok ({self.expected_items} finite scores)"


def validate_scores(scores, num_items: int, expected_indices=None) -> ScoreReport:
    """Check a ``score_all`` output: 1-d, ``num_items`` long, all finite.

    With ``expected_indices`` the check switches to *candidate-subset*
    mode (the ANN retrieval rung scores only a candidate set, not the
    full catalog): ``scores`` must be 1-d of exactly that length and all
    finite, and the indices themselves must be unique integers inside
    ``[0, num_items)`` — so a short vector paired with its index set is a
    valid partial scoring, while a short vector alone still reads as
    corruption.

    Never raises — returns a :class:`ScoreReport` so both the serving
    boundary and the hot-swap canary probe can decide policy themselves.
    """
    arr = np.asarray(scores)
    shape = tuple(int(s) for s in arr.shape)
    if expected_indices is not None:
        idx = np.asarray(expected_indices)
        if idx.ndim != 1 or idx.size < 1:
            return ScoreReport(
                ok=False, expected_items=num_items, actual_shape=shape,
                reason=f"expected a non-empty 1-d candidate set, got shape "
                f"{tuple(int(s) for s in idx.shape)}",
            )
        if not np.issubdtype(idx.dtype, np.integer):
            return ScoreReport(
                ok=False, expected_items=num_items, actual_shape=shape,
                reason=f"candidate indices must be integers, got dtype {idx.dtype}",
            )
        if idx.min() < 0 or idx.max() >= num_items:
            return ScoreReport(
                ok=False, expected_items=num_items, actual_shape=shape,
                reason=f"candidate indices out of range for {num_items} items "
                f"(min {int(idx.min())}, max {int(idx.max())})",
            )
        if np.unique(idx).size != idx.size:
            return ScoreReport(
                ok=False, expected_items=num_items, actual_shape=shape,
                reason="candidate indices contain duplicates",
            )
        expected_shape = (int(idx.size),)
    else:
        expected_shape = (num_items,)
    if arr.ndim != 1 or shape != expected_shape:
        return ScoreReport(
            ok=False, expected_items=num_items, actual_shape=shape,
            reason=f"expected shape {expected_shape}, got {shape}",
        )
    if not np.issubdtype(arr.dtype, np.number):
        return ScoreReport(
            ok=False, expected_items=num_items, actual_shape=shape,
            reason=f"expected numeric scores, got dtype {arr.dtype}",
        )
    finite = np.isfinite(arr)
    if not finite.all():
        num_nan = int(np.isnan(arr).sum())
        num_inf = int(np.isinf(arr).sum())
        return ScoreReport(
            ok=False, expected_items=num_items, actual_shape=shape,
            num_nan=num_nan, num_inf=num_inf,
            reason=f"non-finite scores: {num_nan} NaN, {num_inf} Inf",
        )
    return ScoreReport(
        ok=True, expected_items=num_items, actual_shape=shape,
        num_scored=None if expected_indices is None else int(arr.size),
    )


class DivergenceDetector:
    """Watches a loss series and raises once training has diverged.

    An update is *bad* when the loss is non-finite, or when it exceeds
    ``growth_factor`` times the best finite loss seen so far (with ``floor``
    guarding against spurious trips when the best loss is near zero).
    ``patience`` consecutive bad updates raise
    :class:`~repro.core.exceptions.TrainingDivergedError`; any good update
    resets the streak.

    Use as a passthrough: ``loss = detector.update(loss)``.
    """

    def __init__(
        self,
        patience: int = 5,
        growth_factor: float = 10.0,
        floor: float = 1e-3,
    ) -> None:
        if patience < 1:
            raise ConfigError("patience must be >= 1")
        if growth_factor <= 1.0:
            raise ConfigError("growth_factor must be > 1")
        self.patience = patience
        self.growth_factor = growth_factor
        self.floor = floor
        self.best: float | None = None
        self.bad_streak = 0
        self.num_updates = 0

    def _is_bad(self, loss: float) -> bool:
        if not math.isfinite(loss):
            return True
        if self.best is None:
            return False
        return loss > self.growth_factor * max(abs(self.best), self.floor)

    def update(self, loss: float) -> float:
        """Observe one loss value; raises when patience is exhausted."""
        loss = float(loss)
        self.num_updates += 1
        if self._is_bad(loss):
            self.bad_streak += 1
            if self.bad_streak >= self.patience:
                raise TrainingDivergedError(
                    f"loss diverged: {self.bad_streak} consecutive bad updates "
                    f"(last loss {loss!r}, best {self.best!r})"
                )
        else:
            self.bad_streak = 0
            if self.best is None or loss < self.best:
                self.best = loss
        return loss

    def reset(self) -> None:
        self.best = None
        self.bad_streak = 0
        self.num_updates = 0
