"""Deterministic retries with seeded exponential backoff.

:class:`RetryPolicy` retries transient failures with exponential backoff
plus *seeded* jitter — two processes constructed with the same seed sleep
the same amounts, so retry behavior is reproducible and testable.  The
clock and sleep functions are injectable, which lets the test suite drive
a policy through "minutes" of backoff without a single real sleep.

Three usage forms::

    policy = RetryPolicy(max_attempts=3, base_delay=0.5, seed=0)

    # 1. direct call
    result = policy.call(flaky_fn, arg1, kw=2)

    # 2. decorator
    @policy
    def fetch(): ...

    # 3. attempt loop (tenacity-style), for code that is awkward as a closure
    for attempt in policy:
        with attempt:
            result = flaky_fn()

The per-attempt ``deadline`` guards against retrying operations that are
expensive to repeat: when a *failed* attempt took longer than ``deadline``
seconds, the policy gives up immediately instead of backing off.  The
optional ``total_budget`` is the cumulative wall-clock cap across *all*
attempts and backoff sleeps: before each backoff the policy checks that
the elapsed time plus the pending sleep still fits the budget and
otherwise gives up — so a slow-but-retryable failure chain can never
exceed an overall SLO (the serving layer uses this as its per-request
retry guard).
"""

from __future__ import annotations

import functools
import time
from typing import Callable

from repro.core.exceptions import ConfigError
from repro.core.rng import ensure_rng

__all__ = ["RetryPolicy", "Attempt"]


class Attempt:
    """One attempt in a :class:`RetryPolicy` loop (a context manager).

    Entering the context runs the protected block; a retryable exception is
    swallowed (and backoff slept) unless this is the last attempt or the
    attempt overran the policy deadline.
    """

    def __init__(
        self,
        policy: "RetryPolicy",
        number: int,
        delay_after: float,
        loop_start: float | None = None,
    ) -> None:
        self.policy = policy
        self.number = number
        self._delay_after = delay_after
        self._loop_start = loop_start
        self.succeeded = False
        self.elapsed = 0.0
        self.error: BaseException | None = None

    def __enter__(self) -> "Attempt":
        self._start = self.policy.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed = self.policy.clock() - self._start
        if exc is None:
            self.succeeded = True
            return False
        self.error = exc
        if not isinstance(exc, self.policy.retry_on):
            return False
        if self.number >= self.policy.max_attempts:
            return False
        if (
            self.policy.deadline is not None
            and self.elapsed > self.policy.deadline
        ):
            return False
        if self.policy.total_budget is not None and self._loop_start is not None:
            spent = self.policy.clock() - self._loop_start
            if spent + self._delay_after > self.policy.total_budget:
                return False
        before = self.policy.clock()
        self.policy.sleep(self._delay_after)
        if (
            self.policy.total_budget is not None
            and self._delay_after > 0
            and self.policy.clock() <= before
        ):
            # A manual clock whose ``sleep`` does not advance it makes
            # every budget check read the same elapsed time: the budget
            # can never trip and a budget-driven loop (the online
            # trainer's commit retry) would spin forever.  Surface the
            # mis-wiring as configuration, not an infinite loop.
            raise ConfigError(
                f"retry backoff slept {self._delay_after:.6f}s but the "
                "clock did not advance; total_budget needs sleep and "
                "clock wired to the same time source (pass "
                "sleep=clock.advance for a ManualClock)"
            )
        return True  # swallow and let the loop retry


class RetryPolicy:
    """Seeded exponential backoff with jitter and a per-attempt deadline.

    Parameters
    ----------
    max_attempts:
        Total attempts, including the first (``1`` disables retrying).
    base_delay, multiplier, max_delay:
        Attempt ``k`` (1-based) backs off
        ``min(max_delay, base_delay * multiplier**(k-1))`` seconds before
        attempt ``k+1``.
    jitter:
        Fractional jitter; each delay is scaled by a seeded uniform draw
        from ``[1 - jitter, 1 + jitter]``.
    seed:
        Seeds the jitter stream.  Every :meth:`call` (and every ``for
        attempt in policy`` loop) restarts the stream, so a policy object
        is reusable and deterministic.
    deadline:
        Optional per-attempt wall-clock budget in seconds.  A failed
        attempt that ran longer is not retried.
    total_budget:
        Optional cumulative wall-clock cap in seconds across all attempts
        and backoff sleeps.  Checked before each backoff sleep: when the
        time already spent plus the pending sleep would exceed the budget,
        the policy gives up and the last error propagates.  This bounds
        the worst-case latency of a retried operation (per-request SLO),
        which the per-attempt ``deadline`` alone cannot.  A budget only
        works when sleeping moves the clock: construction rejects
        ``base_delay=0`` budgets, and a backoff sleep that does not
        advance the injected clock (a mis-wired :class:`ManualClock`)
        raises :class:`ConfigError` instead of spinning the loop with a
        budget that can never trip.
    retry_on:
        Exception class(es) considered transient; everything else
        propagates immediately.
    sleep, clock:
        Injection points for tests (default ``time.sleep`` /
        ``time.monotonic``).
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.1,
        multiplier: float = 2.0,
        max_delay: float = 30.0,
        jitter: float = 0.5,
        seed: int = 0,
        deadline: float | None = None,
        total_budget: float | None = None,
        retry_on: type[BaseException] | tuple[type[BaseException], ...] = Exception,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if base_delay < 0 or max_delay < 0:
            raise ConfigError("delays must be non-negative")
        if multiplier < 1.0:
            raise ConfigError("multiplier must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ConfigError("jitter must lie in [0, 1]")
        if deadline is not None and deadline <= 0:
            raise ConfigError("deadline must be positive")
        if total_budget is not None and total_budget <= 0:
            raise ConfigError("total_budget must be positive")
        if total_budget is not None and base_delay == 0 and max_attempts > 1:
            raise ConfigError(
                "total_budget with base_delay=0 can never be consumed by "
                "backoff sleeps; give the policy a positive base_delay "
                "(or drop the budget and rely on max_attempts)"
            )
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.seed = seed
        self.deadline = deadline
        self.total_budget = total_budget
        self.retry_on = retry_on if isinstance(retry_on, tuple) else (retry_on,)
        self.sleep = sleep
        self.clock = clock

    # ------------------------------------------------------------------ #
    def delays(self) -> list[float]:
        """The deterministic backoff schedule (one delay per retry gap)."""
        rng = ensure_rng(self.seed)
        out = []
        for k in range(self.max_attempts - 1):
            delay = min(self.max_delay, self.base_delay * self.multiplier**k)
            if self.jitter:
                delay *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
            out.append(delay)
        return out

    def __iter__(self):
        schedule = self.delays() + [0.0]
        loop_start = self.clock() if self.total_budget is not None else None
        for number in range(1, self.max_attempts + 1):
            attempt = Attempt(self, number, schedule[number - 1], loop_start)
            yield attempt
            if attempt.succeeded:
                return

    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn(*args, **kwargs)`` under this policy, returning its result."""
        result = None
        for attempt in self:
            with attempt:
                result = fn(*args, **kwargs)
        return result

    def __call__(self, fn: Callable) -> Callable:
        """Decorator form: ``@policy`` wraps ``fn`` in :meth:`call`."""

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            return self.call(fn, *args, **kwargs)

        return wrapper
