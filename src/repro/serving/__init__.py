"""Fault-tolerant in-process serving layer for fitted recommenders.

The training side of the repo has had a resilience story since
``repro.runtime``; this package is its inference-boundary counterpart —
the piece a production system puts between user traffic and a model that
can misbehave (see ``docs/serving.md``):

* :mod:`repro.serving.service` — :class:`RecommenderService`: request
  validation, typed outcomes (ok / degraded / shed / rejected), health
  and readiness probes, per-endpoint metrics.
* :mod:`repro.serving.breaker` — per-model circuit breakers
  (closed -> open -> half-open) on an injectable clock.
* :mod:`repro.serving.deadline` — cooperative per-request budgets.
* :mod:`repro.serving.admission` — bounded admission queue with explicit
  :class:`~repro.core.exceptions.Overloaded` load shedding.
* :mod:`repro.serving.fallback` — the degradation ladder's infallible
  :class:`StaticTopK` last resort.
* :mod:`repro.serving.registry` — validate-then-promote model hot swap
  with canary probes and atomic rollback.
* :mod:`repro.serving.demo` — the seeded chaos replay behind
  ``python -m repro serve-demo``.

Everything is deterministic under seed: time is injectable
(:class:`ManualClock`), faults come from seeded
:class:`~repro.runtime.faults.FaultPlan`\\ s, and two replays of the same
seed produce bitwise-identical response traces.
"""

from __future__ import annotations

from .admission import AdmissionQueue
from .breaker import BreakerTransition, CircuitBreaker
from .clock import ManualClock
from .deadline import Deadline
from .fallback import StaticTopK
from .metrics import ServiceMetrics
from .registry import ModelRegistry, PromotionRecord
from .service import (
    RecommenderService,
    ServeRequest,
    ServeResponse,
    validate_request,
)

__all__ = [
    "AdmissionQueue",
    "BreakerTransition",
    "CircuitBreaker",
    "ManualClock",
    "Deadline",
    "StaticTopK",
    "ServiceMetrics",
    "ModelRegistry",
    "PromotionRecord",
    "RecommenderService",
    "ServeRequest",
    "ServeResponse",
    "validate_request",
]
