"""Bounded admission queue with explicit load shedding.

The serving layer is synchronous and in-process, so "queueing" is modeled
as a deterministic fluid backlog: every admitted request adds one unit of
pending work, and the backlog drains at ``drain_rate`` requests per
second of *injected-clock* time.  When a request arrives while the
backlog is at ``capacity``, it is shed immediately with a structured
:class:`~repro.core.exceptions.Overloaded` — the queue never grows
unboundedly and a client never waits forever for a slot (bounded queue =
bounded worst-case latency; unbounded queues just convert overload into
timeouts).

The model is exact for the replay harness (arrivals and service times
both advance the same :class:`~repro.serving.clock.ManualClock`) and a
reasonable token-bucket approximation under a real clock.

Backlog accounting is carried in :class:`fractions.Fraction`, not float:
``Fraction(float)`` is an exact conversion, so the drain arithmetic is
free of accumulation drift.  The old incremental float subtraction could
leave the backlog a few ULPs above its true value after long chains of
tiny drains, which made ``backlog >= capacity`` over-trigger sheds when
many requests landed at the same :class:`ManualClock` timestamp — the
exact representation makes same-instant bursts admit exactly the
remaining headroom before the first shed.
"""

from __future__ import annotations

import time
from fractions import Fraction
from typing import Callable

from repro.core.exceptions import ConfigError, Overloaded

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """Fluid-model bounded queue: admit or shed, deterministically.

    Parameters
    ----------
    capacity:
        Maximum backlog (requests admitted but not yet drained).  An
        arrival finding the backlog at capacity is shed.
    drain_rate:
        Backlog units drained per second of clock time (the service's
        sustained throughput estimate).
    clock:
        Injectable monotonic time source.
    """

    def __init__(
        self,
        capacity: int = 32,
        drain_rate: float = 100.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ConfigError("admission capacity must be >= 1")
        if drain_rate <= 0:
            raise ConfigError("drain_rate must be positive")
        self.capacity = capacity
        self.drain_rate = drain_rate
        self.clock = clock
        # Exact accounting: Fraction(float) converts without rounding, so
        # backlog -= elapsed * rate never drifts the way repeated float
        # subtraction does.
        self._rate = Fraction(float(drain_rate))
        self._backlog = Fraction(0)
        self._last = Fraction(float(clock()))
        self.admitted = 0
        self.shed = 0

    def _drain(self) -> None:
        now = Fraction(float(self.clock()))
        if now > self._last:
            self._backlog = max(
                Fraction(0), self._backlog - (now - self._last) * self._rate
            )
            self._last = now

    @property
    def depth(self) -> float:
        """Current backlog after draining for elapsed clock time."""
        self._drain()
        return float(self._backlog)

    def estimated_wait(self) -> float:
        """Seconds a newly admitted request would wait behind the backlog."""
        self._drain()
        return float(self._backlog / self._rate)

    def admit(self) -> float:
        """Admit one request or raise :class:`Overloaded`.

        Returns the estimated queue wait (seconds) the request incurred,
        which the service records as a metric.
        """
        self._drain()
        if self._backlog >= self.capacity:
            self.shed += 1
            raise Overloaded(
                f"admission queue full ({float(self._backlog):.1f}/"
                f"{self.capacity} pending at drain rate "
                f"{self.drain_rate:g}/s); request shed"
            )
        wait = float(self._backlog / self._rate)
        self._backlog += 1
        self.admitted += 1
        return wait

    def snapshot(self) -> dict:
        """JSON-safe view for health probes."""
        return {
            "depth": round(self.depth, 6),
            "capacity": self.capacity,
            "drain_rate": self.drain_rate,
            "admitted": self.admitted,
            "shed": self.shed,
        }
