"""Per-model circuit breakers for the serving layer.

A :class:`CircuitBreaker` guards one scoring backend with the classic
three-state machine:

* **closed** — calls flow through; failures are counted both as a
  consecutive streak and in a rolling outcome window.  Either trigger
  (``failure_threshold`` consecutive errors, or the window's failure rate
  reaching ``failure_rate_threshold`` once ``window`` calls have been
  observed) opens the breaker.
* **open** — calls are refused (:meth:`allow` returns ``False``) until
  ``recovery_time`` seconds have elapsed on the injected clock, then the
  breaker moves to half-open.
* **half-open** — up to ``half_open_probes`` trial calls are admitted.
  Any failure reopens the breaker (restarting the cooldown); that many
  consecutive successes close it and clear all failure history.

Time comes exclusively from the injected ``clock``, so the whole state
machine is deterministic under seed and testable without real sleeps.
Every transition is recorded as a :class:`BreakerTransition` for the
service's degradation report.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.core.exceptions import ConfigError

__all__ = ["BreakerTransition", "CircuitBreaker"]

#: The three breaker states.
STATES: tuple[str, ...] = ("closed", "open", "half_open")


@dataclass(frozen=True)
class BreakerTransition:
    """One state change, stamped with the injected clock."""

    at: float
    from_state: str
    to_state: str
    reason: str

    def describe(self) -> str:
        return f"t={self.at:.3f} {self.from_state} -> {self.to_state} ({self.reason})"


class CircuitBreaker:
    """Three-state circuit breaker with dual failure triggers.

    Parameters
    ----------
    failure_threshold:
        Consecutive recorded failures that open a closed breaker.
    failure_rate_threshold, window:
        Alternative trigger: once ``window`` outcomes have been observed,
        a failure fraction ``>= failure_rate_threshold`` over the last
        ``window`` calls also opens the breaker (catches steady partial
        failure that never produces a long streak).
    recovery_time:
        Seconds the breaker stays open before admitting half-open probes.
    half_open_probes:
        Trial calls admitted in half-open; that many consecutive
        successes close the breaker, any failure reopens it.
    clock:
        Injectable monotonic time source.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        failure_rate_threshold: float = 0.5,
        window: int = 20,
        recovery_time: float = 30.0,
        half_open_probes: int = 2,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigError("failure_threshold must be >= 1")
        if not 0.0 < failure_rate_threshold <= 1.0:
            raise ConfigError("failure_rate_threshold must lie in (0, 1]")
        if window < 1:
            raise ConfigError("window must be >= 1")
        if recovery_time <= 0:
            raise ConfigError("recovery_time must be positive")
        if half_open_probes < 1:
            raise ConfigError("half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.failure_rate_threshold = failure_rate_threshold
        self.window = window
        self.recovery_time = recovery_time
        self.half_open_probes = half_open_probes
        self.clock = clock

        self._state = "closed"
        self._outcomes: deque[bool] = deque(maxlen=window)  # True = failure
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_inflight = 0
        self._half_open_successes = 0
        self.transitions: list[BreakerTransition] = []
        self.rejections = 0

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        """Current state, advancing open -> half-open when cooldown elapsed."""
        if (
            self._state == "open"
            and self.clock() - self._opened_at >= self.recovery_time
        ):
            self._move("half_open", "recovery_time elapsed")
        return self._state

    def _move(self, to_state: str, reason: str) -> None:
        self.transitions.append(
            BreakerTransition(self.clock(), self._state, to_state, reason)
        )
        self._state = to_state
        if to_state == "open":
            self._opened_at = self.clock()
        if to_state == "half_open":
            self._half_open_inflight = 0
            self._half_open_successes = 0
        if to_state == "closed":
            self._outcomes.clear()
            self._consecutive_failures = 0

    # ------------------------------------------------------------------ #
    def allow(self) -> bool:
        """Whether a call may proceed right now (counts rejections)."""
        state = self.state  # may advance open -> half_open
        if state == "closed":
            return True
        if state == "half_open":
            if self._half_open_inflight < self.half_open_probes:
                self._half_open_inflight += 1
                return True
            self.rejections += 1
            return False
        self.rejections += 1
        return False

    def record_success(self) -> None:
        if self.state == "half_open":
            self._half_open_successes += 1
            if self._half_open_successes >= self.half_open_probes:
                self._move("closed", f"{self._half_open_successes} probe successes")
            return
        self._consecutive_failures = 0
        self._outcomes.append(False)

    def record_failure(self, reason: str = "error") -> None:
        if self.state == "half_open":
            self._move("open", f"probe failed ({reason})")
            return
        if self._state != "closed":  # open: late failure report, nothing to count
            return
        self._consecutive_failures += 1
        self._outcomes.append(True)
        if self._consecutive_failures >= self.failure_threshold:
            self._move(
                "open", f"{self._consecutive_failures} consecutive failures ({reason})"
            )
            return
        if len(self._outcomes) >= self.window:
            rate = sum(self._outcomes) / len(self._outcomes)
            if rate >= self.failure_rate_threshold:
                self._move(
                    "open",
                    f"failure rate {rate:.2f} >= {self.failure_rate_threshold:.2f} "
                    f"over last {len(self._outcomes)} calls ({reason})",
                )

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """JSON-safe view for health probes and the degradation report."""
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "window_failures": int(sum(self._outcomes)),
            "window_calls": len(self._outcomes),
            "rejections": self.rejections,
            "transitions": len(self.transitions),
        }
