"""Compatibility shim: the clock abstraction moved to :mod:`repro.core.clock`.

The serving layer introduced the injectable-clock pattern; once telemetry
and runtime retries needed the same abstraction it was promoted to
``repro.core.clock``.  Import :class:`ManualClock` from there in new code;
this module keeps the historical ``repro.serving.clock`` import path
working.
"""

from __future__ import annotations

from repro.core.clock import Clock, ManualClock, system_clock

__all__ = ["Clock", "ManualClock", "system_clock"]
