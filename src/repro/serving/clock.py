"""Injectable time sources for the serving layer.

Every time-dependent serving component (circuit breakers, deadlines, the
admission queue, latency metrics) takes a ``clock`` callable returning
monotonic seconds, defaulting to :func:`time.monotonic`.  Tests and the
seeded traffic replay pass a :class:`ManualClock` instead, so "minutes"
of breaker cooldown or queue drain happen instantly and two runs with the
same seed observe bitwise-identical timestamps.
"""

from __future__ import annotations

__all__ = ["ManualClock"]


class ManualClock:
    """A clock that only moves when told to.

    The instance is callable (so it slots into any ``clock=`` parameter)
    and :meth:`advance` doubles as an injected ``sleep``: a component that
    "sleeps" on a manual clock simply moves time forward for every other
    component sharing the clock.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._now += float(seconds)

    # alias so the clock can be passed wherever a ``sleep`` is injected
    sleep = advance
