"""Per-request deadline budgets.

A :class:`Deadline` is created when a request is admitted and carried
through scoring.  Enforcement is *cooperative*, the same pattern as
``run_panel``'s per-model ``time_budget``: the service calls
:meth:`Deadline.check` at well-defined checkpoints (after admission,
after each scoring rung, before ranking) rather than preempting the model
mid-call.  A model rung that overruns is treated as a failed rung — its
breaker records the failure and the fallback chain takes over — so slow
backends degrade instead of stalling the request pipeline.
"""

from __future__ import annotations

import math
import time
from typing import Callable

from repro.core.exceptions import ConfigError, DeadlineExceeded

__all__ = ["Deadline"]


class Deadline:
    """A wall-clock budget anchored at construction time.

    ``budget=None`` means unbounded: the deadline never expires and every
    check passes, so callers can thread a deadline unconditionally.
    """

    def __init__(
        self,
        budget: float | None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget is not None and budget <= 0:
            raise ConfigError("deadline budget must be positive")
        self.budget = budget
        self.clock = clock
        self.start = clock()

    @property
    def elapsed(self) -> float:
        return self.clock() - self.start

    def remaining(self) -> float:
        """Seconds left (``inf`` when unbounded, clamped at 0)."""
        if self.budget is None:
            return math.inf
        return max(0.0, self.budget - self.elapsed)

    @property
    def expired(self) -> bool:
        return self.budget is not None and self.elapsed > self.budget

    def check(self, context: str = "") -> None:
        """Cooperative checkpoint: raise :class:`DeadlineExceeded` if overrun."""
        if self.expired:
            where = f" ({context})" if context else ""
            raise DeadlineExceeded(
                f"request exceeded its {self.budget:.4f}s deadline after "
                f"{self.elapsed:.4f}s{where}"
            )
