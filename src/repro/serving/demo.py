"""Seeded synthetic traffic replay through a faulty serving stack.

``python -m repro serve-demo`` builds a synthetic movie catalog, fits a
small degradation ladder (ItemKNN -> MostPopular -> static top-k), draws
a seeded serving-shaped :class:`~repro.runtime.faults.FaultPlan`
(latency spikes, raising models, NaN score vectors), and replays a bursty
request stream against the service on a :class:`ManualClock` — no real
sleeps anywhere.  It prints the degradation report: outcome counts,
fallback activations, breaker transitions, and p50/p99 latency.

``--smoke`` additionally asserts the chaos invariants CI relies on:

* every request receives a typed outcome (ok / degraded / shed /
  rejected) — nothing escapes the service;
* at least one fault fired and at least one degraded response was served
  (the plan actually exercised the ladder);
* replaying the identical seed yields a bitwise-identical response trace.
"""

from __future__ import annotations

from collections import Counter

from repro.data import make_movie_dataset
from repro.models.baselines import ItemKNN, MostPopular
from repro.runtime.faults import SERVING_FAULT_KINDS, FaultInjector, FaultPlan
from repro.runtime.retry import RetryPolicy
from repro.telemetry import Telemetry

from .admission import AdmissionQueue
from .clock import ManualClock
from .service import RecommenderService, ServeRequest

__all__ = [
    "build_demo_service",
    "run_replay",
    "demo_report",
    "run_smoke",
    "reconcile_trace_outcomes",
]

#: Replay shape: deadline tight enough that a latency fault blows it.
#: The burst gap mixture itself lives in
#: :meth:`repro.traffic.schedule.TrafficSchedule.bursty`.
DEADLINE = 0.05
LATENCY_FAULT_SECONDS = 0.12


def build_demo_service(
    seed: int = 0,
    num_requests: int = 300,
    fault_rate: float = 0.10,
    trace: bool = False,
) -> tuple[RecommenderService, ManualClock, FaultInjector]:
    """A small fitted ladder behind a fully injected serving stack.

    With ``trace=True`` the service carries a
    :class:`~repro.telemetry.Telemetry` on the replay's shared
    :class:`ManualClock` (reachable as ``service.telemetry``), so the
    exported span timeline is bitwise-deterministic under seed.
    """
    dataset = make_movie_dataset(seed=seed)
    primary = ItemKNN(num_neighbors=10).fit(dataset)
    popular = MostPopular().fit(dataset)

    clock = ManualClock()
    telemetry = Telemetry(clock=clock) if trace else None
    plan = FaultPlan.random(
        num_requests, rate=fault_rate, kinds=SERVING_FAULT_KINDS,
        seed=seed, seconds=LATENCY_FAULT_SECONDS,
    )
    injector = FaultInjector(plan, sleep=clock.advance)
    service = RecommenderService(
        dataset,
        primary=("ItemKNN", primary),
        fallbacks=[("MostPopular", popular)],
        default_deadline=DEADLINE,
        breaker_config={
            "failure_threshold": 3,
            "window": 10,
            "recovery_time": 0.5,
            "half_open_probes": 2,
        },
        admission=AdmissionQueue(capacity=6, drain_rate=120.0, clock=clock),
        faults=injector,
        retry=RetryPolicy(
            max_attempts=2, base_delay=0.005, jitter=0.0, seed=seed,
            total_budget=DEADLINE, sleep=clock.advance, clock=clock,
        ),
        clock=clock,
        telemetry=telemetry,
    )
    return service, clock, injector


def run_replay(
    service: RecommenderService,
    clock: ManualClock,
    seed: int = 0,
    num_requests: int = 300,
) -> list[str]:
    """Drive a bursty seeded request stream; returns the response traces.

    The stream is :meth:`TrafficSchedule.bursty` — the demo's original
    private generator re-expressed as a schedule, draw-for-draw RNG
    compatible — driven with the schedule's exact per-event gaps: ~70%
    of requests land instantly behind the previous one, the rest after a
    gap that lets the queue drain.
    """
    from repro.traffic.schedule import TrafficSchedule

    schedule = TrafficSchedule.bursty(
        service.dataset.num_users, num_requests, seed
    )
    traces: list[str] = []
    for request, gap in zip(schedule, schedule.gaps()):
        response = service.serve(ServeRequest(user_id=request.user_id, k=request.k))
        traces.append(response.trace())
        clock.advance(gap)
    return traces


def demo_report(service: RecommenderService, traces: list[str]) -> str:
    """Human-readable degradation report for one replay."""
    health = service.health()
    metrics = health["metrics"]
    lines = [
        "serve-demo degradation report",
        "=" * 29,
        f"requests        {metrics.get('requests', 0)}",
        f"  ok            {metrics.get('status::ok', 0)}",
        f"  degraded      {metrics.get('status::degraded', 0)}",
        f"  shed          {metrics.get('status::shed', 0)}",
        f"  rejected      {metrics.get('status::rejected', 0)}",
        f"fallbacks used  {metrics.get('fallback_activations', 0)}",
        f"deadline misses {metrics.get('deadline_exceeded', 0)}",
        f"latency p50/p99 {metrics['latency_p50']:.6f}s / {metrics['latency_p99']:.6f}s",
        f"live model      {health['live_model']} "
        f"(breaker {health['live_breaker_state']})",
        "",
        "served by rung:",
    ]
    for key in sorted(metrics):
        if key.startswith("served_by::"):
            lines.append(f"  {key.split('::', 1)[1]:12s} {metrics[key]}")
    transitions = service.breaker_transitions()
    lines.append("")
    lines.append(f"breaker transitions ({len(transitions)}):")
    lines.extend(f"  {t}" for t in transitions)
    if service.admission is not None:
        adm = service.admission.snapshot()
        lines.append("")
        lines.append(
            f"admission: {adm['admitted']} admitted, {adm['shed']} shed "
            f"(capacity {adm['capacity']}, drain {adm['drain_rate']:g}/s)"
        )
    lines.append("")
    lines.append(f"trace tail ({min(5, len(traces))} of {len(traces)}):")
    lines.extend(f"  {t}" for t in traces[-5:])
    return "\n".join(lines)


def reconcile_trace_outcomes(service: RecommenderService) -> dict[str, int]:
    """Assert per-request span outcomes match the degradation counters.

    Every ``serve/request`` span carries an ``outcome`` attribute; tallied
    up they must equal the service's ``status::*`` counters exactly (both
    are written by the same ``serve()`` path — a mismatch means the
    instrumentation lost or double-counted a request).  Returns the tally.
    """
    spans = service.telemetry.tracer.records()
    outcomes = Counter(
        str(s.attrs["outcome"]) for s in spans if s.name == "serve/request"
    )
    counters = service.metrics.counters
    for status in ("ok", "degraded", "shed", "rejected"):
        span_count = outcomes.get(status, 0)
        counted = counters[f"status::{status}"]
        if span_count != counted:
            raise AssertionError(
                f"trace/metric mismatch for {status!r}: "
                f"{span_count} spans vs {counted} counted"
            )
    if sum(outcomes.values()) != counters["requests"]:
        raise AssertionError(
            f"{sum(outcomes.values())} request spans for "
            f"{counters['requests']} requests"
        )
    return dict(outcomes)


def run_smoke(
    seeds: tuple[int, ...] = (0, 1, 2),
    num_requests: int = 200,
    trace_out: str | None = None,
) -> str:
    """Chaos smoke: invariants over a seed matrix; raises on violation.

    With ``trace_out`` the replays also run traced: exported telemetry
    must be byte-identical between duplicate runs of a seed, span
    outcomes must reconcile with the degradation counters, and the last
    seed's capture is written to ``trace_out`` (the CI job then schema-
    checks it with ``trace-report --check``).
    """
    trace = trace_out is not None
    lines = []
    for seed in seeds:
        runs = []
        for __ in range(2):
            service, clock, injector = build_demo_service(
                seed, num_requests, trace=trace
            )
            traces = run_replay(service, clock, seed, num_requests)
            runs.append((service, injector, traces))
        service, injector, traces = runs[0]
        metrics = service.metrics.snapshot()
        answered = sum(
            metrics.get(f"status::{s}", 0)
            for s in ("ok", "degraded", "shed", "rejected")
        )
        if len(traces) != num_requests or answered != num_requests:
            raise AssertionError(
                f"seed {seed}: {answered}/{num_requests} requests answered"
            )
        if not injector.injected:
            raise AssertionError(f"seed {seed}: fault plan injected nothing")
        if metrics.get("status::degraded", 0) < 1:
            raise AssertionError(f"seed {seed}: no degraded responses; ladder unused")
        if traces != runs[1][2]:
            raise AssertionError(f"seed {seed}: replay traces differ between runs")
        if trace:
            reconcile_trace_outcomes(service)
            if (
                service.telemetry.export_records()
                != runs[1][0].telemetry.export_records()
            ):
                raise AssertionError(
                    f"seed {seed}: telemetry exports differ between runs"
                )
        lines.append(
            f"seed {seed}: {num_requests} answered "
            f"(ok={metrics.get('status::ok', 0)} "
            f"degraded={metrics.get('status::degraded', 0)} "
            f"shed={metrics.get('status::shed', 0)}), "
            f"{len(injector.injected)} faults, deterministic"
        )
    if trace:
        path = service.telemetry.export_jsonl(trace_out)
        lines.append(f"trace capture (seed {seeds[-1]}) written to {path}")
    return "chaos smoke OK\n" + "\n".join(lines)
