"""Fallback chains: personalized -> neighborhood/popularity -> static top-k.

The survey's qualitative promise — KG side information keeps a system
recommending under sparsity and cold start — only holds online if the
serving boundary can *degrade* instead of failing: when the personalized
model is broken (breaker open, deadline blown, NaN scores), the request
falls through an ordered chain of progressively simpler scorers and the
response records exactly how far it fell (``degraded`` /
``fallback_used``).

A chain rung is any fitted :class:`~repro.core.recommender.Recommender`.
:class:`StaticTopK` is the designed last resort: a frozen global score
vector (popularity by default) that involves no model call at all, cannot
raise, and costs O(num_items) — so the final rung always answers.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import DataError
from repro.core.recommender import Recommender

__all__ = ["StaticTopK"]


class StaticTopK(Recommender):
    """Non-personalized last-resort scorer over a frozen score vector.

    Unlike :class:`~repro.models.baselines.nonpersonalized.MostPopular`
    this is constructed *for serving*: the vector is validated (finite,
    correct length) once at fit/construction time so ``score_all`` is an
    infallible array return, and a copy is handed out to keep the frozen
    ranking immune to downstream mutation.
    """

    def __init__(self, scores: np.ndarray | None = None) -> None:
        super().__init__()
        self._scores: np.ndarray | None = None
        if scores is not None:
            self._scores = self._validated(np.asarray(scores, dtype=np.float64))

    @staticmethod
    def _validated(scores: np.ndarray) -> np.ndarray:
        if scores.ndim != 1 or scores.size == 0:
            raise DataError("static scores must be a non-empty 1-d vector")
        if not np.isfinite(scores).all():
            raise DataError("static scores must be finite")
        return scores

    def fit(self, dataset: Dataset) -> "StaticTopK":
        if self._scores is None:
            self._scores = self._validated(
                dataset.interactions.item_degrees().astype(np.float64)
            )
        elif self._scores.shape != (dataset.num_items,):
            raise DataError(
                f"static scores have length {self._scores.size}, "
                f"dataset has {dataset.num_items} items"
            )
        self._mark_fitted(dataset)
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        self.fitted_dataset
        return self._scores.copy()
