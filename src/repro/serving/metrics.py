"""Per-endpoint counters and latency percentiles for the serving layer.

Historically this module owned its own ``Counter`` + latency list; it now
sits on the shared :class:`~repro.telemetry.metrics.MetricRegistry` so a
service constructed with a :class:`~repro.telemetry.Telemetry` lands its
counters in the same registry (and the same JSONL export) as training and
evaluation metrics.  The old attribute API — ``metrics.counters[...]``,
``incr``, ``observe_latency``, ``latency_percentile``, ``snapshot`` — is
preserved as a thin shim over the registry.

Latency percentiles also changed numerically: the old implementation used
``np.percentile`` linear interpolation, whose small-sample p99 reports a
value *between* the two largest observations — a latency no request ever
experienced, biased low exactly when a chaos replay has tens of requests.
The shared :class:`~repro.telemetry.metrics.Histogram` keeps exact samples
and answers with the nearest-rank quantile instead (see
``docs/observability.md``).

All timing numbers come from the service's injected clock, so under a
:class:`~repro.core.clock.ManualClock` the latency distribution — and
therefore the whole metrics snapshot — is deterministic under seed.
"""

from __future__ import annotations

from repro.telemetry.metrics import Counter, Histogram, MetricRegistry

__all__ = ["ServiceMetrics"]

#: Registry prefix for every serving counter, so service metrics are
#: recognizable inside a shared registry.
PREFIX = "serve."

#: Series name of the request latency histogram.
LATENCY_SERIES = "serve.latency_seconds"


class _CounterView:
    """Dict-like view of the serving counters (the historical API).

    Reads return 0 for never-incremented names (``Counter`` semantics);
    writes go straight through to the registry, so legacy
    ``metrics.counters[name] += n`` call sites still work.
    """

    __slots__ = ("_registry",)

    def __init__(self, registry: MetricRegistry) -> None:
        self._registry = registry

    def _own(self):
        for name, labels, kind, instrument in self._registry.series():
            if kind == "counter" and name.startswith(PREFIX) and not labels:
                yield name[len(PREFIX):], instrument

    def __getitem__(self, name: str) -> int:
        # Like collections.Counter: reading a missing name yields 0 without
        # inserting a series.
        for n, counter in self._own():
            if n == name:
                return int(counter.value)
        return 0

    def get(self, name: str, default: int = 0) -> int:
        for n, counter in self._own():
            if n == name:
                return int(counter.value)
        return default

    def __setitem__(self, name: str, value: int) -> None:
        counter = self._registry.counter(PREFIX + name)
        if value < counter.value:
            raise ValueError("serving counters only move forward")
        counter.value = value

    def __contains__(self, name: str) -> bool:
        return any(n == name for n, __ in self._own())

    def __iter__(self):
        return (name for name, __ in self._own())

    def items(self):
        return ((name, int(c.value)) for name, c in self._own())

    def __len__(self) -> int:
        return sum(1 for __ in self._own())


class ServiceMetrics:
    """Serving counters + latency histogram on a (shareable) registry.

    Parameters
    ----------
    registry:
        The :class:`MetricRegistry` to record into.  ``None`` creates a
        private registry (the historical standalone behavior);
        :class:`~repro.serving.service.RecommenderService` passes its
        telemetry's registry so serving metrics join the shared export.
    """

    def __init__(self, registry: MetricRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        self._latency: Histogram = self.registry.histogram(LATENCY_SERIES)

    # ------------------------------------------------------------------ #
    # historical API (thin shim over the registry)
    # ------------------------------------------------------------------ #
    @property
    def counters(self) -> _CounterView:
        return _CounterView(self.registry)

    def incr(self, name: str, amount: int = 1) -> None:
        self.registry.counter(PREFIX + name).inc(amount)

    def counter(self, name: str) -> Counter:
        """The underlying registry counter for ``name`` (prefixed)."""
        return self.registry.counter(PREFIX + name)

    def observe_latency(self, seconds: float) -> None:
        self._latency.observe(float(seconds))

    @property
    def num_observations(self) -> int:
        return self._latency.count

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th latency percentile (NaN before any observation).

        Exact nearest-rank while the sample cap holds — the returned value
        is always a latency some request actually observed.
        """
        return self._latency.quantile(q)

    def snapshot(self) -> dict:
        """JSON-safe view: every counter plus p50/p99 latency."""
        out = {name: int(count) for name, count in sorted(self.counters.items())}
        out["latency_p50"] = self.latency_percentile(50.0)
        out["latency_p99"] = self.latency_percentile(99.0)
        out["latency_observations"] = self.num_observations
        return out
