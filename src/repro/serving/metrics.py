"""Per-endpoint counters and latency percentiles for the serving layer.

All timing numbers come from the service's injected clock, so under a
:class:`~repro.serving.clock.ManualClock` the latency distribution — and
therefore the whole metrics snapshot — is deterministic under seed.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

__all__ = ["ServiceMetrics"]


class ServiceMetrics:
    """Counters plus a latency reservoir with percentile queries."""

    def __init__(self) -> None:
        self.counters: Counter[str] = Counter()
        self._latencies: list[float] = []

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def observe_latency(self, seconds: float) -> None:
        self._latencies.append(float(seconds))

    @property
    def num_observations(self) -> int:
        return len(self._latencies)

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th latency percentile (NaN before any observation)."""
        if not self._latencies:
            return float("nan")
        return float(np.percentile(np.asarray(self._latencies), q))

    def snapshot(self) -> dict:
        """JSON-safe view: every counter plus p50/p99 latency."""
        out = {name: int(count) for name, count in sorted(self.counters.items())}
        out["latency_p50"] = self.latency_percentile(50.0)
        out["latency_p99"] = self.latency_percentile(99.0)
        out["latency_observations"] = self.num_observations
        return out
