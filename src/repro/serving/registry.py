"""Model registry with validate-then-promote hot swap.

The registry owns the *live* model a :class:`RecommenderService` scores
with.  Swapping in a new model is an atomic validate-then-promote:

1. the candidate runs a **canary probe** — ``score_all`` over a fixed
   batch of canary users, every output checked with
   :func:`repro.runtime.guards.validate_scores` (finite + shape);
2. only if every canary vector passes does the candidate become live
   (one reference assignment, so readers never observe a half-swapped
   state);
3. any failure raises :class:`~repro.core.exceptions.PromotionError`
   and leaves the previous live model untouched — rollback is the
   absence of the swap.

The previous model is retained so :meth:`rollback` can demote a
promotion that passed its canary but misbehaves under real traffic
(e.g. its circuit breaker opens).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.exceptions import ModelUnavailableError, PromotionError
from repro.core.recommender import Recommender
from repro.runtime.guards import ScoreReport, validate_scores
from repro.telemetry.base import NULL

__all__ = ["PromotionRecord", "ModelRegistry"]


@dataclass(frozen=True)
class PromotionRecord:
    """Outcome of one promotion attempt (or a recorded rollback).

    ``canary_seed`` records how the canary batch was drawn (``None`` =
    the deterministic lowest-id prefix); ``generation`` records the
    embedding-store generation the candidate serves from, when it serves
    from one — so an audit can tie a promotion to the exact on-disk
    manifest it made live.

    ``rejection`` is the *structured* cause when the attempt did not
    stick: ``"index_sync:<ExcType>"`` for a ``sync_index`` failure (e.g.
    ``index_sync:IndexStaleError``), ``"canary"`` for a failed canary
    probe (the per-user :class:`ScoreReport` details ride in
    ``reports``/``reason``), and ``"rollback:<cause>"`` on the record a
    :meth:`ModelRegistry.rollback` leaves behind (``kind="rollback"``).
    The same value is attached as ``reason`` on the ``serve/promote`` /
    ``serve/rollback`` telemetry spans, so ``trace-report`` outcome
    tallies break rejected promotions down by cause.
    """

    at: float
    name: str
    promoted: bool
    canary_users: tuple[int, ...]
    reason: str = ""
    reports: tuple[ScoreReport, ...] = field(default=())
    canary_seed: int | None = None
    generation: int | None = None
    kind: str = "promote"
    rejection: str | None = None

    def describe(self) -> str:
        if self.kind == "rollback":
            out = f"t={self.at:.3f} {self.name!r} ROLLED BACK"
            if self.rejection:
                out += f" [{self.rejection}]"
            if self.reason:
                out += f": {self.reason}"
            return out
        verdict = "promoted" if self.promoted else "REJECTED"
        out = f"t={self.at:.3f} {self.name!r} {verdict}"
        if self.generation is not None:
            out += f" (store generation {self.generation})"
        if self.rejection:
            out += f" [{self.rejection}]"
        if self.reason:
            out += f": {self.reason}"
        return out


class ModelRegistry:
    """Holds the live model and the promotion/rollback history."""

    def __init__(
        self,
        num_items: int,
        clock: Callable[[], float] = time.monotonic,
        telemetry=None,
    ) -> None:
        self.num_items = int(num_items)
        self.clock = clock
        self.telemetry = telemetry if telemetry is not None else NULL
        self._live: tuple[str, Recommender] | None = None
        self._previous: tuple[str, Recommender] | None = None
        self.history: list[PromotionRecord] = []

    # ------------------------------------------------------------------ #
    @property
    def has_live(self) -> bool:
        return self._live is not None

    @property
    def live_name(self) -> str:
        name, __ = self._require_live()
        return name

    @property
    def live(self) -> Recommender:
        __, model = self._require_live()
        return model

    def _require_live(self) -> tuple[str, Recommender]:
        if self._live is None:
            raise ModelUnavailableError("no live model has been promoted")
        return self._live

    # ------------------------------------------------------------------ #
    def probe(
        self, model: Recommender, canary_users: Sequence[int]
    ) -> list[ScoreReport]:
        """Canary smoke probe: one validated scoring call per canary user.

        A candidate rung (``supports_candidates``) is probed through
        ``score_candidates`` — the call the service will actually make —
        and validated in candidate-subset mode, so a stale or broken ANN
        index rejects the promotion instead of hiding behind an exact
        fallback.  A model call that *raises* is reported as a failed
        :class:`ScoreReport` rather than propagating, so a crashing
        candidate is rejected the same way a NaN-scoring one is.
        """
        reports: list[ScoreReport] = []
        candidate_rung = bool(getattr(model, "supports_candidates", False))
        entry = "score_candidates" if candidate_rung else "score_all"
        for user in canary_users:
            try:
                if candidate_rung:
                    ids, scores = model.score_candidates(int(user))
                else:
                    ids, scores = None, model.score_all(int(user))
            except Exception as exc:  # noqa: BLE001 - probe must not propagate
                reports.append(
                    ScoreReport(
                        ok=False, expected_items=self.num_items, actual_shape=(),
                        reason=f"{entry}({user}) raised {type(exc).__name__}: {exc}",
                    )
                )
                continue
            reports.append(
                validate_scores(scores, self.num_items, expected_indices=ids)
            )
        return reports

    def promote(
        self,
        name: str,
        model: Recommender,
        canary_users: Sequence[int],
        canary_seed: int | None = None,
    ) -> PromotionRecord:
        """Validate ``model`` on the canary batch, then atomically swap it in.

        For a store-backed candidate (anything exposing a ``generation``
        attribute, e.g. :class:`~repro.store.serving.StoredEmbeddingRecommender`)
        the swap moves no embedding arrays: the candidate already holds a
        mapped view of its generation, and promotion is one reference
        assignment here plus that generation recorded for the audit trail.

        A candidate exposing ``sync_index`` (a
        :class:`~repro.retrieval.two_stage.TwoStageRecommender`) gets its
        ANN index rebuilt against its current embedding generation *before*
        the canary probe, so the swap installs index and embeddings as one
        unit — a rebuild failure rejects the promotion with the previous
        live model untouched, and no live model ever pairs an index from
        one generation with embeddings from another.
        """
        canary = tuple(int(u) for u in canary_users)
        if not canary:
            raise PromotionError("canary batch is empty; refusing blind promotion")
        generation = getattr(model, "generation", None)
        generation = int(generation) if isinstance(generation, int) else None
        tel = self.telemetry
        span = (
            tel.begin(
                "serve/promote", model=name, canary_size=len(canary),
                canary_seed=canary_seed, canary_users=list(canary),
                generation=generation,
            )
            if tel.enabled
            else None
        )
        sync = getattr(model, "sync_index", None)
        if callable(sync):
            try:
                sync()
            except Exception as exc:  # noqa: BLE001 - rebuild failure = rejection
                reason = f"index sync failed: {type(exc).__name__}: {exc}"
                rejection = f"index_sync:{type(exc).__name__}"
                record = PromotionRecord(
                    at=self.clock(), name=name, promoted=False,
                    canary_users=canary, reason=reason,
                    canary_seed=canary_seed, generation=generation,
                    rejection=rejection,
                )
                self.history.append(record)
                if span is not None:
                    tel.end(span, outcome="rejected", reason=rejection,
                            error=type(exc).__name__)
                raise PromotionError(f"candidate {name!r}: {reason}") from exc
        reports = self.probe(model, canary)
        bad = [(u, r) for u, r in zip(canary, reports) if not r.ok]
        if bad:
            reason = "; ".join(f"user {u}: {r.describe()}" for u, r in bad[:3])
            if len(bad) > 3:
                reason += f" (+{len(bad) - 3} more)"
            record = PromotionRecord(
                at=self.clock(), name=name, promoted=False,
                canary_users=canary, reason=reason, reports=tuple(reports),
                canary_seed=canary_seed, generation=generation,
                rejection="canary",
            )
            self.history.append(record)
            if span is not None:
                tel.end(span, outcome="rejected", reason="canary",
                        failed_users=len(bad))
            raise PromotionError(
                f"candidate {name!r} failed canary probe on "
                f"{len(bad)}/{len(canary)} users: {reason}"
            )
        self._previous = self._live
        self._live = (name, model)
        record = PromotionRecord(
            at=self.clock(), name=name, promoted=True,
            canary_users=canary, reports=tuple(reports),
            canary_seed=canary_seed, generation=generation,
        )
        self.history.append(record)
        if span is not None:
            tel.counter("serve.promotions").inc()
            tel.end(span, outcome="promoted")
        return record

    def rollback(self, cause: str = "operator") -> str:
        """Demote the live model back to its predecessor; returns its name.

        ``cause`` is the structured rollback reason (e.g.
        ``"post_promotion_regression"``); it is recorded durably in
        :attr:`history` as a ``kind="rollback"`` record with
        ``rejection="rollback:<cause>"`` and attached to the
        ``serve/rollback`` span, so an audit can answer *why* a
        generation was demoted, not just that it was.
        """
        if self._previous is None:
            raise ModelUnavailableError("no previous model to roll back to")
        demoted = self._live[0] if self._live else ""
        rejection = f"rollback:{cause}"
        tel = self.telemetry
        span = (
            tel.begin("serve/rollback", from_model=demoted or None)
            if tel.enabled
            else None
        )
        self._live, self._previous = self._previous, None
        restored_name, restored = self._live
        generation = getattr(restored, "generation", None)
        generation = int(generation) if isinstance(generation, int) else None
        self.history.append(
            PromotionRecord(
                at=self.clock(), name=demoted, promoted=False,
                canary_users=(), kind="rollback", rejection=rejection,
                generation=generation,
                reason=f"live model restored to {restored_name!r}",
            )
        )
        if span is not None:
            tel.counter("serve.rollbacks").inc()
            tel.end(span, outcome="rolled_back", reason=rejection,
                    to_model=restored_name)
        return restored_name
