"""`RecommenderService` — the fault-tolerant in-process serving boundary.

Wraps fitted :class:`~repro.core.recommender.Recommender` models behind a
request/response API that *always* answers with a typed outcome:

``ok``
    served by the live personalized model;
``degraded``
    served by a fallback rung (kNN/popularity model or the static top-k
    last resort) because the live model was broken, slow, or breaker-open;
``shed``
    explicitly rejected by the bounded admission queue (:class:`Overloaded`);
``rejected``
    the request itself failed validation (unknown user id, malformed k).

No exception escapes :meth:`RecommenderService.serve`; the lower-level
:meth:`RecommenderService.recommend` raises the structured
:class:`~repro.core.exceptions.ServingError` subclasses instead for
callers that prefer exceptions.  All time comes from an injectable clock
and faults from a seeded :class:`~repro.runtime.faults.FaultInjector`, so
every behavior here is deterministic under seed (see
``tests/test_serving_chaos.py`` and ``docs/serving.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import (
    ConfigError,
    DeadlineExceeded,
    Overloaded,
    RequestError,
    ServingError,
)
from repro.core.recommender import Recommender
from repro.runtime.faults import FaultInjector
from repro.runtime.guards import validate_scores
from repro.runtime.retry import RetryPolicy
from repro.telemetry import NULL, NullTelemetry, Telemetry

from .admission import AdmissionQueue
from .breaker import CircuitBreaker
from .deadline import Deadline
from .fallback import StaticTopK
from .metrics import ServiceMetrics
from .registry import ModelRegistry, PromotionRecord

__all__ = ["ServeRequest", "ServeResponse", "RecommenderService", "validate_request"]

#: Rung name of the non-personalized last resort.
STATIC_RUNG = "static"


@dataclass(frozen=True)
class ServeRequest:
    """One top-k recommendation request."""

    user_id: int
    k: int = 10
    deadline: float | None = None  # seconds; None -> service default
    exclude_seen: bool = True


@dataclass(frozen=True)
class ServeResponse:
    """Typed outcome for one request.  ``status`` is one of
    ``"ok"`` / ``"degraded"`` / ``"shed"`` / ``"rejected"``."""

    request_id: int
    user_id: int
    status: str
    items: tuple[int, ...] = ()
    scores: tuple[float, ...] = ()
    model: str = ""
    degraded: bool = False
    fallback_used: str | None = None
    error: str = ""
    latency: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "degraded")

    def trace(self) -> str:
        """Canonical one-line form; chaos tests compare these bitwise."""
        items = ",".join(str(i) for i in self.items)
        return (
            f"{self.request_id}|u={self.user_id}|{self.status}|{self.model}|"
            f"fb={self.fallback_used or '-'}|[{items}]|lat={self.latency:.6f}|"
            f"err={self.error}"
        )


def validate_request(request: ServeRequest, num_users: int, num_items: int) -> None:
    """Raise :class:`RequestError` unless ``request`` is servable.

    Checks the catalog is non-empty, the user id is a known integer, and
    ``k`` is a positive integer — the failure modes that would otherwise
    surface as IndexErrors (or silent nonsense) deep inside ``score_all``.
    """
    if num_items < 1:
        raise RequestError("catalog is empty; nothing to recommend")
    if isinstance(request.user_id, bool) or not isinstance(
        request.user_id, (int, np.integer)
    ):
        raise RequestError(
            f"user_id must be an integer, got {type(request.user_id).__name__}"
        )
    if not 0 <= int(request.user_id) < num_users:
        raise RequestError(
            f"unknown user id {int(request.user_id)} (catalog has {num_users} users)"
        )
    if isinstance(request.k, bool) or not isinstance(request.k, (int, np.integer)):
        raise RequestError(f"k must be an integer, got {type(request.k).__name__}")
    if int(request.k) < 1:
        raise RequestError(f"k must be >= 1, got {int(request.k)}")
    if request.deadline is not None and request.deadline <= 0:
        raise RequestError(f"deadline must be positive, got {request.deadline}")


class _RungFailed(Exception):
    """Internal: one chain rung could not produce a valid ranking."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class RecommenderService:
    """Circuit-broken, deadline-aware, load-shedding serving facade.

    Parameters
    ----------
    dataset:
        The catalog being served (bounds for validation, seen-item
        exclusion, and the static last-resort popularity vector).
    primary:
        ``(name, fitted_model)`` for the live personalized model.  It goes
        through the same canary probe as any later :meth:`promote`.
    fallbacks:
        Ordered ``(name, fitted_model)`` degradation rungs tried after the
        live model (e.g. an ItemKNN, then MostPopular).  A ``"static"``
        top-k rung is always appended as the infallible last resort.
    default_deadline:
        Per-request budget in seconds when the request does not carry its
        own (``None`` disables deadline enforcement by default).
    breaker_config:
        Keyword arguments for each model rung's :class:`CircuitBreaker`.
    admission:
        Bounded :class:`AdmissionQueue`; ``None`` admits everything.
    faults:
        Seeded :class:`~repro.runtime.faults.FaultInjector` applied to the
        *live* rung only (``step`` = global request index), so chaos tests
        exercise exactly the failure path real model regressions take.
    retry:
        Optional :class:`~repro.runtime.retry.RetryPolicy` for live-rung
        scoring; give it a ``total_budget`` so retries respect the SLO.
    canary_size:
        Number of users probed on promotion.
    canary_seed:
        ``None`` (default) keeps the legacy deterministic lowest-id
        canary prefix.  An integer draws the canary batch once with a
        seeded RNG (without replacement) — still fully reproducible, but
        no longer biased to the lowest user ids — and is recorded on
        every :class:`PromotionRecord` and ``serve/promote`` span so an
        audit can regenerate the exact probe batch.
    clock:
        Injectable monotonic time source shared by every component.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`.  When given, every
        request records a ``serve/request`` span (outcome, rung, breaker
        state) with per-rung child spans, and :class:`ServiceMetrics` sits
        on the telemetry's shared registry so serving counters join the
        same export as training metrics.  ``None`` keeps telemetry fully
        off (the no-op guard is one attribute check per request).
    """

    def __init__(
        self,
        dataset: Dataset,
        primary: tuple[str, Recommender],
        fallbacks: Sequence[tuple[str, Recommender]] = (),
        *,
        default_k: int = 10,
        default_deadline: float | None = None,
        breaker_config: dict | None = None,
        admission: AdmissionQueue | None = None,
        faults: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        static_scores: np.ndarray | None = None,
        canary_size: int = 8,
        canary_seed: int | None = None,
        clock: Callable[[], float] = time.monotonic,
        telemetry: Telemetry | NullTelemetry | None = None,
    ) -> None:
        if default_k < 1:
            raise ConfigError("default_k must be >= 1")
        if canary_size < 1:
            raise ConfigError("canary_size must be >= 1")
        self.dataset = dataset
        self.clock = clock
        self.default_k = default_k
        self.default_deadline = default_deadline
        self.admission = admission
        self.faults = faults
        self.retry = retry
        self.telemetry = telemetry if telemetry is not None else NULL
        self.metrics = ServiceMetrics(
            registry=self.telemetry.metrics if self.telemetry.enabled else None
        )
        self._breaker_config = dict(breaker_config or {})
        self.canary_seed = canary_seed
        size = min(canary_size, dataset.num_users)
        if canary_seed is None:
            self._canary = tuple(range(size))
        else:
            rng = np.random.default_rng(canary_seed)
            self._canary = tuple(
                int(u)
                for u in rng.choice(dataset.num_users, size=size, replace=False)
            )
        self._request_counter = 0

        self.registry = ModelRegistry(
            dataset.num_items, clock=clock, telemetry=self.telemetry
        )
        self._breakers: dict[str, CircuitBreaker] = {}

        self._fallbacks: list[tuple[str, Recommender]] = []
        for name, model in fallbacks:
            if name == STATIC_RUNG:
                raise ConfigError(f"rung name {STATIC_RUNG!r} is reserved")
            self._fallbacks.append((name, model))
            self._breakers[name] = self._make_breaker()

        self._static = StaticTopK(static_scores).fit(dataset)

        name, model = primary
        self.promote(name, model)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def _make_breaker(self) -> CircuitBreaker:
        return CircuitBreaker(clock=self.clock, **self._breaker_config)

    def promote(self, name: str, model: Recommender) -> PromotionRecord:
        """Validate-then-promote hot swap of the live model.

        The candidate must pass the canary smoke probe (finite scores of
        the right shape for every canary user); failure raises
        :class:`~repro.core.exceptions.PromotionError` and the previous
        live model keeps serving — rollback is atomic because the swap
        never happened.  A successful swap installs a fresh breaker for
        the new model.
        """
        try:
            record = self.registry.promote(
                name, model, self._canary, canary_seed=self.canary_seed
            )
        except ServingError:
            self.metrics.incr("promotion_failures")
            raise
        self._breakers[name] = self._make_breaker()
        self.metrics.incr("promotions")
        return record

    def rollback(self, cause: str = "operator") -> str:
        """Demote the live model to its predecessor (fresh breaker).

        ``cause`` lands on the durable rollback record and the
        ``serve/rollback`` span (see :meth:`ModelRegistry.rollback`).
        """
        name = self.registry.rollback(cause)
        self._breakers[name] = self._make_breaker()
        self.metrics.incr("rollbacks")
        return name

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def serve(self, request: ServeRequest) -> ServeResponse:
        """Answer ``request`` with a typed outcome; never raises."""
        request_id = self._request_counter
        self._request_counter += 1
        start = self.clock()
        self.metrics.incr("requests")

        try:
            uid = int(request.user_id)
        except (TypeError, ValueError):
            uid = -1

        tel = self.telemetry
        span = (
            tel.begin("serve/request", request_id=request_id, user=uid)
            if tel.enabled
            else None
        )

        def finish(**kwargs) -> ServeResponse:
            response = ServeResponse(
                request_id=request_id,
                user_id=uid,
                latency=self.clock() - start,
                **kwargs,
            )
            self.metrics.incr(f"status::{response.status}")
            self.metrics.observe_latency(response.latency)
            if span is not None:
                live = self.registry.live_name if self.registry.has_live else None
                span.set(
                    outcome=response.status,
                    rung=response.model or None,
                    breaker=self._breakers[live].state if live else None,
                )
                if response.error:
                    span.set(error=response.error)
                tel.end(span)
            return response

        try:
            validate_request(request, self.dataset.num_users, self.dataset.num_items)
        except RequestError as exc:
            return finish(status="rejected", error=f"{type(exc).__name__}: {exc}")

        if self.admission is not None:
            try:
                wait = self.admission.admit()
                self.metrics.incr("admitted")
                self.metrics.incr("queue_wait_us", int(wait * 1e6))
            except Overloaded as exc:
                return finish(status="shed", error=f"{type(exc).__name__}: {exc}")

        try:
            rung, items, scores = self._score_through_chain(request_id, request)
        except Exception as exc:  # noqa: BLE001 - contract: nothing escapes
            # Unreachable while the static rung holds its no-fail contract;
            # kept so a bug downgrades to a typed outcome instead of a 500.
            self.metrics.incr("internal_errors")
            return finish(status="rejected", error=f"{type(exc).__name__}: {exc}")

        degraded = rung != self.registry.live_name
        if degraded:
            self.metrics.incr("fallback_activations")
        self.metrics.incr(f"served_by::{rung}")
        return finish(
            status="degraded" if degraded else "ok",
            items=tuple(int(i) for i in items),
            scores=tuple(float(s) for s in scores),
            model=rung,
            degraded=degraded,
            fallback_used=rung if degraded else None,
        )

    def recommend(self, user_id: int, k: int | None = None) -> ServeResponse:
        """Exception-flavored façade: shed/rejected outcomes raise instead."""
        request = ServeRequest(user_id=user_id, k=k if k is not None else self.default_k)
        validate_request(request, self.dataset.num_users, self.dataset.num_items)
        response = self.serve(request)
        if response.status == "shed":
            raise Overloaded(response.error)
        if response.status == "rejected":
            raise RequestError(response.error)
        return response

    # ------------------------------------------------------------------ #
    def _chain(self) -> list[tuple[str, Recommender, CircuitBreaker | None]]:
        rungs: list[tuple[str, Recommender, CircuitBreaker | None]] = []
        if self.registry.has_live:
            name = self.registry.live_name
            rungs.append((name, self.registry.live, self._breakers[name]))
        for name, model in self._fallbacks:
            rungs.append((name, model, self._breakers[name]))
        rungs.append((STATIC_RUNG, self._static, None))
        return rungs

    def _score_through_chain(
        self, request_id: int, request: ServeRequest
    ) -> tuple[str, np.ndarray, np.ndarray]:
        """Walk the degradation ladder; returns ``(rung, items, scores)``.

        Cooperative deadline checkpoints run before and after each model
        rung (the ``run_panel`` ``time_budget`` pattern): a rung whose
        scoring overran the budget is recorded as that rung's failure and
        the walk continues — the static last resort is exempt, so an
        already-expired deadline still yields a degraded answer rather
        than no answer.
        """
        user_id = int(request.user_id)
        budget = request.deadline if request.deadline is not None else self.default_deadline
        deadline = Deadline(budget, clock=self.clock)
        live_name = self.registry.live_name
        tel = self.telemetry

        for name, model, breaker in self._chain():
            if breaker is not None and not breaker.allow():
                self.metrics.incr(f"breaker_rejected::{name}")
                continue
            # A candidate rung (e.g. TwoStageRecommender) answers with an
            # (ids, scores) subset instead of a full score vector; it is
            # validated and ranked against exactly that subset.
            candidate_rung = bool(getattr(model, "supports_candidates", False))
            rung_span = tel.begin("serve/rung", rung=name) if tel.enabled else None
            try:
                if name != STATIC_RUNG:
                    deadline.check(f"before rung {name!r}")
                result = self._call_rung(request_id, name, model, user_id,
                                         primary=name == live_name,
                                         k=int(request.k),
                                         candidates=candidate_rung)
                if candidate_rung:
                    ids, scores = result
                    report = validate_scores(
                        scores, self.dataset.num_items, expected_indices=ids
                    )
                else:
                    ids, scores = None, result
                    report = validate_scores(scores, self.dataset.num_items)
                if not report.ok:
                    self.metrics.incr(f"invalid_scores::{name}")
                    raise _RungFailed(f"invalid scores: {report.describe()}")
                if name != STATIC_RUNG:
                    deadline.check(f"after rung {name!r}")
            except DeadlineExceeded as exc:
                if breaker is not None:
                    breaker.record_failure("deadline")
                self.metrics.incr(f"deadline_exceeded::{name}")
                self.metrics.incr("deadline_exceeded")
                if rung_span is not None:
                    tel.end(rung_span, outcome="deadline")
                continue
            except Exception as exc:  # noqa: BLE001 - rung isolation is the point
                if breaker is not None:
                    breaker.record_failure(type(exc).__name__)
                self.metrics.incr(f"rung_errors::{name}")
                if rung_span is not None:
                    tel.end(rung_span, outcome="error", error=type(exc).__name__)
                continue
            if breaker is not None:
                breaker.record_success()
            if rung_span is not None:
                if ids is not None:
                    rung_span.set(candidates=int(np.asarray(ids).size))
                tel.end(rung_span, outcome="ok")
            items, top_scores = self._rank(
                scores, user_id, int(request.k), request.exclude_seen, ids=ids
            )
            return name, items, top_scores
        # The static rung cannot fail, so this line requires a programming
        # error in the chain itself.
        raise ServingError("degradation ladder exhausted without a response")

    def _call_rung(
        self, request_id: int, name: str, model: Recommender, user_id: int,
        primary: bool, k: int = 1, candidates: bool = False,
    ):
        """One rung's scoring call, with faults/retries on the live rung.

        Returns a full score vector, or ``(ids, scores)`` when
        ``candidates`` is set (the rung exposes ``score_candidates``).
        Faults and retries apply identically on both shapes, so a
        candidate rung degrades through exactly the same machinery.
        """

        def attempt():
            if primary and self.faults is not None:
                self.faults.on_request(request_id)
            if candidates:
                ids, scores = model.score_candidates(user_id, k)
            else:
                ids, scores = None, model.score_all(user_id)
            if primary and self.faults is not None:
                scores = self.faults.corrupt_scores(request_id, scores)
            return scores if ids is None else (ids, scores)

        if primary and self.retry is not None:
            return self.retry.call(attempt)
        return attempt()

    def _rank(
        self, scores: np.ndarray, user_id: int, k: int, exclude_seen: bool,
        ids: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-k over a full score vector, or over an ``ids``-aligned subset."""
        scores = np.array(scores, dtype=np.float64, copy=True)
        if exclude_seen:
            seen = self.dataset.interactions.items_of(user_id)
            if ids is None:
                scores[seen] = -np.inf
            else:
                scores[np.isin(ids, seen)] = -np.inf
        k = min(k, scores.size)
        top = np.argpartition(-scores, k - 1)[:k]
        top = top[np.argsort(-scores[top], kind="stable")]
        # When k exceeds the user's unseen catalog, the tail of the top-k is
        # masked seen items at -inf; a serving response must not pad with
        # them, so the list is truncated instead.
        keep = np.isfinite(scores[top])
        top, top_scores = top[keep], scores[top][keep]
        if ids is not None:
            return np.asarray(ids, dtype=np.int64)[top], top_scores
        return top.astype(np.int64), top_scores

    # ------------------------------------------------------------------ #
    # probes
    # ------------------------------------------------------------------ #
    def ready(self) -> bool:
        """Readiness: a live model exists and the catalog is servable.

        A breaker-open live model still reports ready — the degradation
        ladder answers — but health() exposes the breaker states so an
        operator can see the service is running on fallbacks.
        """
        return self.registry.has_live and self.dataset.num_items > 0

    def health(self) -> dict:
        """Liveness/diagnostics snapshot (JSON-safe)."""
        live = self.registry.live_name if self.registry.has_live else None
        breakers = {name: b.snapshot() for name, b in self._breakers.items()}
        return {
            "ready": self.ready(),
            "live_model": live,
            "live_breaker_state": breakers[live]["state"] if live else None,
            "rungs": [name for name, __, ___ in self._chain()],
            "breakers": breakers,
            "admission": self.admission.snapshot() if self.admission else None,
            "metrics": self.metrics.snapshot(),
            "promotions": [r.describe() for r in self.registry.history],
        }

    def breaker_transitions(self) -> list[str]:
        """Every breaker transition so far, as deterministic strings."""
        out = []
        for name, breaker in self._breakers.items():
            out.extend(f"{name}: {t.describe()}" for t in breaker.transitions)
        return out
