"""Crash-safe sharded embedding store.

Layered bottom-up:

* :mod:`repro.store.io` — the two byte-level durability primitives
  (fsync'd temp write, atomic rename) plus their fault-injecting twin;
* :mod:`repro.store.shard` — the checksummed shard file format;
* :mod:`repro.store.manifest` — versioned JSON manifests, whose atomic
  rename is the store's single commit point;
* :mod:`repro.store.base` — the :class:`EmbeddingStore` interface and
  the in-memory :class:`DenseStore` default;
* :mod:`repro.store.mmap` — :class:`MmapShardStore`, the durable
  implementation (incremental commits, verified recovery, zero-copy
  generation remap for promotion/rollback);
* :mod:`repro.store.verify` — fsck: inspect / quarantine / repair,
  behind ``python -m repro store-verify``;
* :mod:`repro.store.serving` — :class:`StoredEmbeddingRecommender`,
  scoring straight off a serve-mode store;
* :mod:`repro.store.harness` — the fault-injected durability harness
  (crash matrix over every IO operation).

The format and protocol are specified in ``docs/storage.md``.
"""

from __future__ import annotations

from .base import DenseStore, EmbeddingStore
from .io import FaultingStoreIO, IOOp, StoreIO
from .manifest import load_manifest, scan_manifests
from .mmap import MmapShardStore, ShardedTable
from .serving import StoredEmbeddingRecommender
from .shard import ShardInfo, load_shard, map_shard, verify_shard, write_shard
from .verify import (
    GenerationStatus,
    ShardStatus,
    StoreReport,
    inspect_store,
    quarantine_debris,
    render_report,
    repair_store,
)

__all__ = [
    "EmbeddingStore",
    "DenseStore",
    "MmapShardStore",
    "ShardedTable",
    "StoredEmbeddingRecommender",
    "StoreIO",
    "FaultingStoreIO",
    "IOOp",
    "ShardInfo",
    "write_shard",
    "verify_shard",
    "load_shard",
    "map_shard",
    "load_manifest",
    "scan_manifests",
    "inspect_store",
    "render_report",
    "quarantine_debris",
    "repair_store",
    "StoreReport",
    "GenerationStatus",
    "ShardStatus",
]
