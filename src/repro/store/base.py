"""The `EmbeddingStore` interface and its in-memory default.

Every KGE model's big parameter tables (entity and relation embeddings)
sit behind an :class:`EmbeddingStore`.  Two implementations exist:

* :class:`DenseStore` — plain in-memory arrays, the default.  It is a
  pure pass-through: ``register`` keeps a reference to the *same* array
  object the model trains on, so training with a ``DenseStore`` is
  bitwise identical to training with no store at all (the seed path).
* :class:`~repro.store.mmap.MmapShardStore` — the durable, row-sharded,
  checksummed mmap-backed implementation (see ``docs/storage.md``).

The interface is deliberately small: a trainer *registers* its live
working arrays, *marks rows dirty* as optimizer steps touch them (the
row indices of PR 3's sparse gradients are exactly this wire format),
and *commits* — which for the dense store is a no-op and for the mmap
store persists only the dirtied shards under a new manifest generation.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.exceptions import StoreError

__all__ = ["EmbeddingStore", "DenseStore"]


class EmbeddingStore(abc.ABC):
    """Storage backend for named 2-d embedding tables.

    ``track_dirty`` tells trainers whether :meth:`mark_dirty` calls are
    worth making; the dense store advertises ``False`` so the hot loop
    pays one attribute check and nothing else.
    """

    #: Whether this store consumes :meth:`mark_dirty` row indices.
    track_dirty: bool = False
    #: Whether :meth:`commit` persists generations a checkpoint can pin.
    #: The checkpointer only delegates parameters to durable stores — a
    #: non-durable store cannot give back *snapshot-time* values.
    durable: bool = False

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def register(self, name: str, array: np.ndarray) -> np.ndarray:
        """Bind ``array`` as the live working buffer of table ``name``.

        If the store already holds ``name`` (e.g. it was opened from
        disk), the stored values are copied *into* ``array`` — the caller
        keeps training on its own buffer object.  Otherwise the array's
        current contents are adopted as the table's initial state.
        Returns ``array``.
        """

    @abc.abstractmethod
    def table(self, name: str):
        """Current values of ``name`` (a live array, or a sharded view)."""

    @abc.abstractmethod
    def table_names(self) -> tuple[str, ...]:
        """Registered/stored table names, sorted."""

    # ------------------------------------------------------------------ #
    def table_for_array(self, array: np.ndarray) -> str | None:
        """The table name whose live working buffer *is* ``array``, if any.

        Identity (not equality) — this is how the checkpointer decides
        which model parameters the store owns.
        """
        return None

    def mark_dirty(self, name: str, rows: np.ndarray | None = None) -> None:
        """Declare table rows changed (``None`` = every row).  No-op here."""

    def commit(self, tag: str = "") -> int:
        """Persist pending changes; returns the new generation (0 = none)."""
        return 0

    def generations(self) -> tuple[int, ...]:
        """Generations a checkpoint could restore from."""
        return (0,)

    def load_table(self, name: str, generation: int | None = None) -> np.ndarray:
        """Materialize table ``name`` at ``generation`` (default: current)."""
        raise StoreError(f"{type(self).__name__} does not persist generations")

    def close(self) -> None:
        """Release resources; further table access may fail."""


class DenseStore(EmbeddingStore):
    """In-memory pass-through store — the bitwise-compatible default."""

    track_dirty = False

    def __init__(self) -> None:
        self._tables: dict[str, np.ndarray] = {}

    def register(self, name: str, array: np.ndarray) -> np.ndarray:
        array = np.asarray(array)
        if array.ndim != 2:
            raise StoreError(f"table {name!r} must be 2-d, got {array.ndim}-d")
        existing = self._tables.get(name)
        if existing is not None and existing.shape != array.shape:
            raise StoreError(
                f"table {name!r} re-registered with shape {array.shape}, "
                f"store holds {existing.shape}"
            )
        self._tables[name] = array
        return array

    def table(self, name: str) -> np.ndarray:
        try:
            return self._tables[name]
        except KeyError:
            raise StoreError(f"unknown table {name!r}") from None

    def table_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._tables))

    def table_for_array(self, array: np.ndarray) -> str | None:
        for name, arr in self._tables.items():
            if arr is array:
                return name
        return None

    def load_table(self, name: str, generation: int | None = None) -> np.ndarray:
        if generation not in (None, 0):
            raise StoreError(
                f"DenseStore has no generation {generation}; it is in-memory only"
            )
        return self.table(name).copy()
