"""Fault-injected durability harness: the crash matrix.

The durability claim of :mod:`repro.store` is an *invariant*, not a
property of any particular failure: after a crash at **any** IO operation
of a train→checkpoint→commit run, re-opening the store recovers a state
that is bitwise equal to exactly one committed generation — old or new,
never a hybrid.  This module turns that claim into an exhaustive check:

1. :func:`run_scenario` executes a small deterministic training run —
   TransE over a seeded toy graph, backed by a
   :class:`~repro.store.mmap.MmapShardStore` and an incremental
   :class:`~repro.runtime.checkpoint.Checkpointer` — through a pluggable
   :class:`~repro.store.io.StoreIO`.
2. :func:`run_crash_matrix` first runs the scenario clean to enumerate
   its IO operations and record every committed generation's table bytes,
   then replays it once per ``(operation, fault kind)`` pair with a
   :class:`~repro.store.io.FaultingStoreIO`, "pulls the plug"
   (:class:`~repro.runtime.faults.InjectedCrash` is caught only at the
   very top), re-opens the store, and asserts the recovered state equals
   one recorded generation exactly.
3. :func:`run_smoke` sweeps the matrix over several seeds and can leave a
   deliberately corrupted store behind for ``store-verify --repair`` to
   exercise — this is the CI ``durability-smoke`` entry point
   (assertions, not timings).

A cell may legitimately recover *nothing* only when the faulted operation
is part of writing generation 0's manifest — the store was never created,
so there is no generation to fall back to; every other cell must recover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.exceptions import CheckpointError, StoreError
from repro.core.rng import ensure_rng
from repro.kg.triples import TripleStore
from repro.kge.translational import TransE
from repro.runtime import TrainingRuntime
from repro.runtime.checkpoint import Checkpointer
from repro.runtime.faults import (
    IO_FAULT_KINDS,
    Fault,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
)

from .io import FaultingStoreIO, StoreIO
from .manifest import manifest_name
from .mmap import MmapShardStore

__all__ = [
    "ScenarioConfig",
    "ScenarioResult",
    "CrashCell",
    "CrashMatrixResult",
    "run_scenario",
    "run_crash_matrix",
    "run_smoke",
    "make_corrupted_store",
]


@dataclass(frozen=True)
class ScenarioConfig:
    """Shape of the toy train→checkpoint→commit run the matrix replays."""

    num_entities: int = 8
    num_relations: int = 2
    num_triples: int = 24
    dim: int = 4
    epochs: int = 2
    batch_size: int = 8
    rows_per_shard: int = 4


@dataclass
class ScenarioResult:
    """What one scenario run produced (clean runs only; crashes raise)."""

    store_dir: Path
    generations: tuple[int, ...]
    history: list[float]
    num_ops: int


def _toy_triples(config: ScenarioConfig, seed: int) -> TripleStore:
    rng = ensure_rng(seed)
    heads = rng.integers(config.num_entities, size=config.num_triples)
    rels = rng.integers(config.num_relations, size=config.num_triples)
    tails = rng.integers(config.num_entities, size=config.num_triples)
    return TripleStore(
        heads, rels, tails,
        num_entities=config.num_entities,
        num_relations=config.num_relations,
    )


def run_scenario(
    workdir: str | Path,
    seed: int = 0,
    io: StoreIO | None = None,
    config: ScenarioConfig = ScenarioConfig(),
) -> ScenarioResult:
    """Train a small TransE against a fresh store, checkpointing each epoch.

    Every durable byte flows through ``io``, so a
    :class:`~repro.store.io.FaultingStoreIO` makes this exact run crash
    (or silently corrupt) at a chosen IO operation.  Determinism under
    ``seed`` is what lets the crash matrix compare replays bitwise.
    """
    workdir = Path(workdir)
    io = io if io is not None else StoreIO()
    store = MmapShardStore.create(
        workdir / "store", rows_per_shard=config.rows_per_shard, seed=seed, io=io
    )
    try:
        model = TransE(
            config.num_entities, config.num_relations, dim=config.dim,
            seed=seed, store=store,
        )
        runtime = TrainingRuntime(
            checkpointer=Checkpointer(
                workdir / "ckpt", every=1, keep=3, store=store
            )
        )
        history = model.fit(
            _toy_triples(config, seed),
            epochs=config.epochs,
            batch_size=config.batch_size,
            seed=seed,
            runtime=runtime,
        )
        generations = store.generations()
    finally:
        store.close()
    return ScenarioResult(
        store_dir=workdir / "store",
        generations=generations,
        history=history,
        num_ops=io.num_ops,
    )


# ---------------------------------------------------------------------- #
# the crash matrix
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class CrashCell:
    """Outcome of one ``(io op, fault kind)`` replay."""

    op: int
    kind: str
    op_path: str
    crashed: bool  # the injected fault surfaced (crash or aborted commit)
    recovered_generation: int | None  # None = store unrecoverable
    ok: bool
    detail: str = ""


@dataclass
class CrashMatrixResult:
    """All cells plus the clean run they were compared against."""

    seed: int
    num_ops: int
    reference_generations: tuple[int, ...]
    cells: list[CrashCell] = field(default_factory=list)

    @property
    def violations(self) -> list[CrashCell]:
        return [c for c in self.cells if not c.ok]

    def summary(self) -> str:
        return (
            f"seed {self.seed}: {len(self.cells)} cells over {self.num_ops} "
            f"io ops x {len({c.kind for c in self.cells})} kinds, "
            f"{len(self.violations)} violations"
        )


def _table_state(store: MmapShardStore) -> dict[str, bytes]:
    """Bitwise fingerprint of every table at the store's open generation."""
    return {
        name: store.load_table(name).astype("<f4").tobytes()
        for name in store.table_names()
    }


def _reference_states(
    store_dir: Path, generations: tuple[int, ...]
) -> dict[int, dict[str, bytes]]:
    states: dict[int, dict[str, bytes]] = {}
    for gen in generations:
        store = MmapShardStore.open(
            store_dir, mode="train", generation=gen, quarantine=False
        )
        try:
            states[gen] = _table_state(store)
        finally:
            store.close()
    return states


def run_crash_matrix(
    workdir: str | Path,
    seed: int = 0,
    kinds: tuple[str, ...] = IO_FAULT_KINDS,
    ops: tuple[int, ...] | None = None,
    config: ScenarioConfig = ScenarioConfig(),
) -> CrashMatrixResult:
    """Replay the scenario with every fault kind at every IO operation.

    Each cell asserts the core invariant and records the outcome; use
    :attr:`CrashMatrixResult.violations` (empty = pass).  ``ops`` narrows
    the sweep to specific operation indices (default: all of them).
    """
    workdir = Path(workdir)
    clean_io = StoreIO()
    clean = run_scenario(workdir / "clean", seed=seed, io=clean_io, config=config)
    references = _reference_states(clean.store_dir, clean.generations)
    genesis = manifest_name(0)

    result = CrashMatrixResult(
        seed=seed, num_ops=clean.num_ops,
        reference_generations=clean.generations,
    )
    sweep = ops if ops is not None else tuple(range(clean.num_ops))
    for op in sweep:
        op_path = clean_io.op_log[op].path
        for kind in kinds:
            cell_dir = workdir / f"op{op:04d}-{kind}"
            injector = FaultInjector(FaultPlan([Fault(step=op, kind=kind)]))
            crashed = False
            try:
                run_scenario(
                    cell_dir, seed=seed, io=FaultingStoreIO(injector),
                    config=config,
                )
            except (InjectedCrash, StoreError, CheckpointError, OSError):
                # The top of the "process": discard every live object and
                # recover purely from what reached disk.
                crashed = True
            result.cells.append(
                _check_cell(cell_dir / "store", op, kind, op_path, crashed,
                            references, genesis)
            )
    return result


def _check_cell(
    store_dir: Path,
    op: int,
    kind: str,
    op_path: str,
    crashed: bool,
    references: dict[int, dict[str, bytes]],
    genesis: str,
) -> CrashCell:
    """Reopen after the (possible) crash and assert old-or-new, not hybrid."""
    try:
        store = MmapShardStore.open(store_dir, mode="train")
    except StoreError as exc:
        # Unrecoverable is legitimate only while creating generation 0 —
        # before its manifest rename the store never existed.
        ok = genesis in op_path
        return CrashCell(
            op=op, kind=kind, op_path=op_path, crashed=crashed,
            recovered_generation=None, ok=ok,
            detail="" if ok else f"store unrecoverable: {exc}",
        )
    try:
        gen = store.generation
        state = _table_state(store)
    finally:
        store.close()
    if gen not in references:
        return CrashCell(
            op=op, kind=kind, op_path=op_path, crashed=crashed,
            recovered_generation=gen, ok=False,
            detail=f"recovered generation {gen} was never committed cleanly",
        )
    if state != references[gen]:
        bad = sorted(
            name for name in set(state) | set(references[gen])
            if state.get(name) != references[gen].get(name)
        )
        return CrashCell(
            op=op, kind=kind, op_path=op_path, crashed=crashed,
            recovered_generation=gen, ok=False,
            detail=f"hybrid state: tables {bad} differ from generation {gen}",
        )
    return CrashCell(
        op=op, kind=kind, op_path=op_path, crashed=crashed,
        recovered_generation=gen, ok=True,
    )


# ---------------------------------------------------------------------- #
# smoke entry point (CI)
# ---------------------------------------------------------------------- #
def make_corrupted_store(
    directory: str | Path, seed: int = 0, config: ScenarioConfig = ScenarioConfig()
) -> Path:
    """Build a real store, then deliberately rot its newest generation.

    Flips one payload byte in a shard referenced only by the newest
    manifest, so ``store-verify`` must report that generation broken and
    ``--repair`` must quarantine it and fall back to the previous one.
    Returns the store directory.
    """
    directory = Path(directory)
    scenario = run_scenario(directory, seed=seed, config=config)
    store = MmapShardStore.open(scenario.store_dir, mode="train")
    newest = store.generation
    manifest = store._manifest
    store.close()
    # Pick a shard file introduced by the newest generation (its name
    # carries the generation) so older generations stay consistent.
    tag = f"-g{newest:08d}-"
    for spec in manifest["tables"].values():
        for shard in spec["shards"]:
            if tag in shard["file"]:
                path = scenario.store_dir / "shards" / shard["file"]
                blob = bytearray(path.read_bytes())
                blob[-1] ^= 0xFF  # last payload byte
                path.write_bytes(bytes(blob))
                return scenario.store_dir
    raise StoreError(
        f"no shard exclusive to generation {newest}; cannot corrupt safely"
    )


def run_smoke(
    workdir: str | Path,
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
    config: ScenarioConfig = ScenarioConfig(),
) -> list[CrashMatrixResult]:
    """Run the full crash matrix per seed; raises on any violation."""
    workdir = Path(workdir)
    results = []
    for seed in seeds:
        result = run_crash_matrix(workdir / f"seed{seed}", seed=seed,
                                  config=config)
        if result.violations:
            lines = "\n".join(
                f"  op {c.op} ({c.op_path}) kind={c.kind}: {c.detail}"
                for c in result.violations
            )
            raise AssertionError(
                f"durability invariant violated for seed {seed}:\n{lines}"
            )
        results.append(result)
    return results
